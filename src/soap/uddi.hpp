// UDDI-like registry: the concrete backing store of the paper's Virtual
// Service Repository when the VSG protocol is SOAP (§3.3: "the VSR will
// be implemented with WSDL and UDDI"). It is itself a SOAP service, so
// every island reaches it through the same wire protocol.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "soap/rpc.hpp"
#include "soap/wsdl.hpp"

namespace hcm::soap {

struct RegistryEntry {
  std::string name;      // globally unique deployed-service name
  std::string category;  // e.g. interface name ("VcrControl")
  std::string origin;    // island that published it ("jini-island")
  std::string wsdl;      // full WSDL document
  sim::SimTime expires_at = 0;  // 0 = no lease
};

// A leased event subscription recorded in the VSR (event bridge). The
// VSR is the system of record for who listens to what; the origin
// island's EventRouter holds the delivery state.
struct EventSubscription {
  std::string id;          // origin-router lease id ("esub-N")
  std::string service;     // event source (deployed-service name)
  std::string event;       // event name within the service interface
  std::string subscriber;  // subscribing island
  sim::SimTime expires_at = 0;  // 0 = no lease
};

// Server side: mounts "publish"/"unpublish"/"find"/"lookup"/"list"
// methods on a SoapService at `path` of an HttpServer, plus the event-
// subscription table ("subscribeEvent"/"renewEventSub"/
// "unsubscribeEvent"/"listEventSubs").
class UddiRegistry {
 public:
  UddiRegistry(http::HttpServer& http_server, sim::Scheduler& sched,
               std::string path = "/uddi");

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t publishes() const { return publishes_; }
  [[nodiscard]] std::size_t subscription_count() const;

 private:
  void prune();
  void prune_subscriptions();
  Value entry_to_value(const RegistryEntry& e) const;
  Value subscription_to_value(const EventSubscription& s) const;

  sim::Scheduler& sched_;
  SoapService service_;
  std::map<std::string, RegistryEntry> entries_;
  std::map<std::string, EventSubscription> subscriptions_;  // by id
  std::uint64_t publishes_ = 0;
};

// Client-side typed wrapper used by VSGs/PCMs on every island.
class UddiClient {
 public:
  UddiClient(net::Network& net, net::NodeId node, net::Endpoint registry,
             std::string path = "/uddi")
      : client_(net, node), registry_(registry), path_(std::move(path)) {}

  using DoneFn = std::function<void(const Status&)>;
  using EntriesFn = std::function<void(Result<std::vector<RegistryEntry>>)>;
  using EntryFn = std::function<void(Result<RegistryEntry>)>;
  using SubscriptionsFn =
      std::function<void(Result<std::vector<EventSubscription>>)>;

  // ttl of 0 means no expiry; otherwise the entry lapses unless
  // republished (lease-style, mirroring Jini's lease discipline).
  void publish(const RegistryEntry& entry, sim::Duration ttl, DoneFn done);
  void unpublish(const std::string& name, DoneFn done);
  void find_by_category(const std::string& category, EntriesFn done);
  void lookup(const std::string& name, EntryFn done);
  void list_all(EntriesFn done);

  // Event-subscription table (same lease discipline as publish).
  void put_subscription(const EventSubscription& sub, sim::Duration ttl,
                        DoneFn done);
  void renew_subscription(const std::string& id, sim::Duration ttl,
                          DoneFn done);
  void remove_subscription(const std::string& id, DoneFn done);
  void list_subscriptions(SubscriptionsFn done);

 private:
  static Result<RegistryEntry> entry_from_value(const Value& v);
  static Result<EventSubscription> subscription_from_value(const Value& v);

  SoapClient client_;
  net::Endpoint registry_;
  std::string path_;
};

}  // namespace hcm::soap
