// UDDI-like registry: the concrete backing store of the paper's Virtual
// Service Repository when the VSG protocol is SOAP (§3.3: "the VSR will
// be implemented with WSDL and UDDI"). It is itself a SOAP service, so
// every island reaches it through the same wire protocol.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "soap/rpc.hpp"
#include "soap/wsdl.hpp"

namespace hcm::soap {

struct RegistryEntry {
  std::string name;      // globally unique deployed-service name
  std::string category;  // e.g. interface name ("VcrControl")
  std::string origin;    // island that published it ("jini-island")
  std::string wsdl;      // full WSDL document
  sim::SimTime expires_at = 0;  // 0 = no lease
};

// Server side: mounts "publish"/"unpublish"/"find"/"lookup"/"list"
// methods on a SoapService at `path` of an HttpServer.
class UddiRegistry {
 public:
  UddiRegistry(http::HttpServer& http_server, sim::Scheduler& sched,
               std::string path = "/uddi");

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t publishes() const { return publishes_; }

 private:
  void prune();
  Value entry_to_value(const RegistryEntry& e) const;

  sim::Scheduler& sched_;
  SoapService service_;
  std::map<std::string, RegistryEntry> entries_;
  std::uint64_t publishes_ = 0;
};

// Client-side typed wrapper used by VSGs/PCMs on every island.
class UddiClient {
 public:
  UddiClient(net::Network& net, net::NodeId node, net::Endpoint registry,
             std::string path = "/uddi")
      : client_(net, node), registry_(registry), path_(std::move(path)) {}

  using DoneFn = std::function<void(const Status&)>;
  using EntriesFn = std::function<void(Result<std::vector<RegistryEntry>>)>;
  using EntryFn = std::function<void(Result<RegistryEntry>)>;

  // ttl of 0 means no expiry; otherwise the entry lapses unless
  // republished (lease-style, mirroring Jini's lease discipline).
  void publish(const RegistryEntry& entry, sim::Duration ttl, DoneFn done);
  void unpublish(const std::string& name, DoneFn done);
  void find_by_category(const std::string& category, EntriesFn done);
  void lookup(const std::string& name, EntryFn done);
  void list_all(EntriesFn done);

 private:
  static Result<RegistryEntry> entry_from_value(const Value& v);

  SoapClient client_;
  net::Endpoint registry_;
  std::string path_;
};

}  // namespace hcm::soap
