// UDDI-like registry: the concrete backing store of the paper's Virtual
// Service Repository when the VSG protocol is SOAP (§3.3: "the VSR will
// be implemented with WSDL and UDDI"). It is itself a SOAP service, so
// every island reaches it through the same wire protocol.
//
// Synchronization is incremental: the registry keeps a monotonic
// sequence number and a bounded change journal (publish, unpublish and
// lease expiry all append), and serves a "changesSince" op so clients
// pay O(changes) — not O(entries) — per refresh. Entry WSDL bodies are
// content-addressed by digest (soap::wsdl_digest), which lets clients
// renew leases and resynchronize without re-transferring documents they
// already hold. DESIGN.md §"VSR synchronization" has the protocol.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "soap/rpc.hpp"
#include "soap/wsdl.hpp"

namespace hcm::store {
class VsrStore;
}

namespace hcm::soap {

struct RegistryEntry {
  std::string name;      // globally unique deployed-service name
  std::string category;  // e.g. interface name ("VcrControl")
  std::string origin;    // island that published it ("jini-island")
  std::string wsdl;      // full WSDL document
  std::string digest;    // content digest of wsdl (filled by the registry)
  sim::SimTime expires_at = 0;  // 0 = no lease
};

// One entry of a changesSince response. Upserts carry the entry's
// digest always and its WSDL body only when the caller doesn't already
// hold that digest; removes carry just the name.
struct RegistryChange {
  enum class Kind { kUpsert, kRemove };
  Kind kind = Kind::kUpsert;
  std::string name;
  std::string category;
  std::string origin;
  std::string digest;
  std::string wsdl;  // resolved body (client side fills from its cache
                     // when the registry elided it)
};

// A changesSince result, already digest-resolved by UddiClient: every
// upsert's wsdl is populated. When `full` is set the change list is an
// authoritative snapshot — anything the caller imported that is not
// listed no longer exists.
struct RegistryDelta {
  bool full = false;
  std::uint64_t epoch = 0;   // registry incarnation
  std::uint64_t cursor = 0;  // pass back to the next changesSince
  std::vector<RegistryChange> changes;
};

// Stable fingerprint over one origin's published set: FNV-1a folded
// over the sorted (name, digest) pairs. An origin whose fingerprint
// matches the registry's view renews every lease it holds with one
// O(1) renewOrigin call (see Pcm::publish_locals).
[[nodiscard]] std::string registry_fingerprint(
    const std::map<std::string, std::string>& digest_by_name);

// A leased event subscription recorded in the VSR (event bridge). The
// VSR is the system of record for who listens to what; the origin
// island's EventRouter holds the delivery state.
struct EventSubscription {
  std::string id;          // origin-router lease id ("esub-N")
  std::string service;     // event source (deployed-service name)
  std::string event;       // event name within the service interface
  std::string subscriber;  // subscribing island
  sim::SimTime expires_at = 0;  // 0 = no lease
};

// Server side: mounts "publish"/"unpublish"/"find"/"lookup"/"list"
// methods on a SoapService at `path` of an HttpServer, plus the delta
// sync ops ("changesSince"/"renew"/"renewOrigin") and the event-
// subscription table ("subscribeEvent"/"renewEventSub"/
// "unsubscribeEvent"/"listEventSubs").
class UddiRegistry {
 public:
  // The journal is bounded: once more than `journal_capacity` records
  // accumulate, the oldest are compacted away and clients whose cursor
  // predates the compaction horizon are told to resynchronize.
  static constexpr std::size_t kDefaultJournalCapacity = 128;

  // With a `store`, every journaled change (publish, unpublish, lease
  // expiry) is written through to disk and the registry adopts whatever
  // the store recovered: a clean replay resumes the **same epoch and
  // sequence number**, so warm client cursors stay valid and restart
  // costs zero snapshot resyncs; a torn/corrupt log tail resumes the
  // surviving prefix under a bumped epoch, which clients answer with
  // the ordinary snapshot-fallback resync. The store must be open()ed
  // before construction and must outlive the registry.
  UddiRegistry(http::HttpServer& http_server, sim::Scheduler& sched,
               std::string path = "/uddi",
               std::size_t journal_capacity = kDefaultJournalCapacity,
               store::VsrStore* store = nullptr);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t publishes() const { return publishes_; }
  [[nodiscard]] std::size_t subscription_count() const;

  // --- delta-sync observability (tests, benches) ----------------------
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t latest_seq() const { return seq_; }
  [[nodiscard]] std::size_t journal_size() const { return journal_.size(); }
  // Highest sequence number already compacted out of the journal.
  [[nodiscard]] std::uint64_t compacted_through() const {
    return compacted_through_;
  }
  [[nodiscard]] std::uint64_t renewals() const { return renewals_; }
  [[nodiscard]] std::uint64_t full_syncs() const { return full_syncs_; }
  [[nodiscard]] std::uint64_t delta_syncs() const { return delta_syncs_; }
  [[nodiscard]] std::uint64_t resyncs_required() const {
    return resyncs_required_;
  }
  [[nodiscard]] std::uint64_t wsdl_bodies_sent() const {
    return wsdl_bodies_sent_;
  }
  [[nodiscard]] std::uint64_t wsdl_bodies_elided() const {
    return wsdl_bodies_elided_;
  }

  // --- durable-store observability -------------------------------------
  [[nodiscard]] bool store_backed() const { return store_ != nullptr; }
  // Entries adopted from the store at construction (0 for a fresh dir).
  [[nodiscard]] std::size_t store_recovered_entries() const {
    return store_recovered_entries_;
  }
  // Write-through failures (store kept serving in-memory; durability is
  // degraded until the next successful commit).
  [[nodiscard]] std::uint64_t store_errors() const { return store_errors_; }

  // Mounted wire-op names (hcm_lint's registry-wire coverage rule).
  [[nodiscard]] std::vector<std::string> wire_ops() const {
    return service_.method_names();
  }

 private:
  struct JournalRecord {
    std::uint64_t seq = 0;
    RegistryChange::Kind kind = RegistryChange::Kind::kUpsert;
    std::string name;
    std::string digest;  // digest at record time (upserts)
  };

  void prune();
  void prune_subscriptions();
  void journal_append(RegistryChange::Kind kind, const std::string& name,
                      const std::string& digest);
  void adopt_store_state();
  void store_upsert(const RegistryEntry& e);
  void store_remove(const std::string& name, const std::string& digest);
  void store_touch(const std::string& name, sim::SimTime expires_at);
  void store_commit();
  Value entry_to_value(const RegistryEntry& e) const;
  Value change_to_value(const RegistryEntry& e,
                        const std::set<std::string>& known,
                        bool allow_elide);
  Value subscription_to_value(const EventSubscription& s) const;
  void handle_changes_since(const NamedValues& params, CallResultFn done);

  sim::Scheduler& sched_;
  SoapService service_;
  std::map<std::string, RegistryEntry> entries_;
  std::map<std::string, EventSubscription> subscriptions_;  // by id
  std::uint64_t publishes_ = 0;

  // --- change journal --------------------------------------------------
  std::uint64_t epoch_ = 0;  // distinct per registry incarnation
  std::uint64_t seq_ = 0;    // bumps on every journaled change
  std::uint64_t compacted_through_ = 0;
  std::size_t journal_capacity_;
  std::deque<JournalRecord> journal_;
  std::uint64_t renewals_ = 0;
  std::uint64_t full_syncs_ = 0;
  std::uint64_t delta_syncs_ = 0;
  std::uint64_t resyncs_required_ = 0;
  std::uint64_t wsdl_bodies_sent_ = 0;
  std::uint64_t wsdl_bodies_elided_ = 0;

  // --- durable store (optional) ----------------------------------------
  store::VsrStore* store_ = nullptr;
  std::size_t store_recovered_entries_ = 0;
  std::uint64_t store_errors_ = 0;
};

// Client-side typed wrapper used by VSGs/PCMs on every island. Keeps
// the per-registry sync cursor and a digest-keyed WSDL cache, so a
// changes_since() call transfers document bodies only for descriptions
// this client has never seen.
class UddiClient {
 public:
  UddiClient(net::Network& net, net::NodeId node, net::Endpoint registry,
             std::string path = "/uddi")
      : client_(net, node), registry_(registry), path_(std::move(path)) {}

  using DoneFn = std::function<void(const Status&)>;
  using EntriesFn = std::function<void(Result<std::vector<RegistryEntry>>)>;
  using EntryFn = std::function<void(Result<RegistryEntry>)>;
  using DeltaFn = std::function<void(Result<RegistryDelta>)>;
  using SubscriptionsFn =
      std::function<void(Result<std::vector<EventSubscription>>)>;

  // ttl of 0 means no expiry; otherwise the entry lapses unless
  // republished (lease-style, mirroring Jini's lease discipline).
  void publish(const RegistryEntry& entry, sim::Duration ttl, DoneFn done);
  void unpublish(const std::string& name, DoneFn done);
  void find_by_category(const std::string& category, EntriesFn done);
  void lookup(const std::string& name, EntryFn done);
  void list_all(EntriesFn done);

  // --- delta synchronization -------------------------------------------
  // Fetches everything that changed since the previous changes_since()
  // on this client (first call: a full snapshot). Handles registry
  // restarts and journal compaction internally by falling back to a
  // snapshot request, so callers always receive a usable delta; `full`
  // tells them when to treat it as authoritative. Upsert bodies elided
  // by the registry are resolved from the digest cache before delivery.
  void changes_since(DeltaFn done);
  // Forget cursor/epoch (next changes_since is a fresh snapshot). The
  // digest cache survives — it is content-addressed, so it stays valid
  // across registry restarts.
  void reset_cursor() { cursor_ = 0; epoch_ = 0; }

  // Renews the lease of one entry without re-uploading its WSDL; fails
  // kNotFound when the registry no longer holds this (name, digest), in
  // which case the caller must publish() the full entry again.
  void renew(const std::string& name, const std::string& digest,
             sim::Duration ttl, DoneFn done);
  // Renews every lease `origin` holds in one O(1) call, guarded by the
  // set fingerprint (registry_fingerprint). kFailedPrecondition on
  // fingerprint mismatch, kNotFound when the origin has no entries.
  void renew_origin(const std::string& origin, const std::string& fingerprint,
                    sim::Duration ttl, DoneFn done);

  [[nodiscard]] std::uint64_t cursor() const { return cursor_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t digest_cache_size() const {
    return wsdl_by_digest_.size();
  }
  [[nodiscard]] std::uint64_t full_syncs() const { return full_syncs_; }
  [[nodiscard]] std::uint64_t delta_syncs() const { return delta_syncs_; }

  // Event-subscription table (same lease discipline as publish).
  void put_subscription(const EventSubscription& sub, sim::Duration ttl,
                        DoneFn done);
  void renew_subscription(const std::string& id, sim::Duration ttl,
                          DoneFn done);
  void remove_subscription(const std::string& id, DoneFn done);
  void list_subscriptions(SubscriptionsFn done);

 private:
  static Result<RegistryEntry> entry_from_value(const Value& v);
  static Result<EventSubscription> subscription_from_value(const Value& v);
  void request_changes(bool snapshot, DeltaFn done);
  Result<RegistryDelta> delta_from_value(const Value& v);

  SoapClient client_;
  net::Endpoint registry_;
  std::string path_;

  // --- delta-sync state -------------------------------------------------
  std::uint64_t cursor_ = 0;
  std::uint64_t epoch_ = 0;
  std::map<std::string, std::string> wsdl_by_digest_;
  std::uint64_t full_syncs_ = 0;
  std::uint64_t delta_syncs_ = 0;
};

}  // namespace hcm::soap
