// SOAP 1.1 envelope construction and parsing (RPC style, section-5
// encoding) — the control half of the VSG wire protocol.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"
#include "obs/trace.hpp"

namespace hcm {
class BlockStream;
}

namespace hcm::soap {

struct Fault {
  std::string code;    // e.g. "SOAP-ENV:Server"
  std::string string;  // human-readable
  std::string detail;

  [[nodiscard]] Status to_status() const;
  static Fault from_status(const Status& status);
};

using NamedValues = std::vector<std::pair<std::string, Value>>;

// A parsed RPC envelope: either a call/response body or a fault.
struct Envelope {
  bool is_fault = false;
  Fault fault;
  std::string method;      // body element local name
  std::string method_ns;   // body element namespace URI (xmlns attr)
  NamedValues params;      // in-order child parameters
  // From the <hcm:Trace> header, when present (zero ids otherwise).
  obs::TraceContext trace;
};

[[nodiscard]] std::string build_call(const std::string& ns,
                                     const std::string& method,
                                     const NamedValues& params);
// As above, plus an <hcm:Trace traceId spanId> header when `trace` is
// valid — the cross-island propagation half of obs tracing. With an
// invalid (zeroed) context the output is byte-identical to the
// header-less form.
[[nodiscard]] std::string build_call(const std::string& ns,
                                     const std::string& method,
                                     const NamedValues& params,
                                     const obs::TraceContext& trace);
[[nodiscard]] std::string build_response(const std::string& ns,
                                         const std::string& method,
                                         const Value& result);
[[nodiscard]] std::string build_fault(const Fault& fault);

// Recycled-sink forms: byte-identical envelopes rendered into a
// caller-owned string (cleared first, capacity kept), so steady-state
// RPC loops rebuild bodies without reallocating.
void build_call_into(std::string& out, const std::string& ns,
                     const std::string& method, const NamedValues& params,
                     const obs::TraceContext& trace);
void build_response_into(std::string& out, const std::string& ns,
                         const std::string& method, const Value& result);
void build_fault_into(std::string& out, const Fault& fault);

// Pooled-sink forms: byte-identical envelopes appended to a
// BlockStream, so the wire path renders straight into the HTTP body's
// pooled blocks with no intermediate std::string.
void build_call_to(BlockStream& out, const std::string& ns,
                   const std::string& method, const NamedValues& params,
                   const obs::TraceContext& trace);
void build_response_to(BlockStream& out, const std::string& ns,
                       const std::string& method, const Value& result);
void build_fault_to(BlockStream& out, const Fault& fault);

[[nodiscard]] Result<Envelope> parse_envelope(std::string_view body);

// Parse into a caller-owned (typically recycled) Envelope: field and
// param-entry capacities from the previous parse are reused, so a
// steady-state RPC loop parses without per-call allocation. On error
// the envelope's contents are unspecified.
[[nodiscard]] Status parse_envelope_into(std::string_view body, Envelope& env);

}  // namespace hcm::soap
