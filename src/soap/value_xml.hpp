// Value <-> SOAP section-5 encoded XML, with xsi:type annotations —
// the data half of the VSG wire protocol.
#pragma once

#include "common/status.hpp"
#include "common/value.hpp"
#include "xml/xml.hpp"

namespace hcm::soap {

// Appends a child element <name xsi:type=...>...</name> encoding v.
void value_to_xml(const std::string& name, const Value& v, xml::Element& parent);

// Decodes an encoded element produced by value_to_xml (or by any SOAP
// peer using xsd/SOAP-ENC types).
[[nodiscard]] Result<Value> value_from_xml(const xml::Element& elem);

// Streaming forms for the wire hot path: byte-identical encoding
// rendered straight into the writer's buffer, and decoding straight off
// pull-parser events — no intermediate Element tree either way.
void value_write(std::string_view name, const Value& v, xml::Writer& w);
// Pre: the parser just produced kStart for the encoded element.
// Post: the matching kEnd has been consumed.
[[nodiscard]] Result<Value> value_from_pull(xml::PullParser& p);

// The xsi:type string used for a ValueType ("xsd:long", "xsd:string", ...).
[[nodiscard]] const char* xsi_type_for(ValueType t);
// Maps an xsi:type string back to a ValueType (kNull when unknown).
[[nodiscard]] ValueType value_type_for_xsi(std::string_view xsi);

}  // namespace hcm::soap
