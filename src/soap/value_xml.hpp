// Value <-> SOAP section-5 encoded XML, with xsi:type annotations —
// the data half of the VSG wire protocol.
#pragma once

#include "common/status.hpp"
#include "common/value.hpp"
#include "xml/xml.hpp"

namespace hcm::soap {

// Appends a child element <name xsi:type=...>...</name> encoding v.
void value_to_xml(const std::string& name, const Value& v, xml::Element& parent);

// Decodes an encoded element produced by value_to_xml (or by any SOAP
// peer using xsd/SOAP-ENC types).
[[nodiscard]] Result<Value> value_from_xml(const xml::Element& elem);

// The xsi:type string used for a ValueType ("xsd:long", "xsd:string", ...).
[[nodiscard]] const char* xsi_type_for(ValueType t);
// Maps an xsi:type string back to a ValueType (kNull when unknown).
[[nodiscard]] ValueType value_type_for_xsi(std::string_view xsi);

}  // namespace hcm::soap
