// WSDL 1.1 emit/parse for service interfaces. The Virtual Service
// Repository stores these documents; Server Proxies are generated from
// parsed WSDL on the consuming island (paper §3.3, §4.1).
#pragma once

#include <string>

#include "common/interface_desc.hpp"
#include "common/status.hpp"
#include "common/uri.hpp"

namespace hcm::soap {

struct WsdlDocument {
  InterfaceDesc interface;
  std::string service_name;  // deployed service instance name
  Uri endpoint;              // soap:address location
};

// Emits a WSDL 1.1 document (rpc/encoded binding) for the interface,
// advertising `endpoint` as the SOAP address.
[[nodiscard]] std::string emit_wsdl(const InterfaceDesc& iface,
                                    const std::string& service_name,
                                    const Uri& endpoint);

// Parses a document produced by emit_wsdl (or a compatible subset).
[[nodiscard]] Result<WsdlDocument> parse_wsdl(std::string_view text);

// xsd type name for a ValueType, and back.
[[nodiscard]] const char* wsdl_type_for(ValueType t);
[[nodiscard]] ValueType value_type_for_wsdl(std::string_view name);

// Stable content digest of a WSDL document (FNV-1a 64-bit, rendered as
// 16 lowercase hex chars). The VSR delta-sync protocol keys description
// caches and lease renewals on this, so two registries/clients agree on
// "unchanged" without comparing (or transferring) document bodies.
[[nodiscard]] std::string wsdl_digest(std::string_view text);

}  // namespace hcm::soap
