// SOAP RPC endpoints: a server that dispatches envelope calls to
// registered method handlers, and a client that issues calls. These are
// the exact mechanics the Virtual Service Gateway speaks between
// middleware islands.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "http/client.hpp"
#include "http/server.hpp"
#include "obs/metrics.hpp"
#include "obs/slab.hpp"
#include "soap/envelope.hpp"

namespace hcm::soap {

// Same type as hcm::InvokeResultFn (the VSG moves completions across
// the soap boundary without re-wrapping).
using CallResultFn = SmallFn<void(Result<Value>), 192>;
// A method handler: receives named params, answers asynchronously.
using MethodHandler =
    std::function<void(const NamedValues& params, CallResultFn done)>;

// Dispatch service mounted at a path on an HttpServer. Multiple
// SoapServices can share one HttpServer (one per mounted path).
class SoapService {
 public:
  SoapService(http::HttpServer& http_server, std::string path);
  ~SoapService();
  SoapService(const SoapService&) = delete;
  SoapService& operator=(const SoapService&) = delete;

  void register_method(const std::string& method, MethodHandler handler);
  void unregister_method(const std::string& method);
  [[nodiscard]] bool has_method(const std::string& method) const {
    return methods_.count(method) != 0;
  }
  // Every mounted method name, sorted (hcm_lint checks that each wire
  // op has a round-trip fixture).
  [[nodiscard]] std::vector<std::string> method_names() const {
    std::vector<std::string> out;
    out.reserve(methods_.size());
    for (const auto& [name, handler] : methods_) out.push_back(name);
    return out;
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t calls_handled() const {
    return calls_handled_.value();
  }

 private:
  void handle(const http::Request& req, http::RespondFn respond);
  // Envelope free-list: handle() borrows one for the duration of its
  // frame (a synchronous nested dispatch borrows another), so request
  // parsing reuses string/param capacities call over call.
  std::unique_ptr<Envelope> acquire_env();
  void release_env(std::unique_ptr<Envelope> env);

  http::HttpServer& http_server_;
  std::string path_;
  std::map<std::string, MethodHandler> methods_;
  std::vector<std::unique_ptr<Envelope>> env_pool_;
  std::string obs_scope_;
  obs::Counter& calls_handled_;
  obs::Counter& faults_sent_;
};

// Client-side SOAP call helper.
class SoapClient {
 public:
  SoapClient(net::Network& net, net::NodeId node,
             http::HttpClient::Options options = http::HttpClient::Options{})
      : http_(net, node, options),
        calls_sent_(obs::shard_registry().counter(
            obs::shard_registry().unique_scope("soap.client") +
            ".calls_sent")) {}

  // Invokes `method` at dest/path. The result callback receives the
  // decoded return value or the fault converted back to a Status.
  void call(net::Endpoint dest, const std::string& path,
            const std::string& ns, const std::string& method,
            const NamedValues& params, CallResultFn done);

  [[nodiscard]] std::uint64_t calls_sent() const { return calls_sent_.value(); }

 private:
  http::HttpClient http_;
  // Response-parse scratch: deliveries are serialized per client (the
  // single-threaded scheduler runs one callback at a time), and the
  // result Value is moved out before `done` runs, so a nested call
  // issued from inside a completion can safely reuse it.
  Envelope env_scratch_;
  obs::Counter& calls_sent_;
};

}  // namespace hcm::soap
