// Discrete-event simulation kernel. The entire home network — links,
// protocol stacks, middleware timers, lease expirations — runs on one
// deterministic virtual clock, so every test and benchmark is exactly
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <random>
#include <string>
#include <vector>

#include "common/inline_fn.hpp"

namespace hcm::sim {

// Virtual time in microseconds since simulation start.
using SimTime = std::int64_t;
// Durations, also microseconds.
using Duration = std::int64_t;

constexpr Duration microseconds(std::int64_t n) { return n; }
constexpr Duration milliseconds(std::int64_t n) { return n * 1000; }
constexpr Duration seconds(std::int64_t n) { return n * 1000 * 1000; }

std::string format_time(SimTime t);  // "12.345678s"

// Sentinel returned by Scheduler::next_event_time for an empty queue.
constexpr SimTime kNoEventTime = INT64_MAX;

// Event closures are move-only with 64 bytes of guaranteed inline
// storage: a peer pointer plus an in-flight payload (BlockStream)
// schedules with zero heap allocations, which is what keeps the wire
// benches' allocs-per-call flat (docs/PERFORMANCE.md §"Block pool").
using EventFn = InlineFn<void(), 64>;
using EventId = std::uint64_t;

// Single-threaded event scheduler with cancellable events.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule fn at absolute virtual time t (clamped to now).
  EventId at(SimTime t, EventFn fn);
  // Schedule fn after delay d.
  EventId after(Duration d, EventFn fn) { return at(now_ + d, std::move(fn)); }

  // Cancel a pending event. Returns false if already fired or cancelled.
  bool cancel(EventId id);

  // Run until the queue is empty. Returns number of events processed.
  std::size_t run();
  // Run events with time <= t, then set now to t.
  std::size_t run_until(SimTime t);
  // Run for a relative duration.
  std::size_t run_for(Duration d) { return run_until(now_ + d); }
  // Process exactly one event if any; returns false when queue is empty.
  bool step();

  [[nodiscard]] bool empty() const { return queue_.size() == cancelled_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_; }

  // Time of the earliest live event, or kNoEventTime when the queue is
  // empty. Prunes cancelled tombstones off the heap top; the sharded
  // kernel uses this to fast-forward idle windows to the next work.
  [[nodiscard]] SimTime next_event_time();

  // Deterministic simulation RNG (seeded; never wall-clock seeded).
  std::mt19937_64& rng() { return rng_; }
  void seed(std::uint64_t s) { rng_.seed(s); }

  // Events fired since construction (progress metric for benches).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  // Dispatch-trace hook: called as (time, event-id) immediately before
  // each event fires. Installed by sim::TraceRecorder to audit
  // determinism; at most one hook (empty fn detaches).
  using TraceFn = std::function<void(SimTime, EventId)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  // Callbacks live in a slab of generation-tagged slots recycled
  // through a LIFO free list (deterministic reuse order), so the hot
  // schedule/fire cycle touches no hash map and, once the slab is warm,
  // performs no per-event allocations beyond the callback's own
  // captures. A heap entry is stale (fired or cancelled) exactly when
  // its generation no longer matches the slot's.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
  };

  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
    std::uint32_t gen;
    // Ordered as a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  // Slot index biased by one so an EventId is never 0 (callers use 0 as
  // a "no event" sentinel).
  [[nodiscard]] static EventId pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }

  bool fire_next();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t cancelled_ = 0;
  std::uint64_t processed_ = 0;
  TraceFn trace_;
  std::mt19937_64 rng_{0x5eed5eedULL};
};

// Runs the scheduler until `done()` is true, the queue empties, or
// `max_events` have fired. The right way to wait for an asynchronous
// completion when periodic background activity (lease renewal, mailbox
// polling, isochronous ticks) keeps the queue permanently non-empty.
template <typename Pred>
std::size_t run_until_done(Scheduler& sched, Pred&& done,
                           std::size_t max_events = 10'000'000) {
  std::size_t n = 0;
  while (!done() && n < max_events && sched.step()) ++n;
  return n;
}

}  // namespace hcm::sim
