// Determinism auditor: records the scheduler's (time, event-id)
// dispatch sequence as a running 64-bit hash. Two runs of the same
// scenario with the same seed must produce identical hashes; any
// divergence means nondeterminism crept into the kernel or the code on
// top of it (unordered-container iteration order leaking into event
// scheduling, wall-clock reads, data races under future threading).
// tests/sim/determinism_test.cpp pins this contract on the fig4
// Jini<->X10 scenario; docs/CORRECTNESS.md states the rules.
#pragma once

#include <cstdint>

#include "sim/scheduler.hpp"

namespace hcm::sim {

// FNV-1a, 64-bit — stable across platforms and runs by construction.
class TraceHash {
 public:
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (x >> (i * 8)) & 0xffU;
      hash_ *= 0x100000001b3ULL;
    }
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Attaches to a Scheduler (via Scheduler::set_trace) on construction
// and detaches on destruction. At most one recorder per scheduler.
class TraceRecorder {
 public:
  explicit TraceRecorder(Scheduler& sched);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Hash over every (time, id) dispatch observed so far.
  [[nodiscard]] std::uint64_t digest() const { return hash_.digest(); }
  [[nodiscard]] std::uint64_t events() const { return events_; }
  // Virtual time of the last dispatch observed (0 if none yet).
  [[nodiscard]] SimTime last_time() const { return last_time_; }

 private:
  Scheduler& sched_;
  TraceHash hash_;
  std::uint64_t events_ = 0;
  SimTime last_time_ = 0;
};

}  // namespace hcm::sim
