#include "sim/sharded_kernel.hpp"

#include <algorithm>
#include <chrono>

namespace hcm::sim {

namespace {

// splitmix64 — decorrelates per-shard RNG streams from one scenario
// seed without consuming the seed value itself for shard 0.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Busy-time telemetry for the scaling bench; never feeds back into
// simulation state, so determinism is unaffected.
std::uint64_t wall_ns() {
  // hcm:allow(determinism-wallclock): per-shard busy-time telemetry only
  auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

// The calling thread's shard binding. A null kernel means unbound.
thread_local ShardedKernel::Context t_ctx{nullptr, 0};

}  // namespace

ShardedKernel::ShardedKernel(ShardedKernelOptions options)
    : lookahead_(options.lookahead),
      barrier_(options.shards > 1 ? options.shards : 0) {
  HCM_CHECK_MSG(options.shards >= 1, "at least one shard");
  HCM_CHECK_MSG(options.lookahead > 0, "lookahead must be positive");
  shards_.reserve(options.shards);
  for (ShardId s = 0; s < options.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  const std::size_t n = options.shards;
  channels_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    channels_.push_back(std::make_unique<Channel>(options.channel_capacity));
  }
  if (n > 1) {
    workers_.reserve(n);
    for (ShardId s = 0; s < n; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

ShardedKernel::~ShardedKernel() {
  barrier_.stop();
  for (std::thread& w : workers_) w.join();
}

void ShardedKernel::set_lookahead(Duration d) {
  HCM_CHECK(!running_);
  HCM_CHECK_MSG(d > 0, "lookahead must be positive");
  lookahead_ = d;
}

void ShardedKernel::seed(std::uint64_t s) {
  shards_[0]->sched.seed(s);
  for (ShardId i = 1; i < shards(); ++i) {
    shards_[i]->sched.seed(splitmix64(s + i));
  }
}

const ShardedKernel::Context* ShardedKernel::current() {
  return t_ctx.kernel != nullptr ? &t_ctx : nullptr;
}

ShardedKernel::Context ShardedKernel::exchange_context(Context next) {
  Context prev = t_ctx;
  t_ctx = next;
  return prev;
}

Scheduler& ShardedKernel::current_scheduler() {
  const Context* ctx = current();
  if (ctx != nullptr && ctx->kernel == this) return shard(ctx->shard);
  return shard(0);
}

ShardId ShardedKernel::current_shard() const {
  const Context* ctx = current();
  return ctx != nullptr && ctx->kernel == this ? ctx->shard : 0;
}

void ShardedKernel::post(ShardId dst, SimTime when, EventFn fn) {
  const Context* ctx = current();
  HCM_CHECK_MSG(ctx != nullptr && ctx->kernel == this,
                "post() requires the calling thread to be bound to a shard");
  HCM_CHECK(dst < shards());
  cross_posts_.fetch_add(1, std::memory_order_relaxed);
  Channel& ch = channel(ctx->shard, dst);
  Msg m{when, std::move(fn)};
  if (ch.overflowed || !ch.ring.push(std::move(m))) {
    // Keep FIFO: once a window spills, the rest of it spills too. The
    // spill lane is producer-private until the barrier hands it to the
    // coordinator, so no lock is needed.
    ch.overflowed = true;
    ch.overflow.push_back(std::move(m));
    overflow_posts_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardedKernel::inject(ShardId dst, Duration delay, EventFn fn) {
  HCM_CHECK_MSG(!running_, "inject() is coordinator-side, between windows");
  HCM_CHECK(dst < shards());
  shards_[dst]->sched.after(delay, std::move(fn));
}

SimTime ShardedKernel::earliest_pending() {
  SimTime next = kNoEventTime;
  for (const auto& sh : shards_) {
    next = std::min(next, sh->sched.next_event_time());
  }
  return next;
}

std::size_t ShardedKernel::run_window(SimTime window_end) {
  HCM_CHECK(!running_);
  HCM_CHECK(shards() > 1);
  if (window_end < floor_) window_end = floor_;
  running_ = true;
  window_end_ = window_end;  // published by open_epoch's mutex hand-off
  barrier_.open_epoch();
  barrier_.wait_all_arrived();
  running_ = false;
  std::size_t fired = 0;
  for (const auto& sh : shards_) fired += sh->fired;
  drain_channels();
  floor_ = window_end;
  ++windows_;
  if (window_hook_) window_hook_(floor_);
  return fired;
}

void ShardedKernel::drain_channels() {
  // Fixed (src, dst) order: together with per-shard determinism this
  // pins the arrival sequence numbers on every destination slab, which
  // is what makes N-shard trace hashes reproducible run to run.
  const ShardId n = shards();
  for (ShardId src = 0; src < n; ++src) {
    for (ShardId dst = 0; dst < n; ++dst) {
      Channel& ch = channel(src, dst);
      Scheduler& ss = shards_[dst]->sched;
      auto deliver = [&](Msg&& m) {
        if (m.when < ss.now()) ++clamped_;
        ss.at(m.when, std::move(m.fn));
      };
      while (auto m = ch.ring.pop()) deliver(std::move(*m));
      for (Msg& m : ch.overflow) deliver(std::move(m));
      ch.overflow.clear();
      ch.overflowed = false;
    }
  }
}

void ShardedKernel::worker_loop(ShardId s) {
  Shard& sh = *shards_[s];
  std::uint64_t seen = 0;
  for (;;) {
    const std::uint64_t epoch = barrier_.await_epoch(seen);
    if (epoch == 0) return;  // stopped
    seen = epoch;
    const SimTime end = window_end_;
    Context prev = exchange_context(Context{this, s});
    const std::uint64_t t0 = wall_ns();
    sh.fired = sh.sched.run_until(end);
    sh.busy_ns += wall_ns() - t0;
    (void)exchange_context(prev);
    barrier_.arrive();
  }
}

std::size_t ShardedKernel::run_until(SimTime t) {
  if (shards() == 1) {
    // Single shard: drive the slab directly, step-for-step identical to
    // the legacy single-threaded kernel.
    std::size_t n = 0;
    run_as(0, [&] { n = shard(0).run_until(t); });
    floor_ = std::max(floor_, t);
    if (window_hook_) window_hook_(floor_);
    return n;
  }
  std::size_t fired = 0;
  while (floor_ < t) {
    const SimTime next = earliest_pending();
    SimTime window_end;
    if (next == kNoEventTime || next > t) {
      window_end = t;  // nothing left before t: one idle hop to the end
    } else {
      // Idle fast-forward: open the window just before the next event
      // so sparse scenarios don't pay a barrier per empty lookahead.
      const SimTime start = next > floor_ + 1 ? next - 1 : floor_;
      window_end = std::min(t, start + lookahead_);
    }
    fired += run_window(window_end);
  }
  return fired;
}

std::size_t ShardedKernel::run() {
  if (shards() == 1) {
    std::size_t n = 0;
    run_as(0, [&] { n = shard(0).run(); });
    floor_ = std::max(floor_, shard(0).now());
    if (window_hook_) window_hook_(floor_);
    return n;
  }
  std::size_t fired = 0;
  for (;;) {
    const SimTime next = earliest_pending();
    if (next == kNoEventTime) break;
    const SimTime start = next > floor_ + 1 ? next - 1 : floor_;
    fired += run_window(start + lookahead_);
  }
  return fired;
}

std::uint64_t ShardedKernel::events_processed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->sched.events_processed();
  return n;
}

std::vector<std::uint64_t> ShardedKernel::busy_ns() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) out.push_back(sh->busy_ns);
  return out;
}

}  // namespace hcm::sim
