// Sharded parallel simulation kernel: N slab Schedulers (one per
// worker shard) advanced in lock step through conservative time
// windows (docs/SHARDING.md).
//
// The synchronization model is classic conservative PDES. All shards
// share a global floor F; each window runs every shard independently
// from F to W = F + L, where the lookahead L is the minimum
// cross-shard link latency of the scenario (the backbone Ethernet
// latency in the smart-home testbeds). A cross-shard delivery sent at
// time t carries latency >= L, so it arrives at t + latency > W and
// can never land inside the window that produced it — shards need no
// mid-window communication at all. Deliveries are enqueued on
// per-ordered-shard-pair SPSC rings and drained by the coordinator at
// the window barrier in fixed (src, dst) order, which keeps the fig. 4
// trace-hash audit bit-identical across runs at any fixed shard count.
//
// A 1-shard kernel spawns no threads and drives shard 0's Scheduler
// directly (step-for-step the same dispatch sequence as the legacy
// single-threaded kernel), so `shards=1` is byte-identical to today's
// behavior by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sim/barrier.hpp"
#include "sim/scheduler.hpp"
#include "sim/spsc_queue.hpp"

namespace hcm::sim {

using ShardId = std::uint32_t;

struct ShardedKernelOptions {
  ShardId shards = 1;
  // Conservative window length. Must be <= the minimum cross-shard
  // delivery latency; scenario builders tighten it via set_lookahead
  // once the topology (and thus the real minimum) is known.
  Duration lookahead = milliseconds(5);
  // Per ordered shard pair; overruns spill to a vector drained at the
  // same barrier (FIFO order preserved).
  std::size_t channel_capacity = 1024;
};

class ShardedKernel {
 public:
  explicit ShardedKernel(ShardedKernelOptions options = {});
  ~ShardedKernel();
  ShardedKernel(const ShardedKernel&) = delete;
  ShardedKernel& operator=(const ShardedKernel&) = delete;

  [[nodiscard]] ShardId shards() const {
    return static_cast<ShardId>(shards_.size());
  }
  [[nodiscard]] Scheduler& shard(ShardId s) { return shards_[s]->sched; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  void set_lookahead(Duration d);  // between runs only
  [[nodiscard]] SimTime now() const { return floor_; }
  [[nodiscard]] bool running() const { return running_; }

  // Seeds shard 0 with exactly `s` (keeping 1-shard runs identical to
  // a legacy `Scheduler::seed(s)` run) and shard i>0 with a splitmix64
  // derivation so shard streams are decorrelated but reproducible.
  void seed(std::uint64_t s);

  // --- shard context ----------------------------------------------------
  // Worker loops (and run_as) publish which shard the calling thread is
  // executing; shard-aware layers (net::Network::scheduler) read it to
  // route work to the caller's own slab.
  struct Context {
    ShardedKernel* kernel;
    ShardId shard;
  };
  [[nodiscard]] static const Context* current();
  [[nodiscard]] Scheduler& current_scheduler();
  [[nodiscard]] ShardId current_shard() const;

  // Run fn with the calling thread bound to shard s, then restore the
  // previous binding. The way scenario code drives island objects from
  // the coordinator thread between windows: timers and sends issued
  // inside land on the island's own shard. Must not be used while a
  // parallel window is in flight.
  template <typename Fn>
  void run_as(ShardId s, Fn&& fn) {
    HCM_CHECK(s < shards());
    Context prev = exchange_context(Context{this, s});
    fn();
    (void)exchange_context(prev);
  }

  // --- cross-shard traffic ----------------------------------------------
  // From a worker in a window: enqueue fn to fire on shard dst at
  // absolute time `when`. Conservative contract: when must be > the
  // current window's end; deliveries that would violate it are clamped
  // to the destination clock at drain time (deterministically — the
  // clamp count is exposed so tests can pin it to zero).
  void post(ShardId dst, SimTime when, EventFn fn);
  // From the coordinator between windows: schedule directly onto dst's
  // slab (single-threaded access; no queue needed).
  void inject(ShardId dst, Duration delay, EventFn fn);

  // --- window loop -------------------------------------------------------
  // All return the number of events fired. run_until advances every
  // shard's clock to exactly t (like Scheduler::run_until); run()
  // drains until all shards and channels are empty.
  std::size_t run_until(SimTime t);
  std::size_t run_for(Duration d) { return run_until(floor_ + d); }
  std::size_t run();

  // Window-granular analogue of sim::run_until_done: runs windows until
  // done() holds at a barrier, the simulation drains, or max_windows
  // elapse. At 1 shard this steps event-at-a-time, matching the legacy
  // helper exactly.
  template <typename Pred>
  std::size_t run_until_done(Pred&& done, std::size_t max_windows = 200'000) {
    if (shards() == 1) {
      std::size_t n = 0;
      run_as(0, [&] { n = sim::run_until_done(shard(0), done); });
      floor_ = shard(0).now();
      if (window_hook_) window_hook_(floor_);
      return n;
    }
    std::size_t fired = 0;
    for (std::size_t w = 0; w < max_windows && !done(); ++w) {
      const SimTime next = earliest_pending();
      if (next == kNoEventTime) break;
      const SimTime start = next > floor_ + 1 ? next - 1 : floor_;
      fired += run_window(start + lookahead_);
    }
    return fired;
  }

  // --- window hook --------------------------------------------------------
  // Called on the coordinator thread after every window barrier (all
  // channels drained, floor advanced, no worker in flight) with the new
  // floor, and at the equivalent quiesced points of the 1-shard
  // direct-drive paths. obs::TimeSeriesRecorder hangs its merged-slab
  // sampling off this; the hook stays a generic callback because sim
  // must not include obs (layering). At most one hook; an empty
  // std::function detaches. Hooks must not schedule events or mutate
  // simulation state — they are observers of the quiesced barrier state.
  using WindowHook = std::function<void(SimTime floor)>;
  void set_window_hook(WindowHook hook) { window_hook_ = std::move(hook); }

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  [[nodiscard]] std::uint64_t cross_shard_posts() const {
    return cross_posts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow_posts() const {
    return overflow_posts_.load(std::memory_order_relaxed);
  }
  // Deliveries whose requested time had already passed on the
  // destination shard at drain (lookahead-contract violations absorbed
  // deterministically).
  [[nodiscard]] std::uint64_t clamped_deliveries() const { return clamped_; }
  [[nodiscard]] std::uint64_t events_processed() const;
  // Wall-clock nanoseconds each shard spent executing events since
  // construction — the parallel-efficiency metric for the scaling
  // bench (sum/max across shards estimates achievable speedup even on
  // core-starved CI machines).
  [[nodiscard]] std::vector<std::uint64_t> busy_ns() const;

 private:
  struct Msg {
    SimTime when = 0;
    EventFn fn;
  };

  struct Channel {
    explicit Channel(std::size_t capacity) : ring(capacity) {}
    SpscQueue<Msg> ring;
    // Spill lane: written only by the producing worker mid-window,
    // consumed only by the coordinator at the barrier (mutex-free; the
    // barrier hand-off orders the accesses). `overflowed` keeps FIFO
    // order — once a window spills, the rest of the window spills too.
    std::vector<Msg> overflow;
    bool overflowed = false;
  };

  struct Shard {
    Scheduler sched;
    std::size_t fired = 0;           // events in the current window
    std::uint64_t busy_ns = 0;       // written by its worker only
  };

  // Swap the calling thread's shard binding, returning the previous
  // one (value copy, so nested run_as restores correctly).
  static Context exchange_context(Context next);
  [[nodiscard]] Channel& channel(ShardId src, ShardId dst) {
    return *channels_[src * shards() + dst];
  }
  [[nodiscard]] SimTime earliest_pending();
  std::size_t run_window(SimTime window_end);
  void drain_channels();
  void worker_loop(ShardId s);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Channel>> channels_;  // src * N + dst
  Duration lookahead_;
  SimTime floor_ = 0;
  bool running_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t clamped_ = 0;
  WindowHook window_hook_;
  std::atomic<std::uint64_t> cross_posts_{0};
  std::atomic<std::uint64_t> overflow_posts_{0};

  // Parallel machinery (unused at 1 shard: no threads are spawned).
  WindowBarrier barrier_;
  SimTime window_end_ = 0;  // published via the barrier's mutex hand-off
  std::vector<std::thread> workers_;
};

}  // namespace hcm::sim
