#include "sim/scheduler.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace hcm::sim {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds",
                static_cast<long long>(t / 1000000),
                static_cast<long long>(t % 1000000));
  return buf;
}

EventId Scheduler::at(SimTime t, EventFn fn) {
  if (t < now_) t = now_;
  EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Scheduler::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  ++cancelled_;  // heap entry becomes a tombstone, skipped on pop
  return true;
}

bool Scheduler::fire_next() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled tombstone
      HCM_DCHECK(cancelled_ > 0);
      --cancelled_;
      continue;
    }
    HCM_CHECK_MSG(e.time >= now_, "virtual time must never go backwards");
    queue_.pop();
    now_ = e.time;
    EventFn fn = std::move(it->second);
    callbacks_.erase(it);
    ++processed_;
    if (trace_) trace_(now_, e.id);
    fn();
    return true;
  }
  return false;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime t) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Entry e = queue_.top();
    if (callbacks_.find(e.id) == callbacks_.end()) {
      queue_.pop();
      HCM_DCHECK(cancelled_ > 0);
      --cancelled_;
      continue;
    }
    if (e.time > t) break;
    if (fire_next()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

bool Scheduler::step() { return fire_next(); }

}  // namespace hcm::sim
