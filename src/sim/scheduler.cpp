#include "sim/scheduler.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace hcm::sim {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds",
                static_cast<long long>(t / 1000000),
                static_cast<long long>(t % 1000000));
  return buf;
}

EventId Scheduler::at(SimTime t, EventFn fn) {
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  const std::uint32_t gen = slots_[slot].gen;
  queue_.push(Entry{t, next_seq_++, slot, gen});
  return pack(slot, gen);
}

bool Scheduler::cancel(EventId id) {
  if (id == 0) return false;
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL) - 1;
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.fn) return false;
  s.fn = nullptr;
  ++s.gen;  // heap entry becomes a stale-generation tombstone
  free_slots_.push_back(slot);
  ++cancelled_;
  return true;
}

bool Scheduler::fire_next() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    if (slots_[e.slot].gen != e.gen) {
      queue_.pop();  // cancelled tombstone
      HCM_DCHECK(cancelled_ > 0);
      --cancelled_;
      continue;
    }
    HCM_CHECK_MSG(e.time >= now_, "virtual time must never go backwards");
    queue_.pop();
    now_ = e.time;
    EventFn fn = std::move(slots_[e.slot].fn);
    slots_[e.slot].fn = nullptr;
    ++slots_[e.slot].gen;
    free_slots_.push_back(e.slot);
    ++processed_;
    if (trace_) trace_(now_, pack(e.slot, e.gen));
    // No slab references may be held across the callback: it schedules
    // freely and slots_ can grow.
    fn();
    return true;
  }
  return false;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime t) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    if (slots_[e.slot].gen != e.gen) {
      queue_.pop();
      HCM_DCHECK(cancelled_ > 0);
      --cancelled_;
      continue;
    }
    if (e.time > t) break;
    if (fire_next()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

bool Scheduler::step() { return fire_next(); }

SimTime Scheduler::next_event_time() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    if (slots_[e.slot].gen != e.gen) {
      queue_.pop();
      HCM_DCHECK(cancelled_ > 0);
      --cancelled_;
      continue;
    }
    return e.time;
  }
  return kNoEventTime;
}

}  // namespace hcm::sim
