#include "sim/trace.hpp"

#include "common/check.hpp"

namespace hcm::sim {

TraceRecorder::TraceRecorder(Scheduler& sched) : sched_(sched) {
  sched_.set_trace([this](SimTime t, EventId id) {
    HCM_DCHECK_MSG(t >= last_time_, "trace saw time move backwards");
    hash_.mix(static_cast<std::uint64_t>(t));
    hash_.mix(id);
    ++events_;
    last_time_ = t;
  });
}

TraceRecorder::~TraceRecorder() { sched_.set_trace({}); }

}  // namespace hcm::sim
