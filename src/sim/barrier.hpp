// Reusable epoch barrier for the sharded kernel's window loop. The
// coordinator opens an epoch (one epoch = one conservative time
// window), every worker runs its shard's slab scheduler up to the
// window end and arrives, and the coordinator waits for all arrivals
// before draining the cross-shard queues single-threaded.
//
// Mutex + condvar rather than atomic spinning: windows are milliseconds
// of virtual time and typically thousands of events, so wakeup latency
// is noise, and blocked workers must yield the core on machines with
// fewer cores than shards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/check.hpp"

namespace hcm::sim {

class WindowBarrier {
 public:
  explicit WindowBarrier(std::size_t parties) : parties_(parties) {}
  WindowBarrier(const WindowBarrier&) = delete;
  WindowBarrier& operator=(const WindowBarrier&) = delete;

  // Coordinator: publish a new epoch and wake every worker. Any state
  // the coordinator wrote before the call (window end, injected
  // events) is visible to workers via the mutex hand-off.
  void open_epoch() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      HCM_CHECK_MSG(arrived_ == 0, "previous epoch still in flight");
      ++epoch_;
    }
    cv_start_.notify_all();
  }

  // Coordinator: block until every worker has arrived, then reset the
  // arrival count for the next epoch.
  void wait_all_arrived() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return arrived_ == parties_; });
    arrived_ = 0;
  }

  // Worker: block until an epoch newer than `last_seen` opens (returns
  // its number) or the barrier is stopped (returns 0).
  [[nodiscard]] std::uint64_t await_epoch(std::uint64_t last_seen) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_start_.wait(lk, [&] { return stop_ || epoch_ != last_seen; });
    return stop_ ? 0 : epoch_;
  }

  // Worker: report this epoch's shard work done.
  void arrive() {
    bool all = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      HCM_CHECK(arrived_ < parties_);
      all = ++arrived_ == parties_;
    }
    if (all) cv_done_.notify_one();
  }

  // Coordinator (destruction path): release every worker permanently.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
  }

  [[nodiscard]] std::size_t parties() const { return parties_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace hcm::sim
