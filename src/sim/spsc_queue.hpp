// Single-producer/single-consumer ring used for cross-shard event
// traffic in the sharded kernel. One queue exists per ordered shard
// pair (src, dst): the src worker pushes during a window, the
// coordinator pops at the window barrier, so at any instant at most
// one thread is on each end. Lock-free with acquire/release head/tail
// so pushes stay allocation-free and wait-free on the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace hcm::sim {

template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to a power of two (index masking instead of
  // modulo on the hot path).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when full (caller spills to its
  // overflow lane — the producer must never block against a consumer
  // that only drains at barriers).
  bool push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.
  std::optional<T> pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return std::nullopt;
    std::optional<T> out(std::move(slots_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  // Approximate when both ends are live; exact at a barrier.
  [[nodiscard]] std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace hcm::sim
