#include "xml/xml.hpp"

#include <array>
#include <cctype>
#include <cstring>

#include "common/block_stream.hpp"
#include "common/strings.hpp"

namespace hcm::xml {

namespace {

// Byte-class table for the hot scanning loops. std::isalnum/isspace are
// locale calls and string_view::find_first_of is a nested per-char loop
// in libstdc++ — both show up directly in envelope encode/decode cost,
// so the scanners below use one table lookup per byte instead.
constexpr std::uint8_t kName = 1;     // XML name characters
constexpr std::uint8_t kSpace = 2;    // XML whitespace
constexpr std::uint8_t kTextEsc = 4;  // needs escaping in text: & < >
constexpr std::uint8_t kAttrEsc = 8;  // needs escaping in attrs: & < > " '

constexpr auto make_char_class() {
  std::array<std::uint8_t, 256> t{};
  for (unsigned c = '0'; c <= '9'; ++c) t[c] |= kName;
  for (unsigned c = 'a'; c <= 'z'; ++c) t[c] |= kName;
  for (unsigned c = 'A'; c <= 'Z'; ++c) t[c] |= kName;
  t[':'] |= kName;
  t['_'] |= kName;
  t['-'] |= kName;
  t['.'] |= kName;
  t[' '] |= kSpace;
  t['\t'] |= kSpace;
  t['\n'] |= kSpace;
  t['\r'] |= kSpace;
  t['\f'] |= kSpace;
  t['\v'] |= kSpace;
  t['&'] |= kTextEsc | kAttrEsc;
  t['<'] |= kTextEsc | kAttrEsc;
  t['>'] |= kTextEsc | kAttrEsc;
  t['"'] |= kAttrEsc;
  t['\''] |= kAttrEsc;
  return t;
}

constexpr std::array<std::uint8_t, 256> kCharClass = make_char_class();

[[nodiscard]] inline bool has_class(char c, std::uint8_t mask) {
  return (kCharClass[static_cast<unsigned char>(c)] & mask) != 0;
}

// First position in s at or after `start` whose class intersects
// `mask`, or s.size().
[[nodiscard]] inline std::size_t scan_for(std::string_view s,
                                          std::size_t start,
                                          std::uint8_t mask) {
  std::size_t i = start;
  while (i < s.size() && !has_class(s[i], mask)) ++i;
  return i;
}

}  // namespace

std::string_view Element::local_name() const {
  auto colon = name_.find(':');
  return colon == std::string::npos
             ? std::string_view(name_)
             : std::string_view(name_).substr(colon + 1);
}

Element& Element::set_attr(std::string name, std::string value) {
  for (auto& a : attrs_) {
    if (a.name == name) {
      a.value = std::move(value);
      return *this;
    }
  }
  attrs_.push_back({std::move(name), std::move(value)});
  return *this;
}

const std::string* Element::attr(std::string_view name) const {
  for (const auto& a : attrs_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

const std::string* Element::attr_local(std::string_view name) const {
  for (const auto& a : attrs_) {
    std::string_view n = a.name;
    auto colon = n.find(':');
    if (colon != std::string_view::npos) n = n.substr(colon + 1);
    if (n == name) return &a.value;
  }
  return nullptr;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::add_child(ElementPtr child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

Element& Element::add_text(std::string text) {
  texts_.push_back(std::move(text));
  return *this;
}

Element& Element::set_text(std::string text) {
  texts_.clear();
  texts_.push_back(std::move(text));
  return *this;
}

const Element* Element::child(std::string_view local) const {
  for (const auto& c : children_) {
    if (c->local_name() == local) return c.get();
  }
  return nullptr;
}

Element* Element::child(std::string_view local) {
  for (const auto& c : children_) {
    if (c->local_name() == local) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(
    std::string_view local) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->local_name() == local) out.push_back(c.get());
  }
  return out;
}

std::string Element::text() const {
  std::string out;
  for (const auto& t : texts_) out += t;
  return out;
}

std::string_view Element::text_view(std::string& scratch) const {
  if (texts_.empty()) return {};
  if (texts_.size() == 1) return texts_.front();
  scratch.clear();
  for (const auto& t : texts_) scratch += t;
  return scratch;
}

namespace {

// One escape core for both sinks; the sink shims keep the string
// version's bytes (pinned by XmlWriterTest) authoritative for both.
inline void sink_append(std::string& out, std::string_view s) {
  out.append(s);
}
inline void sink_append(BlockStream& out, std::string_view s) {
  out.append(s);
}

template <typename Out>
void append_escaped_text_impl(Out& out, std::string_view s) {
  std::size_t start = 0;
  while (true) {
    std::size_t i = scan_for(s, start, kTextEsc);
    if (i == s.size()) {
      sink_append(out, s.substr(start));
      return;
    }
    sink_append(out, s.substr(start, i - start));
    switch (s[i]) {
      case '&': sink_append(out, "&amp;"); break;
      case '<': sink_append(out, "&lt;"); break;
      default: sink_append(out, "&gt;"); break;
    }
    start = i + 1;
  }
}

template <typename Out>
void append_escaped_attr_impl(Out& out, std::string_view s) {
  std::size_t start = 0;
  while (true) {
    std::size_t i = scan_for(s, start, kAttrEsc);
    if (i == s.size()) {
      sink_append(out, s.substr(start));
      return;
    }
    sink_append(out, s.substr(start, i - start));
    switch (s[i]) {
      case '&': sink_append(out, "&amp;"); break;
      case '<': sink_append(out, "&lt;"); break;
      case '>': sink_append(out, "&gt;"); break;
      case '"': sink_append(out, "&quot;"); break;
      default: sink_append(out, "&apos;"); break;
    }
    start = i + 1;
  }
}

}  // namespace

void append_escaped_text(std::string& out, std::string_view s) {
  append_escaped_text_impl(out, s);
}

void append_escaped_attr(std::string& out, std::string_view s) {
  append_escaped_attr_impl(out, s);
}

void append_escaped_text(BlockStream& out, std::string_view s) {
  append_escaped_text_impl(out, s);
}

void append_escaped_attr(BlockStream& out, std::string_view s) {
  append_escaped_attr_impl(out, s);
}

std::string escape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_escaped_text(out, s);
  return out;
}

std::string escape_attr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_escaped_attr(out, s);
  return out;
}

void Element::render(std::string& out, int indent) const {
  auto pad = [&](int n) {
    if (n >= 0) out.append(static_cast<std::size_t>(n) * 2, ' ');
  };
  pad(indent);
  out += '<';
  out += name_;
  for (const auto& a : attrs_) {
    out += ' ';
    out += a.name;
    out += "=\"";
    append_escaped_attr(out, a.value);
    out += '"';
  }
  if (texts_.empty() && children_.empty()) {
    out += "/>";
    if (indent >= 0) out += '\n';
    return;
  }
  out += '>';
  for (const auto& t : texts_) append_escaped_text(out, t);
  if (!children_.empty()) {
    if (indent >= 0) out += '\n';
    for (const auto& c : children_) {
      c->render(out, indent >= 0 ? indent + 1 : -1);
    }
    pad(indent);
  }
  out += "</";
  out += name_;
  out += '>';
  if (indent >= 0) out += '\n';
}

std::string Element::to_string() const {
  std::string out;
  render(out, -1);
  return out;
}

std::string Element::to_pretty_string() const {
  std::string out;
  render(out, 0);
  return out;
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

void Writer::put(char c) {
  if (str_ != nullptr) {
    *str_ += c;
  } else {
    blk_->put(c);
  }
}

void Writer::put(std::string_view s) {
  if (str_ != nullptr) {
    str_->append(s);
  } else {
    blk_->append(s);
  }
}

std::size_t Writer::out_size() const {
  return str_ != nullptr ? str_->size() : blk_->size();
}

void Writer::push_open(Open o) {
  if (depth_ < kInlineDepth) {
    stack_[depth_] = o;
  } else {
    deep_.push_back(o);
  }
  ++depth_;
}

Writer::Open Writer::pop_open() {
  --depth_;
  if (depth_ < kInlineDepth) return stack_[depth_];
  const Open o = deep_.back();
  deep_.pop_back();
  return o;
}

void Writer::close_start_tag() {
  if (in_start_tag_) {
    put('>');
    in_start_tag_ = false;
  }
}

Writer& Writer::start(std::string_view name) {
  close_start_tag();
  put('<');
  const auto off = static_cast<std::uint32_t>(out_size());
  put(name);
  push_open({off, static_cast<std::uint32_t>(name.size())});
  in_start_tag_ = true;
  return *this;
}

Writer& Writer::attr(std::string_view name, std::string_view value) {
  put(' ');
  put(name);
  put("=\"");
  if (str_ != nullptr) {
    append_escaped_attr(*str_, value);
  } else {
    append_escaped_attr(*blk_, value);
  }
  put('"');
  return *this;
}

Writer& Writer::text(std::string_view s) {
  close_start_tag();
  if (str_ != nullptr) {
    append_escaped_text(*str_, s);
  } else {
    append_escaped_text(*blk_, s);
  }
  return *this;
}

Writer& Writer::raw(std::string_view s) {
  close_start_tag();
  put(s);
  return *this;
}

Writer& Writer::end() {
  const Open open = pop_open();
  if (in_start_tag_) {
    put("/>");
    in_start_tag_ = false;
    return *this;
  }
  if (str_ != nullptr) {
    // Reserve first: the close-tag name is copied out of the buffer
    // itself, so the source must not move mid-append.
    str_->reserve(str_->size() + open.name_len + 3);
    str_->append("</");
    str_->append(str_->data() + open.name_off, open.name_len);
    *str_ += '>';
    return *this;
  }
  // Block sink: the name is read back out of the stream in bounded
  // chunks (block appends never move already-written bytes).
  blk_->append("</");
  char tmp[64];
  std::size_t off = open.name_off;
  std::size_t left = open.name_len;
  while (left > 0) {
    const std::size_t take = left < sizeof(tmp) ? left : sizeof(tmp);
    blk_->copy_to(tmp, off, take);
    blk_->append(tmp, take);
    off += take;
    left -= take;
  }
  blk_->put('>');
  return *this;
}

Writer& Writer::leaf(std::string_view name, std::string_view text_content) {
  return start(name).text(text_content).end();
}

Writer& Writer::prolog() {
  put("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
  return *this;
}

// ---------------------------------------------------------------------
// PullParser
// ---------------------------------------------------------------------

namespace {

[[nodiscard]] bool is_name_char(char c) { return has_class(c, kName); }

[[nodiscard]] std::string_view local_of(std::string_view name) {
  auto colon = name.find(':');
  return colon == std::string_view::npos ? name : name.substr(colon + 1);
}

// Decodes one entity reference (`ent` excludes '&' and ';') into `out`.
Status decode_one_entity(std::string_view ent, std::string& out) {
  if (ent == "amp") {
    out += '&';
  } else if (ent == "lt") {
    out += '<';
  } else if (ent == "gt") {
    out += '>';
  } else if (ent == "quot") {
    out += '"';
  } else if (ent == "apos") {
    out += '\'';
  } else if (!ent.empty() && ent[0] == '#') {
    long code = 0;
    bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
    for (std::size_t j = hex ? 2 : 1; j < ent.size(); ++j) {
      char c = ent[j];
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (hex && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (hex && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return protocol_error("bad character reference");
      code = code * (hex ? 16 : 10) + digit;
      if (code > 0x10FFFF) return protocol_error("bad character reference");
    }
    // Encode as UTF-8.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  } else {
    return protocol_error("unknown entity &" + std::string(ent) + ";");
  }
  return Status::ok();
}

}  // namespace

std::string_view PullParser::Attr::local_name() const {
  return local_of(name);
}

std::string_view PullParser::local_name() const { return local_of(name_); }

const PullParser::Attr* PullParser::find_attr(std::string_view name) const {
  for (const auto& a : attrs_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const PullParser::Attr* PullParser::find_attr_local(
    std::string_view local) const {
  for (const auto& a : attrs_) {
    if (local_of(a.name) == local) return &a;
  }
  return nullptr;
}

Result<std::string_view> PullParser::decode(std::string_view raw,
                                            std::string& scratch) {
  std::size_t amp = raw.find('&');
  if (amp == std::string_view::npos) return raw;  // fast path: nothing encoded
  const std::size_t scratch0 = scratch.size();
  std::size_t i = 0;
  while (true) {
    scratch.append(raw.data() + i, amp - i);
    auto semi = raw.find(';', amp);
    if (semi == std::string_view::npos) {
      return protocol_error("unterminated entity");
    }
    if (auto s = decode_one_entity(raw.substr(amp + 1, semi - amp - 1), scratch);
        !s.is_ok()) {
      return s;
    }
    i = semi + 1;
    amp = raw.find('&', i);
    if (amp == std::string_view::npos) {
      scratch.append(raw.data() + i, raw.size() - i);
      return std::string_view(scratch).substr(scratch0);
    }
  }
}

void PullParser::skip_ws() {
  while (!eof() && has_class(peek(), kSpace)) ++pos_;
}

bool PullParser::skip_comment() {
  if (!lookahead("<!--")) return false;
  auto end = in_.find("-->", pos_ + 4);
  pos_ = end == std::string_view::npos ? in_.size() : end + 3;
  return true;
}

void PullParser::skip_prolog() {
  while (true) {
    skip_ws();
    if (lookahead("<?")) {
      auto end = in_.find("?>", pos_ + 2);
      pos_ = end == std::string_view::npos ? in_.size() : end + 2;
    } else if (lookahead("<!--")) {
      skip_comment();
    } else if (lookahead("<!DOCTYPE")) {
      auto end = in_.find('>', pos_);
      pos_ = end == std::string_view::npos ? in_.size() : end + 1;
    } else {
      return;
    }
  }
}

Result<std::string_view> PullParser::read_name() {
  std::size_t start = pos_;
  while (!eof() && is_name_char(peek())) ++pos_;
  if (pos_ == start) return protocol_error("expected XML name");
  return in_.substr(start, pos_ - start);
}

Result<PullParser::Event> PullParser::read_start_tag() {
  ++pos_;  // past '<'
  auto name = read_name();
  if (!name.is_ok()) return name.status();
  name_ = name.value();
  attrs_.clear();
  while (true) {
    skip_ws();
    if (eof()) return protocol_error("unterminated start tag");
    if (lookahead("/>")) {
      pos_ += 2;
      pending_end_ = true;  // not pushed on open_: kEnd follows directly
      return Event::kStart;
    }
    if (peek() == '>') {
      ++pos_;
      open_.push_back(name_);
      return Event::kStart;
    }
    auto attr_name = read_name();
    if (!attr_name.is_ok()) return attr_name.status();
    skip_ws();
    if (eof() || peek() != '=') return protocol_error("expected '='");
    ++pos_;
    skip_ws();
    if (eof() || (peek() != '"' && peek() != '\'')) {
      return protocol_error("expected quoted attribute value");
    }
    char quote = peek();
    ++pos_;
    auto end = in_.find(quote, pos_);
    if (end == std::string_view::npos) {
      return protocol_error("unterminated attribute value");
    }
    attrs_.push_back({attr_name.value(), in_.substr(pos_, end - pos_)});
    pos_ = end + 1;
  }
}

Result<PullParser::Event> PullParser::next() {
  if (pending_end_) {
    pending_end_ = false;
    if (open_.empty()) done_ = true;
    return Event::kEnd;
  }
  if (!started_) {
    skip_prolog();
    if (eof() || peek() != '<') return protocol_error("expected '<'");
    started_ = true;
    return read_start_tag();
  }
  if (done_) {
    // Only whitespace and comments may follow the root element.
    while (true) {
      skip_ws();
      if (!skip_comment()) break;
    }
    if (!eof()) return protocol_error("trailing content after root element");
    return Event::kEof;
  }
  while (true) {
    if (eof()) {
      return protocol_error("unterminated element " + std::string(open_.back()));
    }
    if (lookahead("</")) {
      pos_ += 2;
      auto close = read_name();
      if (!close.is_ok()) return close.status();
      if (close.value() != open_.back()) {
        return protocol_error("mismatched close tag: " +
                              std::string(close.value()) + " vs " +
                              std::string(open_.back()));
      }
      skip_ws();
      if (eof() || peek() != '>') return protocol_error("expected '>'");
      ++pos_;
      name_ = close.value();
      open_.pop_back();
      if (open_.empty()) done_ = true;
      return Event::kEnd;
    }
    if (lookahead("<!--")) {
      skip_comment();
      continue;
    }
    if (lookahead("<![CDATA[")) {
      auto end = in_.find("]]>", pos_ + 9);
      if (end == std::string_view::npos) {
        return protocol_error("unterminated CDATA");
      }
      text_ = in_.substr(pos_ + 9, end - pos_ - 9);
      cdata_ = true;
      pos_ = end + 3;
      return Event::kText;
    }
    if (peek() == '<') return read_start_tag();
    // Text run up to the next '<'.
    auto end = in_.find('<', pos_);
    if (end == std::string_view::npos) {
      return protocol_error("unterminated element content");
    }
    text_ = in_.substr(pos_, end - pos_);
    cdata_ = false;
    pos_ = end;
    return Event::kText;
  }
}

Result<std::string_view> PullParser::text(std::string& scratch) const {
  if (cdata_) return text_;  // CDATA is never entity-decoded
  return decode(text_, scratch);
}

bool PullParser::text_is_ws() const {
  if (cdata_) return false;  // CDATA runs are content by definition
  if (text_.find('&') == std::string_view::npos) {
    return trim(text_).empty();
  }
  std::string scratch;
  auto decoded = decode(text_, scratch);
  // A malformed run is not droppable noise; the error surfaces when the
  // consumer decodes it.
  return decoded.is_ok() && trim(decoded.value()).empty();
}

Status PullParser::skip_element() {
  int depth = 1;
  while (depth > 0) {
    auto ev = next();
    if (!ev.is_ok()) return ev.status();
    if (ev.value() == Event::kStart) ++depth;
    else if (ev.value() == Event::kEnd) --depth;
    else if (ev.value() == Event::kEof) {
      return protocol_error("unexpected end of document");
    }
  }
  return Status::ok();
}

// ---------------------------------------------------------------------
// Tree parser (PullParser-backed)
// ---------------------------------------------------------------------

Result<ElementPtr> parse(std::string_view input) {
  PullParser p(input);
  ElementPtr root;
  std::vector<Element*> stack;
  std::string scratch;
  while (true) {
    auto ev = p.next();
    if (!ev.is_ok()) return ev.status();
    switch (ev.value()) {
      case PullParser::Event::kStart: {
        auto elem = std::make_unique<Element>(std::string(p.name()));
        for (const auto& a : p.attrs()) {
          scratch.clear();
          auto value = PullParser::decode(a.raw_value, scratch);
          if (!value.is_ok()) return value.status();
          elem->set_attr(std::string(a.name), std::string(value.value()));
        }
        Element* raw = elem.get();
        if (stack.empty()) {
          root = std::move(elem);
        } else {
          stack.back()->add_child(std::move(elem));
        }
        stack.push_back(raw);
        break;
      }
      case PullParser::Event::kEnd:
        stack.pop_back();
        break;
      case PullParser::Event::kText: {
        if (p.text_is_cdata()) {
          stack.back()->add_text(std::string(p.raw_text()));
          break;
        }
        scratch.clear();
        auto decoded = p.text(scratch);
        if (!decoded.is_ok()) return decoded.status();
        // Drop pure-whitespace runs (formatting noise between elements).
        if (!trim(decoded.value()).empty()) {
          stack.back()->add_text(std::string(decoded.value()));
        }
        break;
      }
      case PullParser::Event::kEof:
        return root;
    }
  }
}

}  // namespace hcm::xml
