#include "xml/xml.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace hcm::xml {

std::string_view Element::local_name() const {
  auto colon = name_.find(':');
  return colon == std::string::npos
             ? std::string_view(name_)
             : std::string_view(name_).substr(colon + 1);
}

Element& Element::set_attr(std::string name, std::string value) {
  for (auto& a : attrs_) {
    if (a.name == name) {
      a.value = std::move(value);
      return *this;
    }
  }
  attrs_.push_back({std::move(name), std::move(value)});
  return *this;
}

const std::string* Element::attr(std::string_view name) const {
  for (const auto& a : attrs_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

const std::string* Element::attr_local(std::string_view name) const {
  for (const auto& a : attrs_) {
    std::string_view n = a.name;
    auto colon = n.find(':');
    if (colon != std::string_view::npos) n = n.substr(colon + 1);
    if (n == name) return &a.value;
  }
  return nullptr;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::add_child(ElementPtr child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

Element& Element::add_text(std::string text) {
  texts_.push_back(std::move(text));
  return *this;
}

Element& Element::set_text(std::string text) {
  texts_.clear();
  texts_.push_back(std::move(text));
  return *this;
}

const Element* Element::child(std::string_view local) const {
  for (const auto& c : children_) {
    if (c->local_name() == local) return c.get();
  }
  return nullptr;
}

Element* Element::child(std::string_view local) {
  for (const auto& c : children_) {
    if (c->local_name() == local) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(
    std::string_view local) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->local_name() == local) out.push_back(c.get());
  }
  return out;
}

std::string Element::text() const {
  std::string out;
  for (const auto& t : texts_) out += t;
  return out;
}

std::string escape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_attr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void Element::render(std::string& out, int indent) const {
  auto pad = [&](int n) {
    if (n >= 0) out.append(static_cast<std::size_t>(n) * 2, ' ');
  };
  pad(indent);
  out += '<';
  out += name_;
  for (const auto& a : attrs_) {
    out += ' ';
    out += a.name;
    out += "=\"";
    out += escape_attr(a.value);
    out += '"';
  }
  if (texts_.empty() && children_.empty()) {
    out += "/>";
    if (indent >= 0) out += '\n';
    return;
  }
  out += '>';
  for (const auto& t : texts_) out += escape_text(t);
  if (!children_.empty()) {
    if (indent >= 0) out += '\n';
    for (const auto& c : children_) {
      c->render(out, indent >= 0 ? indent + 1 : -1);
    }
    pad(indent);
  }
  out += "</";
  out += name_;
  out += '>';
  if (indent >= 0) out += '\n';
}

std::string Element::to_string() const {
  std::string out;
  render(out, -1);
  return out;
}

std::string Element::to_pretty_string() const {
  std::string out;
  render(out, 0);
  return out;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  Result<ElementPtr> parse_document() {
    skip_prolog();
    auto root = parse_element();
    if (!root.is_ok()) return root;
    skip_ws_and_comments();
    if (pos_ != in_.size()) {
      return protocol_error("trailing content after root element");
    }
    return root;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= in_.size(); }
  [[nodiscard]] char peek() const { return in_[pos_]; }
  [[nodiscard]] bool lookahead(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  bool skip_comment() {
    if (!lookahead("<!--")) return false;
    auto end = in_.find("-->", pos_ + 4);
    pos_ = end == std::string_view::npos ? in_.size() : end + 3;
    return true;
  }

  void skip_ws_and_comments() {
    while (true) {
      skip_ws();
      if (!skip_comment()) return;
    }
  }

  void skip_prolog() {
    while (true) {
      skip_ws();
      if (lookahead("<?")) {
        auto end = in_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? in_.size() : end + 2;
      } else if (lookahead("<!--")) {
        skip_comment();
      } else if (lookahead("<!DOCTYPE")) {
        auto end = in_.find('>', pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  [[nodiscard]] static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' ||
           c == '_' || c == '-' || c == '.';
  }

  Result<std::string> parse_name() {
    std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    if (pos_ == start) return protocol_error("expected XML name");
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return protocol_error("unterminated entity");
      }
      auto ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") out += '&';
      else if (ent == "lt") out += '<';
      else if (ent == "gt") out += '>';
      else if (ent == "quot") out += '"';
      else if (ent == "apos") out += '\'';
      else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
        for (std::size_t j = hex ? 2 : 1; j < ent.size(); ++j) {
          char c = ent[j];
          int digit;
          if (c >= '0' && c <= '9') digit = c - '0';
          else if (hex && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
          else if (hex && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
          else return protocol_error("bad character reference");
          code = code * (hex ? 16 : 10) + digit;
          if (code > 0x10FFFF) return protocol_error("bad character reference");
        }
        // Encode as UTF-8.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (code >> 18));
          out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
      } else {
        return protocol_error("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<ElementPtr> parse_element() {
    if (eof() || peek() != '<') return protocol_error("expected '<'");
    ++pos_;
    auto name = parse_name();
    if (!name.is_ok()) return name.status();
    auto elem = std::make_unique<Element>(name.value());

    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) return protocol_error("unterminated start tag");
      if (lookahead("/>")) {
        pos_ += 2;
        return elem;
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      auto attr_name = parse_name();
      if (!attr_name.is_ok()) return attr_name.status();
      skip_ws();
      if (eof() || peek() != '=') return protocol_error("expected '='");
      ++pos_;
      skip_ws();
      if (eof() || (peek() != '"' && peek() != '\'')) {
        return protocol_error("expected quoted attribute value");
      }
      char quote = peek();
      ++pos_;
      auto end = in_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return protocol_error("unterminated attribute value");
      }
      auto value = decode_entities(in_.substr(pos_, end - pos_));
      if (!value.is_ok()) return value.status();
      pos_ = end + 1;
      elem->set_attr(attr_name.value(), value.value());
    }

    // Content.
    while (true) {
      if (eof()) return protocol_error("unterminated element " + name.value());
      if (lookahead("</")) {
        pos_ += 2;
        auto close = parse_name();
        if (!close.is_ok()) return close.status();
        if (close.value() != name.value()) {
          return protocol_error("mismatched close tag: " + close.value() +
                                " vs " + name.value());
        }
        skip_ws();
        if (eof() || peek() != '>') return protocol_error("expected '>'");
        ++pos_;
        return elem;
      }
      if (lookahead("<!--")) {
        skip_comment();
        continue;
      }
      if (lookahead("<![CDATA[")) {
        auto end = in_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return protocol_error("unterminated CDATA");
        }
        elem->add_text(std::string(in_.substr(pos_ + 9, end - pos_ - 9)));
        pos_ = end + 3;
        continue;
      }
      if (peek() == '<') {
        auto childr = parse_element();
        if (!childr.is_ok()) return childr.status();
        elem->add_child(std::move(childr).take());
        continue;
      }
      // Text run up to the next '<'.
      auto end = in_.find('<', pos_);
      if (end == std::string_view::npos) {
        return protocol_error("unterminated element content");
      }
      auto raw = in_.substr(pos_, end - pos_);
      pos_ = end;
      auto decoded = decode_entities(raw);
      if (!decoded.is_ok()) return decoded.status();
      // Drop pure-whitespace runs (formatting noise between elements).
      if (!trim(decoded.value()).empty()) {
        elem->add_text(std::move(decoded).take());
      }
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ElementPtr> parse(std::string_view input) {
  return Parser(input).parse_document();
}

}  // namespace hcm::xml
