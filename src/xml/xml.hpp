// Minimal XML 1.0 document model, writer and non-validating parser —
// enough for SOAP 1.1 envelopes, WSDL documents, the UDDI-like registry
// and UPnP device descriptions. Supports elements, attributes, text,
// comments (skipped), CDATA, numeric and the five predefined entities.
//
// Two codec tiers share one tokenizer:
//   - the Element tree (build/inspect/serialize), for documents that
//     are genuinely tree-shaped (WSDL, UPnP descriptions, registry
//     records);
//   - the zero-copy PullParser + streaming Writer pair, for the wire
//     hot path (SOAP envelopes), where names and text stay
//     string_views into the retained input and output renders into a
//     caller-provided reusable buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hcm {
class BlockStream;
}

namespace hcm::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

struct Attribute {
  std::string name;
  std::string value;
};

// An XML element. Children are either elements or text runs; text()
// concatenates the direct text content.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // Local part of a possibly prefixed name ("soap:Envelope" -> "Envelope").
  [[nodiscard]] std::string_view local_name() const;

  // --- attributes ----------------------------------------------------
  Element& set_attr(std::string name, std::string value);
  [[nodiscard]] const std::string* attr(std::string_view name) const;
  // Matches by local name, ignoring namespace prefix.
  [[nodiscard]] const std::string* attr_local(std::string_view name) const;
  [[nodiscard]] const std::vector<Attribute>& attrs() const { return attrs_; }

  // --- children --------------------------------------------------------
  Element& add_child(std::string name);      // returns the new child
  Element& add_child(ElementPtr child);      // adopts
  Element& add_text(std::string text);       // returns *this
  Element& set_text(std::string text);       // clears children, sets text

  [[nodiscard]] const std::vector<ElementPtr>& children() const {
    return children_;
  }
  // First child element with the given local name (prefix-insensitive).
  [[nodiscard]] const Element* child(std::string_view local) const;
  [[nodiscard]] Element* child(std::string_view local);
  // All child elements with the given local name.
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view local) const;
  // Concatenated direct text content.
  [[nodiscard]] std::string text() const;
  // Direct text content without concatenation when there is at most one
  // run (the overwhelmingly common case); `scratch` backs the view only
  // when several runs must be joined.
  [[nodiscard]] std::string_view text_view(std::string& scratch) const;

  // --- serialization ----------------------------------------------------
  // Compact (no whitespace) rendering, suitable for the wire.
  [[nodiscard]] std::string to_string() const;
  // Compact rendering appended to a caller-provided (reusable) buffer.
  void render_to(std::string& out) const { render(out, -1); }
  // Indented rendering, for humans and docs.
  [[nodiscard]] std::string to_pretty_string() const;

 private:
  void render(std::string& out, int indent) const;  // indent<0 = compact

  // Mixed content is stored as text runs plus child elements; rendering
  // emits text before children, which is lossless for the protocols we
  // speak (SOAP/WSDL/UPnP never interleave text and elements).
  std::string name_;
  std::vector<Attribute> attrs_;
  std::vector<ElementPtr> children_;
  std::vector<std::string> texts_;
};

// Escapes text content (& < >) and attribute values (also " ').
[[nodiscard]] std::string escape_text(std::string_view s);
[[nodiscard]] std::string escape_attr(std::string_view s);
// Appending forms with a memcpy fast path: runs without special
// characters are copied in one shot instead of byte-by-byte. The
// BlockStream overloads emit the same bytes into pooled blocks.
void append_escaped_text(std::string& out, std::string_view s);
void append_escaped_attr(std::string& out, std::string_view s);
void append_escaped_text(BlockStream& out, std::string_view s);
void append_escaped_attr(BlockStream& out, std::string_view s);

// Streaming serializer: renders into a caller-provided buffer with the
// exact compact byte format Element::to_string produces, but with no
// intermediate tree. Close-tag names are remembered as offsets into the
// output buffer itself, so a writer performs no per-element
// allocations.
class Writer {
 public:
  // Appends to `out`; the caller clears/reuses the buffer between
  // messages. The buffer must outlive the writer. The BlockStream form
  // renders the identical bytes into pooled blocks — the wire path
  // uses it so envelope encoding touches the heap allocator only for
  // pathological nesting depth (docs/PERFORMANCE.md §"Block pool").
  explicit Writer(std::string& out) : str_(&out) {}
  explicit Writer(BlockStream& out) : blk_(&out) {}

  Writer& start(std::string_view name);
  // Valid only between start() and the first content/end() call.
  Writer& attr(std::string_view name, std::string_view value);
  Writer& text(std::string_view s);      // escaped text content
  Writer& raw(std::string_view s);       // pre-encoded content, no escaping
  Writer& end();                         // </name>, or /> when empty
  // Convenience: <name>text</name>.
  Writer& leaf(std::string_view name, std::string_view text_content);
  // <?xml version="1.0" encoding="UTF-8"?>
  Writer& prolog();

  [[nodiscard]] int depth() const { return depth_; }

 private:
  struct Open {
    std::uint32_t name_off;
    std::uint32_t name_len;
  };

  void close_start_tag();
  void put(char c);
  void put(std::string_view s);
  [[nodiscard]] std::size_t out_size() const;
  void push_open(Open o);
  [[nodiscard]] Open pop_open();

  std::string* str_ = nullptr;
  BlockStream* blk_ = nullptr;
  // Close-tag names are offsets into the output itself; the open stack
  // lives inline in the writer (SOAP/WSDL/UPnP nesting is shallow) with
  // a heap spill only past kInlineDepth.
  static constexpr int kInlineDepth = 24;
  Open stack_[kInlineDepth];
  std::vector<Open> deep_;
  int depth_ = 0;
  bool in_start_tag_ = false;
};

// Fixed inline storage with a heap spill past N — the pull parser's
// attribute and open-element stacks live in the parser object itself,
// so constructing a parser performs no allocations (SOAP envelopes
// never exceed the inline capacities). Element types must be trivially
// copyable (views). Once spilled, storage stays on the heap until
// clear().
template <typename T, std::size_t N>
class InlineVec {
 public:
  void clear() {
    n_ = 0;
    spilled_ = false;
    spill_.clear();
  }
  void push_back(T v) {
    if (!spilled_ && n_ < N) {
      buf_[n_++] = v;
      return;
    }
    if (!spilled_) {
      spill_.assign(buf_, buf_ + n_);
      spilled_ = true;
    }
    spill_.push_back(v);
  }
  void pop_back() {
    if (spilled_) {
      spill_.pop_back();
    } else {
      --n_;
    }
  }
  [[nodiscard]] std::size_t size() const {
    return spilled_ ? spill_.size() : n_;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return spilled_ ? spill_[i] : buf_[i];
  }
  [[nodiscard]] const T& back() const { return (*this)[size() - 1]; }
  [[nodiscard]] const T* begin() const {
    return spilled_ ? spill_.data() : buf_;
  }
  [[nodiscard]] const T* end() const { return begin() + size(); }

 private:
  T buf_[N];
  std::size_t n_ = 0;
  bool spilled_ = false;
  std::vector<T> spill_;
};

// Zero-copy pull parser: tokenizes the input into start/end/text events
// whose names and raw values are string_views into the input buffer,
// which the caller keeps alive for the parser's lifetime. Leading
// <?xml?>, <!DOCTYPE> and comments are skipped; a self-closing element
// produces kStart immediately followed by kEnd.
class PullParser {
 public:
  enum class Event { kStart, kEnd, kText, kEof };

  struct Attr {
    std::string_view name;
    std::string_view raw_value;  // still entity-encoded
    [[nodiscard]] std::string_view local_name() const;
  };

  explicit PullParser(std::string_view in) : in_(in) {}

  // Advances to the next event.
  [[nodiscard]] Result<Event> next();

  // kStart/kEnd: qualified and local tag name.
  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] std::string_view local_name() const;
  // kStart only: attributes with raw (still-encoded) values.
  [[nodiscard]] const InlineVec<Attr, 8>& attrs() const { return attrs_; }
  // Raw value of the attribute with this exact / local name, or empty
  // view when absent (found tells the cases apart).
  [[nodiscard]] const Attr* find_attr(std::string_view name) const;
  [[nodiscard]] const Attr* find_attr_local(std::string_view local) const;

  // kText: the raw (still-encoded) run; CDATA is already unwrapped and
  // is never entity-decoded.
  [[nodiscard]] std::string_view raw_text() const { return text_; }
  [[nodiscard]] bool text_is_cdata() const { return cdata_; }
  // Decoded text of the current run. Points into the input when no
  // decoding is needed; otherwise `scratch` backs it.
  [[nodiscard]] Result<std::string_view> text(std::string& scratch) const;
  // True when the decoded run is whitespace only (formatting noise).
  [[nodiscard]] bool text_is_ws() const;

  // Consumes events until the end tag matching the most recent kStart
  // has been consumed. Call right after a kStart event.
  [[nodiscard]] Status skip_element();

  // Decodes entity references. Returns `raw` itself when it contains no
  // '&' (the fast path); otherwise appends the decoded form to scratch
  // and returns a view of what was appended.
  [[nodiscard]] static Result<std::string_view> decode(std::string_view raw,
                                                       std::string& scratch);

 private:
  [[nodiscard]] bool eof() const { return pos_ >= in_.size(); }
  [[nodiscard]] char peek() const { return in_[pos_]; }
  [[nodiscard]] bool lookahead(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void skip_ws();
  bool skip_comment();
  void skip_prolog();
  [[nodiscard]] Result<std::string_view> read_name();
  [[nodiscard]] Result<Event> read_start_tag();

  std::string_view in_;
  std::size_t pos_ = 0;
  bool started_ = false;     // root element seen
  bool pending_end_ = false; // self-closing: deliver kEnd next
  bool done_ = false;        // root closed; only trailing noise allowed
  std::string_view name_;
  std::string_view text_;
  bool cdata_ = false;
  InlineVec<Attr, 8> attrs_;
  InlineVec<std::string_view, 16> open_;  // enclosing element names
};

// Parses a document; returns the root element. Leading <?xml?> and
// <!DOCTYPE> declarations and comments are skipped.
[[nodiscard]] Result<ElementPtr> parse(std::string_view input);

}  // namespace hcm::xml
