// Minimal XML 1.0 document model, writer and non-validating parser —
// enough for SOAP 1.1 envelopes, WSDL documents, the UDDI-like registry
// and UPnP device descriptions. Supports elements, attributes, text,
// comments (skipped), CDATA, numeric and the five predefined entities.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hcm::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

struct Attribute {
  std::string name;
  std::string value;
};

// An XML element. Children are either elements or text runs; text()
// concatenates the direct text content.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // Local part of a possibly prefixed name ("soap:Envelope" -> "Envelope").
  [[nodiscard]] std::string_view local_name() const;

  // --- attributes ----------------------------------------------------
  Element& set_attr(std::string name, std::string value);
  [[nodiscard]] const std::string* attr(std::string_view name) const;
  // Matches by local name, ignoring namespace prefix.
  [[nodiscard]] const std::string* attr_local(std::string_view name) const;
  [[nodiscard]] const std::vector<Attribute>& attrs() const { return attrs_; }

  // --- children --------------------------------------------------------
  Element& add_child(std::string name);      // returns the new child
  Element& add_child(ElementPtr child);      // adopts
  Element& add_text(std::string text);       // returns *this
  Element& set_text(std::string text);       // clears children, sets text

  [[nodiscard]] const std::vector<ElementPtr>& children() const {
    return children_;
  }
  // First child element with the given local name (prefix-insensitive).
  [[nodiscard]] const Element* child(std::string_view local) const;
  [[nodiscard]] Element* child(std::string_view local);
  // All child elements with the given local name.
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view local) const;
  // Concatenated direct text content.
  [[nodiscard]] std::string text() const;

  // --- serialization ----------------------------------------------------
  // Compact (no whitespace) rendering, suitable for the wire.
  [[nodiscard]] std::string to_string() const;
  // Indented rendering, for humans and docs.
  [[nodiscard]] std::string to_pretty_string() const;

 private:
  void render(std::string& out, int indent) const;  // indent<0 = compact

  // Mixed content is stored as text runs plus child elements; rendering
  // emits text before children, which is lossless for the protocols we
  // speak (SOAP/WSDL/UPnP never interleave text and elements).
  std::string name_;
  std::vector<Attribute> attrs_;
  std::vector<ElementPtr> children_;
  std::vector<std::string> texts_;
};

// Escapes text content (& < >) and attribute values (also " ').
[[nodiscard]] std::string escape_text(std::string_view s);
[[nodiscard]] std::string escape_attr(std::string_view s);

// Parses a document; returns the root element. Leading <?xml?> and
// <!DOCTYPE> declarations and comments are skipped.
[[nodiscard]] Result<ElementPtr> parse(std::string_view input);

}  // namespace hcm::xml
