#include "havi/stream_manager.hpp"

#include "havi/fcm_av.hpp"

namespace hcm::havi {

StreamManager::StreamManager(MessagingSystem& ms, net::Ieee1394Bus& bus)
    : ms_(ms), bus_(bus) {
  auto seid = ms_.register_system_element(
      kStreamManagerHandle,
      [this](const std::string& op, const ValueList& args,
             InvokeResultFn done) { handle(op, args, done); });
  seid_ = seid.is_ok() ? seid.value() : Seid{};
}

void StreamManager::handle(const std::string& op, const ValueList& args,
                           InvokeResultFn done) {
  if (op == "connect") {
    if (args.size() != 2) return done(invalid_argument("connect(src, sink)"));
    auto source = Seid::from_value(args[0]);
    auto sink = Seid::from_value(args[1]);
    if (!source.is_ok()) return done(source.status());
    if (!sink.is_ok()) return done(sink.status());
    return do_connect(source.value(), sink.value(), std::move(done));
  }
  if (op == "disconnect") {
    if (args.size() != 1) return done(invalid_argument("disconnect(id)"));
    auto id = args[0].to_int();
    if (!id.is_ok()) return done(invalid_argument("bad connection id"));
    return do_disconnect(id.value(), std::move(done));
  }
  if (op == "listConnections") {
    ValueList out;
    for (const auto& [id, c] : connections_) {
      out.push_back(Value(ValueMap{
          {"id", Value(c.id)},
          {"source", c.source.to_value()},
          {"sink", c.sink.to_value()},
          {"channel", Value(static_cast<std::int64_t>(c.channel))},
      }));
    }
    return done(Value(std::move(out)));
  }
  done(not_found("stream manager has no op " + op));
}

void StreamManager::do_connect(const Seid& source, const Seid& sink,
                               InvokeResultFn done) {
  auto channel = bus_.allocate_channel(kFrameBytes / 8);
  if (!channel.is_ok()) return done(channel.status());
  const auto ch = channel.value();
  const Value ch_value(static_cast<std::int64_t>(ch));

  // Sink first (so no frames are dropped), then source.
  ms_.send_request(
      seid_, sink, "sm.connectSink", {ch_value},
      [this, source, sink, ch, ch_value,
       done = std::move(done)](Result<Value> sink_result) mutable {
        if (!sink_result.is_ok()) {
          (void)bus_.release_channel(ch);
          return done(sink_result.status());
        }
        ms_.send_request(
            seid_, source, "sm.connectSource", {ch_value},
            [this, source, sink, ch,
             done = std::move(done)](Result<Value> source_result) {
              if (!source_result.is_ok()) {
                // Roll back the sink side.
                ms_.send_notification(seid_, sink, "sm.disconnect", {});
                (void)bus_.release_channel(ch);
                return done(source_result.status());
              }
              StreamConnection conn;
              conn.id = next_id_++;
              conn.source = source;
              conn.sink = sink;
              conn.channel = ch;
              connections_[conn.id] = conn;
              done(Value(ValueMap{
                  {"id", Value(conn.id)},
                  {"channel", Value(static_cast<std::int64_t>(ch))},
              }));
            });
      });
}

void StreamManager::do_disconnect(std::int64_t id, InvokeResultFn done) {
  auto it = connections_.find(id);
  if (it == connections_.end()) {
    return done(not_found("no such connection: " + std::to_string(id)));
  }
  StreamConnection conn = it->second;
  connections_.erase(it);
  ms_.send_notification(seid_, conn.source, "sm.disconnect", {});
  ms_.send_notification(seid_, conn.sink, "sm.disconnect", {});
  (void)bus_.release_channel(conn.channel);
  done(Value(true));
}

void StreamManagerClient::connect(const Seid& source, const Seid& sink,
                                  ConnectFn done) {
  ms_.send_request(
      self_, sm_, "connect", {source.to_value(), sink.to_value()},
      [source, sink, done = std::move(done)](Result<Value> r) {
        if (!r.is_ok()) return done(r.status());
        auto id = r.value().at("id").to_int();
        auto ch = r.value().at("channel").to_int();
        if (!id.is_ok() || !ch.is_ok()) {
          return done(protocol_error("bad connect reply"));
        }
        StreamConnection conn;
        conn.id = id.value();
        conn.source = source;
        conn.sink = sink;
        conn.channel = static_cast<net::IsoChannel>(ch.value());
        done(std::move(conn));
      });
}

void StreamManagerClient::disconnect(std::int64_t connection_id,
                                     std::function<void(const Status&)> done) {
  ms_.send_request(self_, sm_, "disconnect", {Value(connection_id)},
                   [done = std::move(done)](Result<Value> r) {
                     done(r.is_ok() ? Status::ok() : r.status());
                   });
}

}  // namespace hcm::havi
