#include "havi/fcm_av.hpp"

namespace hcm::havi {

const char* to_string(TransportState s) {
  switch (s) {
    case TransportState::kStop: return "STOP";
    case TransportState::kPlay: return "PLAY";
    case TransportState::kRecord: return "RECORD";
    case TransportState::kPause: return "PAUSE";
  }
  return "?";
}

// --- VCR ---------------------------------------------------------------

InterfaceDesc VcrFcm::describe_interface() {
  InterfaceDesc iface{
      "VcrControl",
      {
          MethodDesc{"play", {}, ValueType::kBool, false},
          MethodDesc{"stop", {}, ValueType::kBool, false},
          MethodDesc{"pause", {}, ValueType::kBool, false},
          MethodDesc{"record",
                     {{"durationMinutes", ValueType::kInt}},
                     ValueType::kBool,
                     false},
          MethodDesc{"getTransportState", {}, ValueType::kString, false},
          MethodDesc{"getCounter", {}, ValueType::kInt, false},
          MethodDesc{"getTapeFrames", {}, ValueType::kInt, false},
      }};
  iface.events.push_back(MethodDesc{
      "transportChanged", {{"state", ValueType::kString}}, ValueType::kNull,
      true});
  return iface;
}

VcrFcm::VcrFcm(MessagingSystem& ms, net::Ieee1394Bus& bus, std::string huid,
               std::string name)
    : Fcm(ms, "VCR", std::move(huid), std::move(name), describe_interface()),
      bus_(bus) {}

VcrFcm::~VcrFcm() {
  if (tick_event_ != 0) scheduler().cancel(tick_event_);
}

void VcrFcm::invoke(const std::string& method, const ValueList& args,
                    InvokeResultFn done) {
  if (method == "play") {
    if (tape_frames_ == 0) return done(unavailable("tape is empty"));
    play_position_ = 0;
    set_state(TransportState::kPlay);
    return done(Value(true));
  }
  if (method == "stop") {
    record_deadline_.reset();
    set_state(TransportState::kStop);
    return done(Value(true));
  }
  if (method == "pause") {
    if (state_ == TransportState::kStop) {
      return done(invalid_argument("cannot pause from STOP"));
    }
    set_state(TransportState::kPause);
    return done(Value(true));
  }
  if (method == "record") {
    auto minutes = args[0].to_int();
    if (!minutes.is_ok() || minutes.value() <= 0) {
      return done(invalid_argument("record duration must be positive"));
    }
    record_deadline_ =
        scheduler().now() + sim::seconds(minutes.value() * 60);
    set_state(TransportState::kRecord);
    return done(Value(true));
  }
  if (method == "getTransportState") {
    return done(Value(std::string(to_string(state_))));
  }
  if (method == "getCounter") {
    return done(Value(static_cast<std::int64_t>(play_position_)));
  }
  if (method == "getTapeFrames") {
    return done(Value(static_cast<std::int64_t>(tape_frames_)));
  }
  done(not_found("VcrFcm: " + method));
}

void VcrFcm::set_event_manager(Seid event_manager) {
  events_.emplace(messaging(), seid(), event_manager);
}

void VcrFcm::set_state(TransportState s) {
  const bool changed = state_ != s;
  state_ = s;
  if (changed && events_) {
    events_->post(name() + ".transportChanged",
                  Value(ValueMap{{"state", Value(std::string(to_string(s)))}}));
  }
  bool need_tick = (s == TransportState::kPlay && source_channel_) ||
                   s == TransportState::kRecord;
  if (need_tick && tick_event_ == 0) {
    tick_event_ = scheduler().after(kFramePeriod, [this] { tick(); });
  }
  if (!need_tick && tick_event_ != 0 && s != TransportState::kRecord &&
      s != TransportState::kPlay) {
    scheduler().cancel(tick_event_);
    tick_event_ = 0;
  }
}

void VcrFcm::tick() {
  tick_event_ = 0;
  if (state_ == TransportState::kPlay && source_channel_) {
    if (play_position_ < tape_frames_) {
      ++play_position_;
      (void)bus_.send_iso(*source_channel_, Bytes(kFrameBytes));
    } else {
      set_state(TransportState::kStop);  // end of tape
      return;
    }
  } else if (state_ == TransportState::kRecord) {
    // Without a connected sink channel the VCR records its own tuner
    // input; with one it captures the incoming stream (frames arrive in
    // the iso listener too — both paths advance the tape).
    if (!sink_channel_) ++tape_frames_;
    if (record_deadline_ && scheduler().now() >= *record_deadline_) {
      record_deadline_.reset();
      set_state(TransportState::kStop);
      return;
    }
  } else {
    return;  // paused or stopped: no rescheduling
  }
  tick_event_ = scheduler().after(kFramePeriod, [this] { tick(); });
}

Status VcrFcm::on_connect_source(net::IsoChannel ch) {
  source_channel_ = ch;
  return Status::ok();
}

Status VcrFcm::on_connect_sink(net::IsoChannel ch) {
  sink_channel_ = ch;
  sink_listener_ =
      bus_.listen_channel(ch, [this](net::IsoChannel, const Bytes&) {
        if (state_ == TransportState::kRecord) ++tape_frames_;
      });
  return Status::ok();
}

void VcrFcm::on_disconnect() {
  if (sink_channel_) bus_.unlisten_channel(*sink_channel_, sink_listener_);
  source_channel_.reset();
  sink_channel_.reset();
}

// --- DV camera -----------------------------------------------------------

InterfaceDesc DvCameraFcm::describe_interface() {
  return InterfaceDesc{
      "CameraControl",
      {
          MethodDesc{"startCapture", {}, ValueType::kBool, false},
          MethodDesc{"stopCapture", {}, ValueType::kBool, false},
          MethodDesc{"zoom", {{"level", ValueType::kInt}}, ValueType::kBool,
                     false},
          MethodDesc{"getStatus", {}, ValueType::kMap, false},
      }};
}

DvCameraFcm::DvCameraFcm(MessagingSystem& ms, net::Ieee1394Bus& bus,
                         std::string huid, std::string name)
    : Fcm(ms, "CAMERA", std::move(huid), std::move(name),
          describe_interface()),
      bus_(bus) {}

DvCameraFcm::~DvCameraFcm() {
  if (tick_event_ != 0) scheduler().cancel(tick_event_);
}

void DvCameraFcm::invoke(const std::string& method, const ValueList& args,
                         InvokeResultFn done) {
  if (method == "startCapture") {
    capturing_ = true;
    if (channel_ && tick_event_ == 0) {
      tick_event_ = scheduler().after(kFramePeriod, [this] { tick(); });
    }
    return done(Value(true));
  }
  if (method == "stopCapture") {
    capturing_ = false;
    return done(Value(true));
  }
  if (method == "zoom") {
    auto level = args[0].to_int();
    if (!level.is_ok() || level.value() < 1 || level.value() > 20) {
      return done(invalid_argument("zoom level must be 1..20"));
    }
    zoom_ = level.value();
    return done(Value(true));
  }
  if (method == "getStatus") {
    return done(Value(ValueMap{
        {"capturing", Value(capturing_)},
        {"zoom", Value(zoom_)},
        {"framesSent", Value(static_cast<std::int64_t>(frames_sent_))},
    }));
  }
  done(not_found("DvCameraFcm: " + method));
}

void DvCameraFcm::tick() {
  tick_event_ = 0;
  if (!capturing_ || !channel_) return;
  ++frames_sent_;
  (void)bus_.send_iso(*channel_, Bytes(kFrameBytes));
  tick_event_ = scheduler().after(kFramePeriod, [this] { tick(); });
}

Status DvCameraFcm::on_connect_source(net::IsoChannel ch) {
  channel_ = ch;
  if (capturing_ && tick_event_ == 0) {
    tick_event_ = scheduler().after(kFramePeriod, [this] { tick(); });
  }
  return Status::ok();
}

void DvCameraFcm::on_disconnect() { channel_.reset(); }

// --- Display -------------------------------------------------------------

InterfaceDesc DisplayFcm::describe_interface() {
  return InterfaceDesc{
      "DisplayControl",
      {
          MethodDesc{"powerOn", {}, ValueType::kBool, false},
          MethodDesc{"powerOff", {}, ValueType::kBool, false},
          MethodDesc{"selectInput", {{"input", ValueType::kString}},
                     ValueType::kBool, false},
          MethodDesc{"getStatus", {}, ValueType::kMap, false},
      }};
}

DisplayFcm::DisplayFcm(MessagingSystem& ms, net::Ieee1394Bus& bus,
                       std::string huid, std::string name)
    : Fcm(ms, "DISPLAY", std::move(huid), std::move(name),
          describe_interface()),
      bus_(bus) {}

DisplayFcm::~DisplayFcm() {
  if (channel_) bus_.unlisten_channel(*channel_, listener_);
}

void DisplayFcm::invoke(const std::string& method, const ValueList& args,
                        InvokeResultFn done) {
  if (method == "powerOn") {
    powered_ = true;
    return done(Value(true));
  }
  if (method == "powerOff") {
    powered_ = false;
    return done(Value(true));
  }
  if (method == "selectInput") {
    input_ = args[0].as_string();
    return done(Value(true));
  }
  if (method == "getStatus") {
    return done(Value(ValueMap{
        {"powered", Value(powered_)},
        {"input", Value(input_)},
        {"framesShown", Value(static_cast<std::int64_t>(frames_shown_))},
    }));
  }
  done(not_found("DisplayFcm: " + method));
}

Status DisplayFcm::on_connect_sink(net::IsoChannel ch) {
  channel_ = ch;
  listener_ = bus_.listen_channel(ch, [this](net::IsoChannel, const Bytes&) {
    if (powered_) ++frames_shown_;
  });
  return Status::ok();
}

void DisplayFcm::on_disconnect() {
  if (channel_) bus_.unlisten_channel(*channel_, listener_);
  channel_.reset();
}

// --- Tuner ---------------------------------------------------------------

InterfaceDesc TunerFcm::describe_interface() {
  return InterfaceDesc{
      "TunerControl",
      {
          MethodDesc{"setChannel", {{"channel", ValueType::kInt}},
                     ValueType::kBool, false},
          MethodDesc{"getChannel", {}, ValueType::kInt, false},
      }};
}

TunerFcm::TunerFcm(MessagingSystem& ms, net::Ieee1394Bus& bus,
                   std::string huid, std::string name)
    : Fcm(ms, "TUNER", std::move(huid), std::move(name), describe_interface()),
      bus_(bus) {}

TunerFcm::~TunerFcm() {
  if (tick_event_ != 0) scheduler().cancel(tick_event_);
}

void TunerFcm::invoke(const std::string& method, const ValueList& args,
                      InvokeResultFn done) {
  if (method == "setChannel") {
    auto channel = args[0].to_int();
    if (!channel.is_ok() || channel.value() < 1 || channel.value() > 999) {
      return done(invalid_argument("channel must be 1..999"));
    }
    tuned_channel_ = channel.value();
    return done(Value(true));
  }
  if (method == "getChannel") {
    return done(Value(tuned_channel_));
  }
  done(not_found("TunerFcm: " + method));
}

void TunerFcm::tick() {
  tick_event_ = 0;
  if (!iso_channel_) return;
  ++frames_sent_;
  (void)bus_.send_iso(*iso_channel_, Bytes(kFrameBytes));
  tick_event_ = scheduler().after(kFramePeriod, [this] { tick(); });
}

Status TunerFcm::on_connect_source(net::IsoChannel ch) {
  iso_channel_ = ch;
  if (tick_event_ == 0) {
    tick_event_ = scheduler().after(kFramePeriod, [this] { tick(); });
  }
  return Status::ok();
}

void TunerFcm::on_disconnect() {
  iso_channel_.reset();
  if (tick_event_ != 0) {
    scheduler().cancel(tick_event_);
    tick_event_ = 0;
  }
}

}  // namespace hcm::havi
