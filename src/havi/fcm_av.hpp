// The concrete AV FCMs the paper's applications exercise: VCR (the
// automatic-recording scenario), DV camera (the Universal Remote
// Controller photo shows one), display, and tuner. AV data moves as
// simulated DV frames over 1394 isochronous channels at ~30 fps.
#pragma once

#include <deque>
#include <optional>

#include "havi/event_manager.hpp"
#include "havi/fcm.hpp"

namespace hcm::havi {

// One simulated DV frame every 33 ms.
constexpr sim::Duration kFramePeriod = sim::milliseconds(33);
constexpr std::size_t kFrameBytes = 4096;

// --- VCR ---------------------------------------------------------------

enum class TransportState { kStop, kPlay, kRecord, kPause };
const char* to_string(TransportState s);

// Interface "VcrControl": play/stop/pause/record/getTransportState/
// getCounter/getTapeFrames.
class VcrFcm : public Fcm {
 public:
  VcrFcm(MessagingSystem& ms, net::Ieee1394Bus& bus, std::string huid,
         std::string name);
  ~VcrFcm() override;

  static InterfaceDesc describe_interface();

  [[nodiscard]] TransportState state() const { return state_; }
  [[nodiscard]] std::uint64_t tape_frames() const { return tape_frames_; }

  // Posts "<name>.transportChanged" to the bus Event Manager on every
  // transport-state change once an EM SEID is wired in.
  void set_event_manager(Seid event_manager);

 protected:
  void invoke(const std::string& method, const ValueList& args,
              InvokeResultFn done) override;
  Status on_connect_source(net::IsoChannel ch) override;
  Status on_connect_sink(net::IsoChannel ch) override;
  void on_disconnect() override;

 private:
  void set_state(TransportState s);
  void tick();

  net::Ieee1394Bus& bus_;
  TransportState state_ = TransportState::kStop;
  std::uint64_t tape_frames_ = 0;     // frames on the tape
  std::uint64_t play_position_ = 0;   // frames played back so far
  std::optional<net::IsoChannel> source_channel_;
  std::optional<net::IsoChannel> sink_channel_;
  net::IsoListenerId sink_listener_ = 0;
  sim::EventId tick_event_ = 0;
  std::optional<sim::SimTime> record_deadline_;
  std::optional<EventClient> events_;
};

// --- DV camera -----------------------------------------------------------

// Interface "CameraControl": startCapture/stopCapture/zoom/getStatus.
class DvCameraFcm : public Fcm {
 public:
  DvCameraFcm(MessagingSystem& ms, net::Ieee1394Bus& bus, std::string huid,
              std::string name);
  ~DvCameraFcm() override;

  static InterfaceDesc describe_interface();

  [[nodiscard]] bool capturing() const { return capturing_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

 protected:
  void invoke(const std::string& method, const ValueList& args,
              InvokeResultFn done) override;
  Status on_connect_source(net::IsoChannel ch) override;
  void on_disconnect() override;

 private:
  void tick();

  net::Ieee1394Bus& bus_;
  bool capturing_ = false;
  std::int64_t zoom_ = 1;
  std::uint64_t frames_sent_ = 0;
  std::optional<net::IsoChannel> channel_;
  sim::EventId tick_event_ = 0;
};

// --- Display -------------------------------------------------------------

// Interface "DisplayControl": powerOn/powerOff/selectInput/getStatus.
class DisplayFcm : public Fcm {
 public:
  DisplayFcm(MessagingSystem& ms, net::Ieee1394Bus& bus, std::string huid,
             std::string name);
  ~DisplayFcm() override;

  static InterfaceDesc describe_interface();

  [[nodiscard]] bool powered() const { return powered_; }
  [[nodiscard]] std::uint64_t frames_shown() const { return frames_shown_; }

 protected:
  void invoke(const std::string& method, const ValueList& args,
              InvokeResultFn done) override;
  Status on_connect_sink(net::IsoChannel ch) override;
  void on_disconnect() override;

 private:
  net::Ieee1394Bus& bus_;
  bool powered_ = false;
  std::string input_ = "1394";
  std::uint64_t frames_shown_ = 0;
  std::optional<net::IsoChannel> channel_;
  net::IsoListenerId listener_ = 0;
};

// --- Tuner ---------------------------------------------------------------

// Interface "TunerControl": setChannel/getChannel.
class TunerFcm : public Fcm {
 public:
  TunerFcm(MessagingSystem& ms, net::Ieee1394Bus& bus, std::string huid,
           std::string name);
  ~TunerFcm() override;

  static InterfaceDesc describe_interface();

  [[nodiscard]] std::int64_t channel() const { return tuned_channel_; }

 protected:
  void invoke(const std::string& method, const ValueList& args,
              InvokeResultFn done) override;
  Status on_connect_source(net::IsoChannel ch) override;
  void on_disconnect() override;

 private:
  void tick();

  net::Ieee1394Bus& bus_;
  std::int64_t tuned_channel_ = 1;
  std::uint64_t frames_sent_ = 0;
  std::optional<net::IsoChannel> iso_channel_;
  sim::EventId tick_event_ = 0;
};

}  // namespace hcm::havi
