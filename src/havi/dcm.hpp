// DCM (Device Control Module): represents one physical 1394 device and
// owns its FCMs. Announcing a DCM registers the DCM record plus every
// FCM in the bus Registry — the unit of device arrival in HAVi.
#pragma once

#include <memory>
#include <vector>

#include "havi/event_manager.hpp"
#include "havi/fcm.hpp"
#include "havi/stream_manager.hpp"

namespace hcm::havi {

class Dcm {
 public:
  Dcm(MessagingSystem& ms, std::string huid, std::string name);
  ~Dcm();
  Dcm(const Dcm&) = delete;
  Dcm& operator=(const Dcm&) = delete;

  [[nodiscard]] Seid seid() const { return seid_; }
  [[nodiscard]] const std::string& huid() const { return huid_; }

  // Takes ownership of an FCM belonging to this device.
  Fcm& add_fcm(std::unique_ptr<Fcm> fcm);
  [[nodiscard]] const std::vector<std::unique_ptr<Fcm>>& fcms() const {
    return fcms_;
  }

  // Registers the DCM and all its FCMs. `done` fires once everything
  // is registered (or with the first error).
  void announce(RegistryClient& rc, std::function<void(const Status&)> done);

 private:
  MessagingSystem& ms_;
  std::string huid_;
  std::string name_;
  Seid seid_;
  std::vector<std::unique_ptr<Fcm>> fcms_;
};

// Convenience bundle for the FAV controller node: messaging plus the
// three system software elements every HAVi bus needs. Construction
// starts messaging and mounts Registry, Event Manager and Stream
// Manager at their well-known handles.
struct FavController {
  FavController(net::Network& net, net::NodeId node, net::Ieee1394Bus& bus)
      : messaging(net, node),
        registry(messaging, bus),
        event_manager(messaging, bus),
        stream_manager(messaging, bus) {
    (void)messaging.start();
  }

  MessagingSystem messaging;
  Registry registry;
  EventManager event_manager;
  StreamManager stream_manager;
};

}  // namespace hcm::havi
