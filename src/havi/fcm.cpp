#include "havi/fcm.hpp"

namespace hcm::havi {

Fcm::Fcm(MessagingSystem& ms, std::string device_class, std::string huid,
         std::string name, InterfaceDesc iface)
    : ms_(ms),
      device_class_(std::move(device_class)),
      huid_(std::move(huid)),
      name_(std::move(name)),
      iface_(std::move(iface)) {
  seid_ = ms_.register_element(
      [this](const std::string& op, const ValueList& args,
             InvokeResultFn done) { handle(op, args, done); });
}

Fcm::~Fcm() { ms_.unregister_element(seid_); }

sim::Scheduler& Fcm::scheduler() { return ms_.network().scheduler(); }

ValueMap Fcm::attributes() const {
  return ValueMap{
      {kAttrSeType, Value("FCM")},
      {kAttrDeviceClass, Value(device_class_)},
      {kAttrHuid, Value(huid_)},
      {kAttrName, Value(name_)},
      {kAttrInterface, interface_to_value(iface_)},
  };
}

void Fcm::announce(RegistryClient& rc,
                   std::function<void(const Status&)> done) {
  rc.register_element(seid_, attributes(), std::move(done));
}

void Fcm::handle(const std::string& op, const ValueList& args,
                 InvokeResultFn done) {
  // Reserved stream-manager control plane.
  if (op == "sm.connectSource" || op == "sm.connectSink") {
    if (args.size() != 1) return done(invalid_argument(op + "(channel)"));
    auto ch = args[0].to_int();
    if (!ch.is_ok() || ch.value() < 0 || ch.value() >= net::kIsoChannelCount) {
      return done(invalid_argument("bad iso channel"));
    }
    auto channel = static_cast<net::IsoChannel>(ch.value());
    Status status = op == "sm.connectSource" ? on_connect_source(channel)
                                             : on_connect_sink(channel);
    if (!status.is_ok()) return done(status);
    return done(Value(true));
  }
  if (op == "sm.disconnect") {
    on_disconnect();
    return done(Value(true));
  }
  // Application method: validate against the published interface first.
  const MethodDesc* desc = iface_.find_method(op);
  if (desc == nullptr) {
    return done(not_found(name_ + " has no method " + op));
  }
  if (auto status = check_args(*desc, args); !status.is_ok()) {
    return done(status);
  }
  invoke(op, args, std::move(done));
}

}  // namespace hcm::havi
