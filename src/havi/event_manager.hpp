// HAVi Event Manager: bus-wide publish/subscribe. System events
// (NetworkReset, NewSoftwareElement) and application events (e.g. a
// VCR's transport state change) are posted here and fanned out to
// subscribed software elements as notification messages with op
// "event" and args [event_name, payload].
#pragma once

#include <map>
#include <set>
#include <string>

#include "havi/messaging.hpp"
#include "net/ieee1394.hpp"

namespace hcm::havi {

inline constexpr const char* kEventNetworkReset = "NetworkReset";
inline constexpr const char* kEventNewSoftwareElement = "NewSoftwareElement";

class EventManager {
 public:
  EventManager(MessagingSystem& ms, net::Ieee1394Bus& bus);

  [[nodiscard]] Seid seid() const { return seid_; }
  [[nodiscard]] std::uint64_t events_posted() const { return events_posted_; }

 private:
  void handle(const std::string& op, const ValueList& args,
              InvokeResultFn done);
  void fan_out(const std::string& event, const Value& payload);

  MessagingSystem& ms_;
  Seid seid_;
  std::map<std::string, std::set<Seid>> subscribers_;
  std::uint64_t events_posted_ = 0;
};

// Client helper for subscribing and posting.
class EventClient {
 public:
  EventClient(MessagingSystem& ms, Seid self, Seid event_manager)
      : ms_(ms), self_(self), em_(event_manager) {}

  void subscribe(const std::string& event,
                 std::function<void(const Status&)> done);
  void unsubscribe(const std::string& event,
                   std::function<void(const Status&)> done);
  void post(const std::string& event, const Value& payload);

 private:
  MessagingSystem& ms_;
  Seid self_;
  Seid em_;
};

}  // namespace hcm::havi
