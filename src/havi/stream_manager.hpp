// HAVi Stream Manager: establishes AV stream connections between FCM
// plugs by allocating a 1394 isochronous channel and commanding the
// source/sink FCMs through their "sm.*" control ops.
#pragma once

#include <map>

#include "havi/messaging.hpp"
#include "net/ieee1394.hpp"

namespace hcm::havi {

struct StreamConnection {
  std::int64_t id = 0;
  Seid source;
  Seid sink;
  net::IsoChannel channel = 0;
};

class StreamManager {
 public:
  StreamManager(MessagingSystem& ms, net::Ieee1394Bus& bus);

  [[nodiscard]] Seid seid() const { return seid_; }
  [[nodiscard]] std::size_t connection_count() const {
    return connections_.size();
  }

 private:
  void handle(const std::string& op, const ValueList& args,
              InvokeResultFn done);
  void do_connect(const Seid& source, const Seid& sink, InvokeResultFn done);
  void do_disconnect(std::int64_t id, InvokeResultFn done);

  MessagingSystem& ms_;
  net::Ieee1394Bus& bus_;
  Seid seid_;
  std::map<std::int64_t, StreamConnection> connections_;
  std::int64_t next_id_ = 1;
};

// Typed client helper.
class StreamManagerClient {
 public:
  StreamManagerClient(MessagingSystem& ms, Seid self, Seid stream_manager)
      : ms_(ms), self_(self), sm_(stream_manager) {}

  using ConnectFn = std::function<void(Result<StreamConnection>)>;
  void connect(const Seid& source, const Seid& sink, ConnectFn done);
  void disconnect(std::int64_t connection_id,
                  std::function<void(const Status&)> done);

 private:
  MessagingSystem& ms_;
  Seid self_;
  Seid sm_;
};

}  // namespace hcm::havi
