#include "havi/event_manager.hpp"

namespace hcm::havi {

EventManager::EventManager(MessagingSystem& ms, net::Ieee1394Bus& bus)
    : ms_(ms) {
  auto seid = ms_.register_system_element(
      kEventManagerHandle,
      [this](const std::string& op, const ValueList& args,
             InvokeResultFn done) { handle(op, args, done); });
  seid_ = seid.is_ok() ? seid.value() : Seid{};
  bus.subscribe_reset(ms_.node(), [this](std::uint32_t generation) {
    fan_out(kEventNetworkReset, Value(static_cast<std::int64_t>(generation)));
  });
}

void EventManager::handle(const std::string& op, const ValueList& args,
                          InvokeResultFn done) {
  if (op == "subscribe" || op == "unsubscribe") {
    if (args.size() != 2 || !args[1].is_string()) {
      return done(invalid_argument(op + "(seid, event)"));
    }
    auto seid = Seid::from_value(args[0]);
    if (!seid.is_ok()) return done(seid.status());
    if (op == "subscribe") {
      subscribers_[args[1].as_string()].insert(seid.value());
    } else {
      subscribers_[args[1].as_string()].erase(seid.value());
    }
    return done(Value(true));
  }
  if (op == "postEvent") {
    if (args.size() != 2 || !args[0].is_string()) {
      return done(invalid_argument("postEvent(event, payload)"));
    }
    fan_out(args[0].as_string(), args[1]);
    return done(Value(true));
  }
  done(not_found("event manager has no op " + op));
}

void EventManager::fan_out(const std::string& event, const Value& payload) {
  ++events_posted_;
  auto it = subscribers_.find(event);
  if (it == subscribers_.end()) return;
  for (const Seid& sub : it->second) {
    ms_.send_notification(seid_, sub, "event", {Value(event), payload});
  }
}

void EventClient::subscribe(const std::string& event,
                            std::function<void(const Status&)> done) {
  ms_.send_request(self_, em_, "subscribe", {self_.to_value(), Value(event)},
                   [done = std::move(done)](Result<Value> r) {
                     done(r.is_ok() ? Status::ok() : r.status());
                   });
}

void EventClient::unsubscribe(const std::string& event,
                              std::function<void(const Status&)> done) {
  ms_.send_request(self_, em_, "unsubscribe",
                   {self_.to_value(), Value(event)},
                   [done = std::move(done)](Result<Value> r) {
                     done(r.is_ok() ? Status::ok() : r.status());
                   });
}

void EventClient::post(const std::string& event, const Value& payload) {
  ms_.send_request(self_, em_, "postEvent", {Value(event), payload},
                   [](Result<Value>) {});
}

}  // namespace hcm::havi
