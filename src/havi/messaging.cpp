#include "havi/messaging.hpp"

#include "common/logging.hpp"

namespace hcm::havi {

Value Seid::to_value() const {
  return Value(ValueMap{
      {"node", Value(static_cast<std::int64_t>(node))},
      {"handle", Value(static_cast<std::int64_t>(handle))},
  });
}

Result<Seid> Seid::from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("seid is not a map");
  auto node = v.at("node").to_int();
  auto handle = v.at("handle").to_int();
  if (!node.is_ok() || !handle.is_ok()) return protocol_error("bad seid");
  return Seid{static_cast<net::NodeId>(node.value()),
              static_cast<std::uint32_t>(handle.value())};
}

MessagingSystem::MessagingSystem(net::Network& net, net::NodeId node)
    : net_(net), node_(node) {}

MessagingSystem::~MessagingSystem() { stop(); }

Status MessagingSystem::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("messaging: no such node");
  auto status = n->bind(kMessagingPort,
                        [this](net::Endpoint from, const Bytes& data) {
                          on_datagram(from, data);
                        });
  if (!status.is_ok()) return status;
  started_ = true;
  return Status::ok();
}

void MessagingSystem::stop() {
  if (!started_) return;
  if (net::Node* n = net_.node(node_)) n->unbind(kMessagingPort);
  started_ = false;
}

Seid MessagingSystem::register_element(ServiceHandler handler) {
  Seid seid{node_, next_handle_++};
  elements_[seid.handle] = std::move(handler);
  return seid;
}

Result<Seid> MessagingSystem::register_system_element(std::uint32_t handle,
                                                      ServiceHandler handler) {
  if (elements_.count(handle) != 0) {
    return already_exists("SE handle in use: " + std::to_string(handle));
  }
  elements_[handle] = std::move(handler);
  return Seid{node_, handle};
}

void MessagingSystem::unregister_element(const Seid& seid) {
  if (seid.node == node_) elements_.erase(seid.handle);
}

void MessagingSystem::send_request(const Seid& from, const Seid& to,
                                   const std::string& op,
                                   const ValueList& args, InvokeResultFn done) {
  const std::uint64_t id = next_msg_++;
  Pending pending;
  pending.done = std::move(done);
  pending.timeout_event =
      net_.scheduler().after(kReplyTimeout, [this, id] {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;
        auto p = std::move(it->second);
        pending_.erase(it);
        p.done(timeout("HAVi message timed out"));
      });
  pending_.emplace(id, std::move(pending));

  Value msg(ValueMap{
      {"id", Value(static_cast<std::int64_t>(id))},
      {"src", from.to_value()},
      {"dst", to.to_value()},
      {"op", Value(op)},
      {"args", Value(args)},
      {"reply", Value(false)},
  });
  ++messages_sent_;
  if (to.node == node_) {
    // Local delivery still goes through the scheduler (one event tick)
    // so ordering matches remote behaviour.
    net_.scheduler().after(sim::microseconds(10),
                           [this, msg] { deliver_request(msg); });
  } else {
    net_.send_datagram({node_, kMessagingPort}, {to.node, kMessagingPort},
                       encode_value(msg));
  }
}

void MessagingSystem::send_notification(const Seid& from, const Seid& to,
                                        const std::string& op,
                                        const ValueList& args) {
  Value msg(ValueMap{
      {"id", Value(0)},
      {"src", from.to_value()},
      {"dst", to.to_value()},
      {"op", Value(op)},
      {"args", Value(args)},
      {"reply", Value(false)},
      {"notify", Value(true)},
  });
  ++messages_sent_;
  if (to.node == node_) {
    net_.scheduler().after(sim::microseconds(10),
                           [this, msg] { deliver_request(msg); });
  } else {
    net_.send_datagram({node_, kMessagingPort}, {to.node, kMessagingPort},
                       encode_value(msg));
  }
}

void MessagingSystem::on_datagram(net::Endpoint, const Bytes& data) {
  auto msg = decode_value(data);
  if (!msg.is_ok()) {
    log_warn("havi.msg", "undecodable message: ", msg.status().to_string());
    return;
  }
  const Value& m = msg.value();
  if (m.at("reply").is_bool() && m.at("reply").as_bool()) {
    deliver_reply(m);
  } else {
    deliver_request(m);
  }
}

void MessagingSystem::deliver_request(const Value& msg) {
  auto dst = Seid::from_value(msg.at("dst"));
  auto src = Seid::from_value(msg.at("src"));
  if (!dst.is_ok() || !src.is_ok()) return;
  const bool is_notification =
      msg.at("notify").is_bool() && msg.at("notify").as_bool();
  auto id = msg.at("id").to_int().value_or(0);
  const std::string op =
      msg.at("op").is_string() ? msg.at("op").as_string() : "";
  ValueList args =
      msg.at("args").is_list() ? msg.at("args").as_list() : ValueList{};

  auto reply_to = src.value();
  auto send_reply = [this, id, reply_to, dst = dst.value(),
                     is_notification](Result<Value> result) {
    if (is_notification || id == 0) return;
    ValueMap m{
        {"id", Value(id)},
        {"src", dst.to_value()},
        {"dst", reply_to.to_value()},
        {"reply", Value(true)},
        {"ok", Value(result.is_ok())},
    };
    if (result.is_ok()) {
      m["value"] = std::move(result).take();
    } else {
      m["code"] = Value(static_cast<std::int64_t>(result.status().code()));
      m["msg"] = Value(result.status().message());
    }
    Value reply(std::move(m));
    if (reply_to.node == node_) {
      net_.scheduler().after(sim::microseconds(10),
                             [this, reply] { deliver_reply(reply); });
    } else {
      net_.send_datagram({node_, kMessagingPort},
                         {reply_to.node, kMessagingPort}, encode_value(reply));
    }
  };

  auto it = elements_.find(dst.value().handle);
  if (it == elements_.end()) {
    send_reply(not_found("no software element " + dst.value().to_string()));
    return;
  }
  it->second(op, args, send_reply);
}

void MessagingSystem::deliver_reply(const Value& msg) {
  auto id = msg.at("id").to_int();
  if (!id.is_ok()) return;
  auto it = pending_.find(static_cast<std::uint64_t>(id.value()));
  if (it == pending_.end()) return;  // late reply after timeout
  auto p = std::move(it->second);
  pending_.erase(it);
  if (p.timeout_event != 0) net_.scheduler().cancel(p.timeout_event);
  if (msg.at("ok").is_bool() && msg.at("ok").as_bool()) {
    p.done(msg.at("value"));
  } else {
    auto code = msg.at("code").to_int().value_or(
        static_cast<std::int64_t>(StatusCode::kInternal));
    p.done(Status(static_cast<StatusCode>(code),
                  msg.at("msg").is_string() ? msg.at("msg").as_string() : ""));
  }
}

}  // namespace hcm::havi
