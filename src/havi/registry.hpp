// HAVi Registry: the bus-wide directory of software elements. FCMs
// register their SEID plus attributes (SE type, device class, HUID,
// interface); controllers query it to find targets. Lives on the FAV
// (full AV) controller node at a well-known handle.
#pragma once

#include <map>

#include "havi/messaging.hpp"
#include "net/ieee1394.hpp"

namespace hcm::havi {

// Standard attribute keys.
inline constexpr const char* kAttrSeType = "SE_TYPE";          // "FCM","DCM",...
inline constexpr const char* kAttrDeviceClass = "DEVICE_CLASS";  // "VCR","CAMERA",...
inline constexpr const char* kAttrHuid = "HUID";
inline constexpr const char* kAttrInterface = "INTERFACE";  // serialized InterfaceDesc
inline constexpr const char* kAttrName = "NAME";

struct RegistryRecord {
  Seid seid;
  ValueMap attributes;
};

class Registry {
 public:
  // Mounts the registry at kRegistryHandle on `ms`; watches `bus` for
  // resets to purge elements whose node has left.
  Registry(MessagingSystem& ms, net::Ieee1394Bus& bus);

  [[nodiscard]] Seid seid() const { return seid_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  void handle(const std::string& op, const ValueList& args,
              InvokeResultFn done);
  void purge_dead_nodes();

  MessagingSystem& ms_;
  net::Ieee1394Bus& bus_;
  Seid seid_;
  std::map<Seid, RegistryRecord> records_;
};

// Typed client for any SE that wants to talk to the registry.
class RegistryClient {
 public:
  RegistryClient(MessagingSystem& ms, Seid self, Seid registry)
      : ms_(ms), self_(self), registry_(registry) {}

  using RecordsFn = std::function<void(Result<std::vector<RegistryRecord>>)>;

  void register_element(const Seid& seid, const ValueMap& attrs,
                        std::function<void(const Status&)> done);
  void unregister_element(const Seid& seid,
                          std::function<void(const Status&)> done);
  // Returns records whose attributes contain all of `query`.
  void get_elements(const ValueMap& query, RecordsFn done);

 private:
  MessagingSystem& ms_;
  Seid self_;
  Seid registry_;
};

}  // namespace hcm::havi
