#include "havi/registry.hpp"

#include "common/logging.hpp"

namespace hcm::havi {

namespace {
Value record_to_value(const RegistryRecord& r) {
  return Value(ValueMap{
      {"seid", r.seid.to_value()},
      {"attrs", Value(r.attributes)},
  });
}

Result<RegistryRecord> record_from_value(const Value& v) {
  auto seid = Seid::from_value(v.at("seid"));
  if (!seid.is_ok()) return seid.status();
  RegistryRecord r;
  r.seid = seid.value();
  if (v.at("attrs").is_map()) r.attributes = v.at("attrs").as_map();
  return r;
}
}  // namespace

Registry::Registry(MessagingSystem& ms, net::Ieee1394Bus& bus)
    : ms_(ms), bus_(bus) {
  auto seid = ms_.register_system_element(
      kRegistryHandle,
      [this](const std::string& op, const ValueList& args,
             InvokeResultFn done) { handle(op, args, done); });
  seid_ = seid.is_ok() ? seid.value() : Seid{};
  bus_.subscribe_reset(ms_.node(), [this](std::uint32_t generation) {
    log_debug("havi.registry", "bus reset, generation ", generation);
    purge_dead_nodes();
  });
}

void Registry::handle(const std::string& op, const ValueList& args,
                      InvokeResultFn done) {
  if (op == "registerElement") {
    if (args.size() != 2) {
      return done(invalid_argument("registerElement(seid, attrs)"));
    }
    auto seid = Seid::from_value(args[0]);
    if (!seid.is_ok()) return done(seid.status());
    RegistryRecord rec;
    rec.seid = seid.value();
    if (args[1].is_map()) rec.attributes = args[1].as_map();
    records_[rec.seid] = std::move(rec);
    return done(Value(true));
  }
  if (op == "unregisterElement") {
    if (args.size() != 1) {
      return done(invalid_argument("unregisterElement(seid)"));
    }
    auto seid = Seid::from_value(args[0]);
    if (!seid.is_ok()) return done(seid.status());
    return done(Value(records_.erase(seid.value()) > 0));
  }
  if (op == "getElement") {
    if (args.size() != 1) return done(invalid_argument("getElement(query)"));
    const ValueMap query = args[0].is_map() ? args[0].as_map() : ValueMap{};
    ValueList out;
    for (const auto& [seid, rec] : records_) {
      bool match = true;
      for (const auto& [k, v] : query) {
        auto it = rec.attributes.find(k);
        if (it == rec.attributes.end() || !(it->second == v)) {
          match = false;
          break;
        }
      }
      if (match) out.push_back(record_to_value(rec));
    }
    return done(Value(std::move(out)));
  }
  done(not_found("registry has no op " + op));
}

void Registry::purge_dead_nodes() {
  for (auto it = records_.begin(); it != records_.end();) {
    if (!bus_.has_node(it->first.node)) {
      log_debug("havi.registry", "purging ", it->first.to_string());
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

void RegistryClient::register_element(const Seid& seid, const ValueMap& attrs,
                                      std::function<void(const Status&)> done) {
  ms_.send_request(self_, registry_, "registerElement",
                   {seid.to_value(), Value(attrs)},
                   [done = std::move(done)](Result<Value> r) {
                     done(r.is_ok() ? Status::ok() : r.status());
                   });
}

void RegistryClient::unregister_element(
    const Seid& seid, std::function<void(const Status&)> done) {
  ms_.send_request(self_, registry_, "unregisterElement", {seid.to_value()},
                   [done = std::move(done)](Result<Value> r) {
                     done(r.is_ok() ? Status::ok() : r.status());
                   });
}

void RegistryClient::get_elements(const ValueMap& query, RecordsFn done) {
  ms_.send_request(
      self_, registry_, "getElement", {Value(query)},
      [done = std::move(done)](Result<Value> r) {
        if (!r.is_ok()) {
          done(r.status());
          return;
        }
        if (!r.value().is_list()) {
          done(protocol_error("getElement reply is not a list"));
          return;
        }
        std::vector<RegistryRecord> records;
        for (const auto& v : r.value().as_list()) {
          auto rec = record_from_value(v);
          if (!rec.is_ok()) {
            done(rec.status());
            return;
          }
          records.push_back(std::move(rec).take());
        }
        done(std::move(records));
      });
}

}  // namespace hcm::havi
