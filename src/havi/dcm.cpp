#include "havi/dcm.hpp"

namespace hcm::havi {

Dcm::Dcm(MessagingSystem& ms, std::string huid, std::string name)
    : ms_(ms), huid_(std::move(huid)), name_(std::move(name)) {
  seid_ = ms_.register_element(
      [this](const std::string& op, const ValueList&, InvokeResultFn done) {
        if (op == "getDeviceInfo") {
          ValueList fcm_seids;
          for (const auto& fcm : fcms_) fcm_seids.push_back(fcm->seid().to_value());
          done(Value(ValueMap{
              {"huid", Value(huid_)},
              {"name", Value(name_)},
              {"fcms", Value(std::move(fcm_seids))},
          }));
          return;
        }
        done(not_found("DCM has no op " + op));
      });
}

Dcm::~Dcm() { ms_.unregister_element(seid_); }

Fcm& Dcm::add_fcm(std::unique_ptr<Fcm> fcm) {
  fcms_.push_back(std::move(fcm));
  return *fcms_.back();
}

void Dcm::announce(RegistryClient& rc,
                   std::function<void(const Status&)> done) {
  ValueMap dcm_attrs{
      {kAttrSeType, Value("DCM")},
      {kAttrHuid, Value(huid_)},
      {kAttrName, Value(name_)},
  };
  auto remaining = std::make_shared<std::size_t>(1 + fcms_.size());
  auto first_error = std::make_shared<Status>();
  auto step = [remaining, first_error,
               done = std::move(done)](const Status& s) {
    if (!s.is_ok() && first_error->is_ok()) *first_error = s;
    if (--*remaining == 0) done(*first_error);
  };
  rc.register_element(seid_, dcm_attrs, step);
  for (const auto& fcm : fcms_) fcm->announce(rc, step);
}

}  // namespace hcm::havi
