// HAVi Messaging System: software elements (SEs) addressed by SEID
// exchange request/reply messages over IEEE1394 asynchronous packets.
// Every HAVi system component (Registry, Event Manager, DCMs, FCMs,
// Stream Manager) is a software element on this fabric.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/service.hpp"
#include "common/value_codec.hpp"
#include "net/network.hpp"

namespace hcm::havi {

// Well-known async port HAVi messaging rides on.
constexpr std::uint16_t kMessagingPort = 0x580;

// Software Element ID: node + per-node handle.
struct Seid {
  net::NodeId node = net::kInvalidNode;
  std::uint32_t handle = 0;

  [[nodiscard]] bool valid() const { return node != net::kInvalidNode; }
  [[nodiscard]] std::string to_string() const {
    return "seid(" + std::to_string(node) + "." + std::to_string(handle) + ")";
  }
  [[nodiscard]] Value to_value() const;
  static Result<Seid> from_value(const Value& v);

  friend bool operator==(const Seid&, const Seid&) = default;
  friend bool operator<(const Seid& a, const Seid& b) {
    return a.node != b.node ? a.node < b.node : a.handle < b.handle;
  }
};

// Well-known system software element handles (per HAVi spec shape).
constexpr std::uint32_t kRegistryHandle = 1;
constexpr std::uint32_t kEventManagerHandle = 2;
constexpr std::uint32_t kStreamManagerHandle = 3;
constexpr std::uint32_t kFirstUserHandle = 16;

// One messaging system per 1394 node. Registers local software
// elements, sends messages, and correlates replies.
class MessagingSystem {
 public:
  MessagingSystem(net::Network& net, net::NodeId node);
  ~MessagingSystem();
  MessagingSystem(const MessagingSystem&) = delete;
  MessagingSystem& operator=(const MessagingSystem&) = delete;

  Status start();
  void stop();

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] net::Network& network() { return net_; }

  // Registers a software element; returns its SEID. The handler serves
  // incoming request messages.
  Seid register_element(ServiceHandler handler);
  // Registers at a fixed well-known handle (system elements).
  Result<Seid> register_system_element(std::uint32_t handle,
                                       ServiceHandler handler);
  void unregister_element(const Seid& seid);

  // Sends a request to a (possibly remote) SE; done receives the reply.
  void send_request(const Seid& from, const Seid& to, const std::string& op,
                    const ValueList& args, InvokeResultFn done);
  // Fire-and-forget notification message.
  void send_notification(const Seid& from, const Seid& to,
                         const std::string& op, const ValueList& args);

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  static constexpr sim::Duration kReplyTimeout = sim::seconds(5);

 private:
  void on_datagram(net::Endpoint from, const Bytes& data);
  void deliver_request(const Value& msg);
  void deliver_reply(const Value& msg);

  net::Network& net_;
  net::NodeId node_;
  bool started_ = false;
  std::uint32_t next_handle_ = kFirstUserHandle;
  std::map<std::uint32_t, ServiceHandler> elements_;
  struct Pending {
    InvokeResultFn done;
    sim::EventId timeout_event = 0;
  };
  std::uint64_t next_msg_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace hcm::havi
