// FCM (Functional Component Module) base: one controllable function of a
// device (VCR transport, camera, display, tuner). An FCM is a software
// element with a typed interface; the Stream Manager additionally
// drives AV FCMs through reserved "sm.*" ops.
#pragma once

#include <string>

#include "havi/messaging.hpp"
#include "havi/registry.hpp"
#include "net/ieee1394.hpp"

namespace hcm::havi {

class Fcm {
 public:
  Fcm(MessagingSystem& ms, std::string device_class, std::string huid,
      std::string name, InterfaceDesc iface);
  virtual ~Fcm();
  Fcm(const Fcm&) = delete;
  Fcm& operator=(const Fcm&) = delete;

  [[nodiscard]] Seid seid() const { return seid_; }
  [[nodiscard]] const InterfaceDesc& interface() const { return iface_; }
  [[nodiscard]] const std::string& device_class() const {
    return device_class_;
  }
  [[nodiscard]] const std::string& huid() const { return huid_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // Registry attributes describing this FCM.
  [[nodiscard]] ValueMap attributes() const;

  // Registers this FCM in the bus Registry.
  void announce(RegistryClient& rc, std::function<void(const Status&)> done);

 protected:
  // Application method dispatch (args already validated against the
  // interface when called through a generated proxy; FCMs re-validate).
  virtual void invoke(const std::string& method, const ValueList& args,
                      InvokeResultFn done) = 0;

  // Stream-manager hooks; non-AV FCMs keep the defaults.
  virtual Status on_connect_source(net::IsoChannel) {
    return unimplemented(name_ + " is not a stream source");
  }
  virtual Status on_connect_sink(net::IsoChannel) {
    return unimplemented(name_ + " is not a stream sink");
  }
  virtual void on_disconnect() {}

  [[nodiscard]] MessagingSystem& messaging() { return ms_; }
  [[nodiscard]] sim::Scheduler& scheduler();

 private:
  void handle(const std::string& op, const ValueList& args,
              InvokeResultFn done);

  MessagingSystem& ms_;
  std::string device_class_;
  std::string huid_;
  std::string name_;
  InterfaceDesc iface_;
  Seid seid_;
};

}  // namespace hcm::havi
