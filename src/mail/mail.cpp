#include "mail/mail.hpp"

#include "common/strings.hpp"

namespace hcm::mail {

namespace {
// Line-based session plumbing shared by both protocols.
struct LineBuffer {
  std::string buf;
  // Appends data; returns complete lines (without CRLF).
  std::vector<std::string> feed(const BlockStream& data) {
    data.append_to(buf);
    std::vector<std::string> lines;
    std::size_t pos;
    while ((pos = buf.find("\r\n")) != std::string::npos) {
      lines.push_back(buf.substr(0, pos));
      buf.erase(0, pos + 2);
    }
    return lines;
  }
};

void reply(const net::StreamPtr& stream, const std::string& line) {
  if (stream && stream->is_open()) stream->send(to_bytes(line + "\r\n"));
}

std::string local_part(const std::string& addr) {
  auto lt = addr.find('<');
  std::string a = lt == std::string::npos
                      ? addr
                      : addr.substr(lt + 1, addr.find('>') - lt - 1);
  auto at = a.find('@');
  return at == std::string::npos ? a : a.substr(0, at);
}
}  // namespace

struct MailServer::SmtpSession {
  net::StreamPtr stream;
  LineBuffer lines;
  Message pending;
  bool in_data = false;
  std::string data_buf;
  bool have_subject = false;
};

struct MailServer::PopSession {
  net::StreamPtr stream;
  LineBuffer lines;
  std::string mailbox;
  std::vector<std::int64_t> deleted;
};

MailServer::MailServer(net::Network& net, net::NodeId node)
    : net_(net), node_(node) {}

MailServer::~MailServer() { stop(); }

Status MailServer::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("mail server: no such node");
  auto smtp = n->listen(kSmtpPort,
                        [this](net::StreamPtr s) { on_smtp_accept(s); });
  if (!smtp.is_ok()) return smtp;
  auto pop =
      n->listen(kPopPort, [this](net::StreamPtr s) { on_pop_accept(s); });
  if (!pop.is_ok()) {
    n->stop_listening(kSmtpPort);
    return pop;
  }
  started_ = true;
  return Status::ok();
}

void MailServer::stop() {
  if (!started_) return;
  if (net::Node* n = net_.node(node_)) {
    n->stop_listening(kSmtpPort);
    n->stop_listening(kPopPort);
  }
  started_ = false;
  auto detach = [](auto& sessions) {
    for (auto& weak : sessions) {
      if (auto session = weak.lock(); session && session->stream) {
        session->stream->set_on_data(nullptr);
        session->stream->close();
        session->stream = nullptr;
      }
    }
    sessions.clear();
  };
  detach(smtp_sessions_);
  detach(pop_sessions_);
}

std::size_t MailServer::mailbox_size(const std::string& mailbox) const {
  auto it = mailboxes_.find(mailbox);
  return it == mailboxes_.end() ? 0 : it->second.size();
}

void MailServer::deliver(Message m) {
  m.id = next_id_++;
  ++messages_accepted_;
  mailboxes_[m.to].push_back(std::move(m));
}

void MailServer::on_smtp_accept(net::StreamPtr stream) {
  auto session = std::make_shared<SmtpSession>();
  session->stream = stream;
  std::erase_if(smtp_sessions_, [](const std::weak_ptr<SmtpSession>& w) {
    return w.expired();
  });
  smtp_sessions_.push_back(session);
  reply(stream, "220 hcm-mail ready");
  stream->set_on_close([session] { session->stream = nullptr; });
  stream->set_on_data([this, session](BlockStream&& data) {
    for (const auto& line : session->lines.feed(data)) {
      smtp_line(session, line);
    }
  });
}

void MailServer::smtp_line(const std::shared_ptr<SmtpSession>& s,
                           const std::string& line) {
  if (s->in_data) {
    if (line == ".") {
      // Parse optional "Subject:" header from the data section.
      Message m = s->pending;
      std::string body;
      bool in_headers = true;
      auto lines = split(s->data_buf, '\n');
      // data_buf ends with '\n', so split leaves one empty tail entry.
      if (!lines.empty() && lines.back().empty()) lines.pop_back();
      for (const auto& l : lines) {
        if (in_headers) {
          if (l.empty()) {
            in_headers = false;
            continue;
          }
          if (starts_with(to_lower(l), "subject:")) {
            m.subject = std::string(trim(l.substr(8)));
            continue;
          }
          continue;
        }
        body += l;
        body += '\n';
      }
      if (!body.empty()) body.pop_back();
      m.body = std::move(body);
      deliver(std::move(m));
      s->in_data = false;
      s->data_buf.clear();
      s->pending = Message{};
      reply(s->stream, "250 OK message accepted");
      return;
    }
    s->data_buf += line;
    s->data_buf += '\n';
    return;
  }
  auto upper_starts = [&](const char* prefix) {
    return starts_with(to_lower(line), to_lower(prefix));
  };
  if (upper_starts("HELO") || upper_starts("EHLO")) {
    reply(s->stream, "250 hello");
  } else if (upper_starts("MAIL FROM:")) {
    s->pending.from = local_part(line.substr(10));
    reply(s->stream, "250 sender OK");
  } else if (upper_starts("RCPT TO:")) {
    s->pending.to = local_part(line.substr(8));
    reply(s->stream, "250 recipient OK");
  } else if (upper_starts("DATA")) {
    if (s->pending.to.empty()) {
      reply(s->stream, "503 need RCPT first");
      return;
    }
    s->in_data = true;
    reply(s->stream, "354 end with .");
  } else if (upper_starts("QUIT")) {
    reply(s->stream, "221 bye");
    if (s->stream) s->stream->close();
  } else {
    reply(s->stream, "500 unrecognized command");
  }
}

void MailServer::on_pop_accept(net::StreamPtr stream) {
  auto session = std::make_shared<PopSession>();
  session->stream = stream;
  std::erase_if(pop_sessions_, [](const std::weak_ptr<PopSession>& w) {
    return w.expired();
  });
  pop_sessions_.push_back(session);
  reply(stream, "+OK hcm-pop ready");
  stream->set_on_close([session] { session->stream = nullptr; });
  stream->set_on_data([this, session](BlockStream&& data) {
    for (const auto& line : session->lines.feed(data)) {
      pop_line(session, line);
    }
  });
}

void MailServer::pop_line(const std::shared_ptr<PopSession>& s,
                          const std::string& line) {
  auto upper_starts = [&](const char* prefix) {
    return starts_with(to_lower(line), to_lower(prefix));
  };
  if (upper_starts("USER ")) {
    s->mailbox = std::string(trim(line.substr(5)));
    reply(s->stream, "+OK mailbox selected");
    return;
  }
  if (s->mailbox.empty()) {
    reply(s->stream, "-ERR USER first");
    return;
  }
  auto& box = mailboxes_[s->mailbox];
  if (upper_starts("STAT")) {
    reply(s->stream, "+OK " + std::to_string(box.size()));
  } else if (upper_starts("RETR ")) {
    auto idx = parse_uint(trim(line.substr(5)));
    if (idx < 1 || static_cast<std::size_t>(idx) > box.size()) {
      reply(s->stream, "-ERR no such message");
      return;
    }
    const Message& m = box[static_cast<std::size_t>(idx - 1)];
    reply(s->stream, "+OK message follows");
    reply(s->stream, "From: " + m.from);
    reply(s->stream, "Subject: " + m.subject);
    reply(s->stream, "");
    for (const auto& l : split(m.body, '\n')) reply(s->stream, l);
    reply(s->stream, ".");
  } else if (upper_starts("DELE ")) {
    auto idx = parse_uint(trim(line.substr(5)));
    if (idx < 1 || static_cast<std::size_t>(idx) > box.size()) {
      reply(s->stream, "-ERR no such message");
      return;
    }
    s->deleted.push_back(box[static_cast<std::size_t>(idx - 1)].id);
    reply(s->stream, "+OK marked");
  } else if (upper_starts("QUIT")) {
    // Commit deletions.
    for (auto id : s->deleted) {
      std::erase_if(box, [id](const Message& m) { return m.id == id; });
    }
    reply(s->stream, "+OK bye");
    if (s->stream) s->stream->close();
  } else {
    reply(s->stream, "-ERR unrecognized command");
  }
}

// --- Client -------------------------------------------------------------

MailClient::~MailClient() {
  unwatch();
  for (auto& [raw, stream] : active_) stream->close();
  active_.clear();
}

void MailClient::track(net::StreamPtr stream) {
  active_[stream.get()] = std::move(stream);
}

void MailClient::untrack(net::Stream* stream) { active_.erase(stream); }

void MailClient::send(const Message& m, DoneFn done) {
  net_.connect(node_, {server_, kSmtpPort}, [this, m, done = std::move(done)](
                                                Result<net::StreamPtr> r) {
    if (!r.is_ok()) {
      done(r.status());
      return;
    }
    auto stream = r.value();
    net::Stream* raw = stream.get();  // owned by active_ via track()
    track(std::move(stream));
    auto lines = std::make_shared<LineBuffer>();
    auto stage = std::make_shared<int>(0);
    auto finished = std::make_shared<bool>(false);
    auto done_shared = std::make_shared<DoneFn>(std::move(done));

    raw->set_on_close([this, finished, done_shared, raw] {
      if (!*finished) {
        (*done_shared)(unavailable("SMTP connection closed early"));
        *finished = true;
      }
      untrack(raw);
    });
    raw->set_on_data([this, m, raw, lines, stage, finished,
                      done_shared](BlockStream&& data) {
      for (const auto& line : lines->feed(data)) {
        const bool ok = starts_with(line, "2") || starts_with(line, "3");
        if (!ok) {
          if (!*finished) {
            (*done_shared)(protocol_error("SMTP rejected: " + line));
            *finished = true;
          }
          raw->close();
          untrack(raw);
          return;
        }
        switch ((*stage)++) {
          case 0:  // greeting
            raw->send(to_bytes("HELO hcm\r\n"));
            break;
          case 1:
            raw->send(to_bytes("MAIL FROM:<" + m.from + ">\r\n"));
            break;
          case 2:
            raw->send(to_bytes("RCPT TO:<" + m.to + ">\r\n"));
            break;
          case 3:
            raw->send(to_bytes("DATA\r\n"));
            break;
          case 4:
            raw->send(to_bytes("Subject: " + m.subject + "\r\n\r\n" +
                               m.body + "\r\n.\r\n"));
            break;
          case 5:
            raw->send(to_bytes("QUIT\r\n"));
            if (!*finished) {
              (*done_shared)(Status::ok());
              *finished = true;
            }
            break;
          default:
            raw->close();
            untrack(raw);
            return;
        }
      }
    });
  });
}

void MailClient::fetch(const std::string& mailbox, MessagesFn done) {
  net_.connect(node_, {server_, kPopPort},
               [this, mailbox, done = std::move(done)](
                   Result<net::StreamPtr> r) {
    if (!r.is_ok()) {
      done(r.status());
      return;
    }
    auto stream = r.value();
    net::Stream* raw = stream.get();  // owned by active_ via track()
    track(std::move(stream));
    auto lines = std::make_shared<LineBuffer>();
    struct FetchState {
      int stage = 0;
      int total = 0;
      int current = 0;
      bool in_message = false;
      bool past_headers = false;
      Message msg;
      std::vector<Message> out;
      bool finished = false;
    };
    auto st = std::make_shared<FetchState>();
    auto done_shared = std::make_shared<MessagesFn>(std::move(done));

    raw->set_on_close([this, st, done_shared, raw] {
      if (!st->finished) {
        st->finished = true;
        (*done_shared)(unavailable("POP connection closed early"));
      }
      untrack(raw);
    });
    raw->set_on_data([this, mailbox, raw, lines, st,
                      done_shared](BlockStream&& data) {
      for (const auto& line : lines->feed(data)) {
        if (st->in_message) {
          if (line == ".") {
            if (!st->msg.body.empty()) st->msg.body.pop_back();  // trailing \n
            st->out.push_back(st->msg);
            st->in_message = false;
            st->stage = 4;
            raw->send(to_bytes("DELE " + std::to_string(st->current) +
                                  "\r\n"));
          } else if (!st->past_headers) {
            if (line.empty()) {
              st->past_headers = true;
            } else if (starts_with(to_lower(line), "from:")) {
              st->msg.from = std::string(trim(line.substr(5)));
            } else if (starts_with(to_lower(line), "subject:")) {
              st->msg.subject = std::string(trim(line.substr(8)));
            }
          } else {
            st->msg.body += line;
            st->msg.body += '\n';
          }
          continue;
        }
        if (!starts_with(line, "+OK")) {
          if (!st->finished) {
            st->finished = true;
            (*done_shared)(protocol_error("POP error: " + line));
          }
          raw->close();
          untrack(raw);
          return;
        }
        switch (st->stage) {
          case 0:  // greeting
            st->stage = 1;
            raw->send(to_bytes("USER " + mailbox + "\r\n"));
            break;
          case 1:  // USER ok
            st->stage = 2;
            raw->send(to_bytes("STAT\r\n"));
            break;
          case 2: {  // STAT reply: "+OK n"
            st->total = static_cast<int>(parse_uint(trim(line.substr(4))));
            if (st->total <= 0) {
              st->stage = 5;
              raw->send(to_bytes("QUIT\r\n"));
            } else {
              st->current = 1;
              st->stage = 3;
              raw->send(to_bytes("RETR 1\r\n"));
            }
            break;
          }
          case 3:  // RETR ok: message lines follow until "."
            st->in_message = true;
            st->past_headers = false;
            st->msg = Message{};
            st->msg.to = mailbox;
            break;
          case 4:  // DELE ok -> next message or quit
            if (st->current < st->total) {
              ++st->current;
              st->stage = 3;
              raw->send(to_bytes("RETR " + std::to_string(st->current) +
                                    "\r\n"));
            } else {
              st->stage = 5;
              raw->send(to_bytes("QUIT\r\n"));
            }
            break;
          case 5:  // QUIT ok
            if (!st->finished) {
              st->finished = true;
              (*done_shared)(std::move(st->out));
            }
            raw->close();
            untrack(raw);
            return;
          default:
            break;
        }
      }
    });
  });
}

void MailClient::watch(const std::string& mailbox, sim::Duration interval,
                       std::function<void(const Message&)> on_message) {
  watch_mailbox_ = mailbox;
  watch_interval_ = interval;
  watch_fn_ = std::move(on_message);
  watch_event_ = net_.scheduler().after(interval, [this] { poll(); });
}

void MailClient::unwatch() {
  if (watch_event_ != 0) {
    net_.scheduler().cancel(watch_event_);
    watch_event_ = 0;
  }
  watch_fn_ = nullptr;
}

void MailClient::poll() {
  watch_event_ = 0;
  fetch(watch_mailbox_, [this](Result<std::vector<Message>> r) {
    if (r.is_ok() && watch_fn_) {
      for (const auto& m : r.value()) watch_fn_(m);
    }
    if (watch_fn_) {
      watch_event_ =
          net_.scheduler().after(watch_interval_, [this] { poll(); });
    }
  });
}

}  // namespace hcm::mail
