// Internet Mail service: an SMTP-like submission protocol and a
// POP3-like retrieval protocol over simulated TCP. The paper's
// prototype includes an Internet Mail PCM (Fig. 3); this substrate is
// what that PCM converts to and from.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace hcm::mail {

constexpr std::uint16_t kSmtpPort = 25;
constexpr std::uint16_t kPopPort = 110;

struct Message {
  std::int64_t id = 0;
  std::string from;
  std::string to;       // mailbox name, e.g. "home" (local part)
  std::string subject;
  std::string body;
};

// Serves SMTP (submission) and POP (retrieval) on one node; stores
// mailboxes in memory.
class MailServer {
 public:
  MailServer(net::Network& net, net::NodeId node);
  ~MailServer();
  MailServer(const MailServer&) = delete;
  MailServer& operator=(const MailServer&) = delete;

  Status start();
  void stop();

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] std::size_t mailbox_size(const std::string& mailbox) const;
  [[nodiscard]] std::uint64_t messages_accepted() const {
    return messages_accepted_;
  }

  // Direct (non-protocol) access for tests and local delivery hooks.
  void deliver(Message m);

 private:
  struct SmtpSession;
  struct PopSession;
  void on_smtp_accept(net::StreamPtr stream);
  void on_pop_accept(net::StreamPtr stream);
  void smtp_line(const std::shared_ptr<SmtpSession>& s,
                 const std::string& line);
  void pop_line(const std::shared_ptr<PopSession>& s, const std::string& line);

  net::Network& net_;
  net::NodeId node_;
  bool started_ = false;
  // Live sessions, detached on stop() (their callbacks capture this).
  std::vector<std::weak_ptr<SmtpSession>> smtp_sessions_;
  std::vector<std::weak_ptr<PopSession>> pop_sessions_;
  std::map<std::string, std::vector<Message>> mailboxes_;
  std::int64_t next_id_ = 1;
  std::uint64_t messages_accepted_ = 0;
};

// Client: SMTP submission plus POP polling with a new-message callback.
class MailClient {
 public:
  MailClient(net::Network& net, net::NodeId node, net::NodeId server)
      : net_(net), node_(node), server_(server) {}
  ~MailClient();
  MailClient(const MailClient&) = delete;
  MailClient& operator=(const MailClient&) = delete;

  using DoneFn = std::function<void(const Status&)>;
  using MessagesFn = std::function<void(Result<std::vector<Message>>)>;

  // Sends one message through the SMTP dialogue.
  void send(const Message& m, DoneFn done);
  // Retrieves (and deletes) everything in `mailbox` via POP.
  void fetch(const std::string& mailbox, MessagesFn done);

  // Polls `mailbox` every `interval`; `on_message` fires per message.
  // This polling is exactly the asynchronous-notification workaround
  // whose cost §4.2 of the paper complains about.
  void watch(const std::string& mailbox, sim::Duration interval,
             std::function<void(const Message&)> on_message);
  void unwatch();

 private:
  void poll();
  void track(net::StreamPtr stream);
  void untrack(net::Stream* stream);

  net::Network& net_;
  net::NodeId node_;
  net::NodeId server_;
  // In-flight SMTP/POP dialogues. The client owns its streams; their
  // callbacks capture raw pointers back, so there is no stream<->
  // closure ownership cycle and destroying the client tears down
  // every open dialogue.
  std::map<net::Stream*, net::StreamPtr> active_;
  std::string watch_mailbox_;
  sim::Duration watch_interval_ = 0;
  std::function<void(const Message&)> watch_fn_;
  sim::EventId watch_event_ = 0;
};

}  // namespace hcm::mail
