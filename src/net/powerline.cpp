#include "net/powerline.hpp"

namespace hcm::net {

void PowerlineSegment::subscribe(NodeId node, PowerlineHandler handler) {
  handlers_[node] = std::move(handler);
}

void PowerlineSegment::unsubscribe(NodeId node) { handlers_.erase(node); }

void PowerlineSegment::transmit(NodeId from, Bytes frame, TransmitDone done) {
  if (!is_up()) {
    sched_.after(0, [done = std::move(done)] {
      done(unavailable("powerline segment is down"));
    });
    return;
  }
  queue_.push_back(
      Pending{from, std::move(frame), std::move(done), sched_.now()});
  if (!busy_) {
    // Defer one event tick so that a second transmitter enqueueing at
    // the same instant is visible for collision detection.
    busy_ = true;
    sched_.after(0, [this] { start_next(); });
  }
}

void PowerlineSegment::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending p = std::move(queue_.front());
  queue_.pop_front();

  // Collision model: another frame enqueued at the exact same instant
  // while the line was idle means both transmitters saw "idle" and
  // started together.
  bool collided = false;
  if (!queue_.empty() && queue_.front().enqueued_at == p.enqueued_at &&
      queue_.front().from != p.from) {
    collided = true;
    ++collisions_;
    Pending other = std::move(queue_.front());
    queue_.pop_front();
    auto dur = transit_time(p.frame.size());
    sched_.after(dur, [this, other = std::move(other)]() mutable {
      finish(std::move(other), true);
    });
  }

  auto dur = transit_time(p.frame.size());
  sched_.after(dur, [this, p = std::move(p), collided]() mutable {
    finish(std::move(p), collided);
    start_next();
  });
}

void PowerlineSegment::finish(Pending p, bool collided) {
  if (collided) {
    if (p.done) p.done(unavailable("powerline collision"));
    return;
  }
  account(p.frame.size());
  auto handlers = handlers_;  // copy: receivers may (un)subscribe
  for (auto& [node, handler] : handlers) {
    if (handler) handler(p.from, p.frame);
  }
  if (p.done) p.done(Status::ok());
}

}  // namespace hcm::net
