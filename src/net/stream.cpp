#include "net/stream.hpp"

#include "net/network.hpp"

namespace hcm::net {

void Stream::send(Bytes data) {
  BlockStream wrapped;
  wrapped.append(data.data(), data.size());
  send(std::move(wrapped));
}

void Stream::send(BlockStream data) {
  if (!open_ || data.empty()) return;
  bytes_sent_ += data.size();
  auto route = net_.find_route(local_.node, remote_.node);
  auto peer = peer_.lock();
  auto& sched = net_.scheduler();
  if (!route.is_ok() || !peer) {
    // Route failed mid-connection: reset both ends. When the peer
    // lives on another shard its reset must travel through the
    // shard-aware channel; same-shard keeps the legacy single event.
    auto self = shared_from_this();
    if (peer && net_.cross_shard(local_.node, remote_.node)) {
      sched.after(sim::milliseconds(1), [self] { self->peer_closed(); });
      net_.deliver_to(remote_.node, sim::milliseconds(1),
                      [peer] { peer->peer_closed(); });
    } else {
      sched.after(sim::milliseconds(1), [self, peer] {
        self->peer_closed();
        if (peer) peer->peer_closed();
      });
    }
    return;
  }
  net_.account_path(*route.value(), data.size());
  auto latency = net_.path_latency(*route.value(), data.size());
  // FIFO: never deliver before previously sent data in this direction.
  auto arrival = sched.now() + latency;
  if (arrival <= clear_time_) arrival = clear_time_ + 1;
  clear_time_ = arrival;
  net_.deliver_at(remote_.node, arrival,
                  [peer, data = std::move(data)]() mutable {
                    if (peer) peer->deliver(std::move(data));
                  });
}

void Stream::close() {
  if (!open_) return;
  open_ = false;
  // A closed end receives no further callbacks, so the handlers are
  // dropped; they are what owners capture themselves into, and keeping
  // them would keep the owner<->stream reference cycle alive past
  // teardown (LeakSanitizer runs on every asan build). close() is
  // routinely called from inside on_data, so the closures must not be
  // destroyed while one of them is executing — they are parked in a
  // shared graveyard (the scheduler may copy the event closure, which
  // must not deep-copy and then free the live handler) and die next
  // tick.
  auto graveyard = std::make_shared<std::pair<DataHandler, CloseHandler>>(
      std::move(on_data_), std::move(on_close_));
  net_.scheduler().after(0, [graveyard] {});
  on_data_ = nullptr;
  on_close_ = nullptr;
  pending_.clear();
  auto peer = peer_.lock();
  if (!peer) return;
  auto latency =
      net_.route_latency(local_.node, remote_.node, 40).value_or(
          sim::milliseconds(1));
  auto arrival = net_.scheduler().now() + latency;
  if (arrival <= clear_time_) arrival = clear_time_ + 1;
  clear_time_ = arrival;
  net_.deliver_at(remote_.node, arrival, [peer] { peer->peer_closed(); });
}

void Stream::set_on_data(DataHandler handler) {
  on_data_ = std::move(handler);
  if (on_data_) {
    while (!pending_.empty()) {
      BlockStream data = std::move(pending_.front());
      pending_.pop_front();
      on_data_(std::move(data));
    }
  }
}

void Stream::set_on_close(CloseHandler handler) {
  on_close_ = std::move(handler);
  if (closed_pending_ && on_close_) {
    closed_pending_ = false;
    on_close_();
  }
}

void Stream::deliver(BlockStream data) {
  if (!open_) return;
  Node* self_node = net_.node(local_.node);
  if (self_node == nullptr || !self_node->is_up()) return;
  bytes_received_ += data.size();
  if (on_data_) {
    on_data_(std::move(data));
  } else {
    pending_.push_back(std::move(data));
  }
}

void Stream::peer_closed() {
  if (!open_) return;
  open_ = false;
  // Same as close(): once closed, drop the handlers (after the final
  // on_close fires) so owners captured in them are released; deferred
  // destruction for the same reentrancy reason.
  auto handler = std::move(on_close_);
  on_close_ = nullptr;
  auto graveyard = std::make_shared<DataHandler>(std::move(on_data_));
  net_.scheduler().after(0, [graveyard] {});
  on_data_ = nullptr;
  pending_.clear();
  if (handler) {
    handler();
  } else {
    closed_pending_ = true;
  }
}

}  // namespace hcm::net
