// The Network: owns nodes and segments, routes datagrams and streams,
// and provides segment-scoped multicast for discovery protocols.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/address.hpp"
#include "net/ieee1394.hpp"
#include "net/node.hpp"
#include "net/powerline.hpp"
#include "net/segment.hpp"
#include "net/stream.hpp"
#include "obs/metrics.hpp"
#include "obs/slab.hpp"
#include "sim/scheduler.hpp"
#include "sim/sharded_kernel.hpp"

namespace hcm::net {

using ConnectCallback = std::function<void(Result<StreamPtr>)>;

class Network {
 public:
  explicit Network(sim::Scheduler& sched)
      : sched_(sched),
        obs_scope_(obs::shard_registry().unique_scope("net")),
        datagrams_sent_(
            obs::shard_registry().counter(obs_scope_ + ".datagrams_sent")),
        datagrams_dropped_(obs::shard_registry().counter(
            obs_scope_ + ".datagrams_dropped")),
        stream_connects_(
            obs::shard_registry().counter(obs_scope_ + ".stream_connects")) {
  }
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // The calling context's scheduler: with a sharded kernel attached
  // and the calling thread bound to a shard (worker loop or
  // ShardedKernel::run_as), that shard's slab; otherwise the legacy
  // scheduler the Network was constructed with. Objects that capture
  // it at construction therefore live on the shard they were built
  // under (docs/SHARDING.md).
  [[nodiscard]] sim::Scheduler& scheduler();

  // --- Sharding ---------------------------------------------------------
  // Attach before building topology (nodes created earlier land on
  // shard 0). In kernel mode, construct the Network with
  // kernel.shard(0) so the legacy scheduler and shard 0 coincide.
  void set_kernel(sim::ShardedKernel* kernel);
  [[nodiscard]] sim::ShardedKernel* kernel() const { return kernel_; }
  // Nodes are placed on the shard bound at add_node time; place_node
  // overrides (setup only, before the first run).
  void place_node(NodeId node, sim::ShardId shard);
  [[nodiscard]] sim::ShardId shard_of(NodeId node) const;
  [[nodiscard]] bool cross_shard(NodeId a, NodeId b) const {
    return kernel_ != nullptr && shard_of(a) != shard_of(b);
  }
  // Minimum transit time over segments spanning more than one shard —
  // the natural conservative-window lookahead. 0 when nothing crosses.
  [[nodiscard]] sim::Duration min_cross_shard_latency() const;

  // --- Topology -------------------------------------------------------
  Node& add_node(const std::string& name);
  [[nodiscard]] Node* node(NodeId id);
  [[nodiscard]] Node* find_node(const std::string& name);

  EthernetSegment& add_ethernet(const std::string& name,
                                sim::Duration base_latency,
                                std::uint64_t bandwidth_bps);
  Ieee1394Bus& add_ieee1394(const std::string& name);
  PowerlineSegment& add_powerline(const std::string& name);
  void attach(Node& node, Segment& segment);

  [[nodiscard]] const std::vector<std::unique_ptr<Segment>>& segments() const {
    return segments_;
  }

  // Transit time along the current route between two nodes, or an error
  // if no up-route exists. Multi-hop routes go through gateway nodes
  // that sit on more than one segment.
  [[nodiscard]] Result<sim::Duration> route_latency(NodeId a, NodeId b,
                                                    std::size_t bytes);

  // --- Datagrams -------------------------------------------------------
  // Unreliable: dropped when no route, no handler, node down, or the
  // segment's drop probability fires.
  void send_datagram(Endpoint from, Endpoint to, Bytes data);

  // --- Multicast (segment-scoped, used by discovery protocols) ---------
  void join_group(NodeId node, GroupId group);
  void leave_group(NodeId node, GroupId group);
  // Delivered to every group member sharing a segment with `from`.
  void send_multicast(Endpoint from, GroupId group, std::uint16_t port,
                      Bytes data);

  // --- Streams ----------------------------------------------------------
  // Simulates a connection handshake (1.5 RTT), then hands the accept
  // side to the listener and the connect side to `cb`.
  void connect(NodeId from, Endpoint to, ConnectCallback cb);

  // Counters (backed by the obs registry under `obs_scope()`; these
  // accessors are thin reads kept for existing call sites).
  [[nodiscard]] std::uint64_t datagrams_sent() const {
    return datagrams_sent_.value();
  }
  [[nodiscard]] std::uint64_t datagrams_dropped() const {
    return datagrams_dropped_.value();
  }
  [[nodiscard]] const std::string& obs_scope() const { return obs_scope_; }

 private:
  friend class Stream;

  struct Route {
    std::vector<Segment*> path;
    std::vector<NodeId> via;  // intermediate gateway nodes, for revalidation
  };
  using RoutePtr = std::shared_ptr<const Route>;
  // BFS over the node/segment bipartite graph, up segments/nodes only.
  // Results are cached per (a, b): every send would otherwise pay the
  // BFS's map/queue heap churn. A hit revalidates that each segment and
  // gateway on the path is still up (a down element evicts and re-runs
  // BFS); failures are never cached, so a link coming back up is seen
  // immediately. Topology mutations (attach) clear the cache.
  [[nodiscard]] Result<RoutePtr> find_route(NodeId a, NodeId b);
  [[nodiscard]] sim::Duration path_latency(const Route& r, std::size_t bytes);
  void account_path(const Route& r, std::size_t bytes);

  // Shard-aware delivery: schedule fn on the shard owning dst. Legacy
  // path (no kernel / same shard) schedules on the caller's scheduler,
  // preserving byte-identical 1-shard traces; cross-shard deliveries
  // from a running worker go through the kernel's SPSC channels and
  // are never earlier than one lookahead out (conservative contract).
  void deliver_at(NodeId dst, sim::SimTime when, sim::EventFn fn);
  void deliver_to(NodeId dst, sim::Duration latency, sim::EventFn fn);

  sim::Scheduler& sched_;
  sim::ShardedKernel* kernel_ = nullptr;
  std::vector<sim::ShardId> node_shard_;  // index = id - 1
  std::vector<std::unique_ptr<Node>> nodes_;  // index = id - 1
  std::vector<std::unique_ptr<Segment>> segments_;
  std::map<NodeId, std::vector<Segment*>> attachments_;
  // Route cache. Shared-locked on the send hot path (validate + copy a
  // shared_ptr), uniquely locked to insert/evict — shards route
  // concurrently, so this must be thread-safe.
  mutable std::shared_mutex route_mu_;
  std::map<std::uint64_t, RoutePtr> route_cache_;
  RoutePtr loopback_route_ = std::make_shared<Route>();
  std::mutex groups_mu_;  // join/leave vs. multicast on other shards
  std::map<GroupId, std::set<NodeId>> groups_;
  std::string obs_scope_;
  obs::Counter& datagrams_sent_;
  obs::Counter& datagrams_dropped_;
  obs::Counter& stream_connects_;
};

}  // namespace hcm::net
