#include "net/shard_pools.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace hcm::net {

namespace {

// The installed instance the stateless PoolResolver reads. Atomic so a
// late-bound worker thread observing the install sees a fully
// constructed object (release/acquire pairing in ctor/resolve).
std::atomic<ShardBlockPools*> g_installed{nullptr};

}  // namespace

ShardBlockPools::ShardBlockPools(sim::ShardedKernel& kernel,
                                 BlockPool::Config per_shard)
    : kernel_(&kernel) {
  pools_.reserve(kernel.shards());
  for (sim::ShardId s = 0; s < kernel.shards(); ++s) {
    pools_.push_back(std::make_unique<BlockPool>(per_shard));
  }
  ShardBlockPools* expected = nullptr;
  HCM_CHECK_MSG(
      g_installed.compare_exchange_strong(expected, this,
                                          std::memory_order_release),
      "a ShardBlockPools is already installed");
  set_pool_resolver(&ShardBlockPools::resolve);
}

ShardBlockPools::~ShardBlockPools() {
  set_pool_resolver(nullptr);
  g_installed.store(nullptr, std::memory_order_release);
}

BlockPool* ShardBlockPools::resolve() {
  ShardBlockPools* self = g_installed.load(std::memory_order_acquire);
  if (self == nullptr) return nullptr;
  const auto* ctx = sim::ShardedKernel::current();
  // Only threads bound to *this* kernel get shard pools; a second
  // kernel's workers (tests build several) use the default pool.
  if (ctx == nullptr || ctx->kernel != self->kernel_) return nullptr;
  if (ctx->shard >= self->pools_.size()) return nullptr;
  return self->pools_[ctx->shard].get();
}

BlockPool::Stats ShardBlockPools::aggregate_stats() const {
  BlockPool::Stats sum;
  for (const auto& pool : pools_) {
    const BlockPool::Stats s = pool->stats();
    sum.blocks_in_use += s.blocks_in_use;
    sum.high_water += s.high_water;
    sum.pooled_blocks += s.pooled_blocks;
    sum.pool_hits += s.pool_hits;
    sum.fresh_blocks += s.fresh_blocks;
    sum.heap_fallbacks += s.heap_fallbacks;
  }
  return sum;
}

void publish_wire_pool_gauges(ShardBlockPools* pools) {
  const BlockPool::Stats s = pools != nullptr
                                 ? pools->aggregate_stats()
                                 : default_block_pool().stats();
  auto& reg = obs::Registry::global();
  reg.gauge("wire.block_pool.blocks_in_use")
      .set(static_cast<std::int64_t>(s.blocks_in_use));
  reg.gauge("wire.block_pool.high_water")
      .set(static_cast<std::int64_t>(s.high_water));
  reg.gauge("wire.block_pool.pool_hits")
      .set(static_cast<std::int64_t>(s.pool_hits));
  reg.gauge("wire.block_pool.heap_fallbacks")
      .set(static_cast<std::int64_t>(s.heap_fallbacks));
}

}  // namespace hcm::net
