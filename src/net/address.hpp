// Addressing for the simulated home network.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>

namespace hcm::net {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0;

struct Endpoint {
  NodeId node = kInvalidNode;
  std::uint16_t port = 0;

  [[nodiscard]] bool valid() const { return node != kInvalidNode; }
  [[nodiscard]] std::string to_string() const {
    return "node-" + std::to_string(node) + ":" + std::to_string(port);
  }
  // to_string()'s bytes appended into a recycled string, no temporary.
  void append_to(std::string& out) const {
    char buf[12];
    out += "node-";
    auto [n_end, n_ec] = std::to_chars(buf, buf + sizeof(buf), node);
    out.append(buf, n_end);
    out += ':';
    auto [p_end, p_ec] = std::to_chars(buf, buf + sizeof(buf), port);
    out.append(buf, p_end);
  }

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  friend bool operator<(const Endpoint& a, const Endpoint& b) {
    return a.node != b.node ? a.node < b.node : a.port < b.port;
  }
};

// Multicast group address (segment-scoped, like 239.x addresses).
using GroupId = std::uint32_t;

}  // namespace hcm::net
