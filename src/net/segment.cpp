#include "net/segment.hpp"

#include <algorithm>

namespace hcm::net {

bool Segment::has_node(NodeId node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

}  // namespace hcm::net
