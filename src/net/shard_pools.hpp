// Per-shard wire block pools: the installer block_pool.hpp's layering
// note promises. common/ cannot know about shards, so the binding is
// injected from here — while a ShardBlockPools is installed, every
// wire_pool() call on a shard-bound worker thread (a ShardedKernel
// worker loop, or a coordinator inside run_as) resolves to that
// shard's own BlockPool, giving each shard a private freelist with
// zero cross-shard contention. Threads outside the kernel's context
// keep falling through to the process default pool.
//
// Lifetime: install in the scenario builder right after the kernel,
// destroy (uninstalls) before the kernel goes away. One instance at a
// time — a second concurrent install is a setup bug and is checked.
#pragma once

#include <memory>
#include <vector>

#include "common/block_pool.hpp"
#include "sim/sharded_kernel.hpp"

namespace hcm::net {

class ShardBlockPools {
 public:
  // One pool per kernel shard, each with `per_shard` capacity.
  // Installs itself as the process PoolResolver.
  explicit ShardBlockPools(sim::ShardedKernel& kernel,
                           BlockPool::Config per_shard = {});
  ~ShardBlockPools();  // uninstalls the resolver
  ShardBlockPools(const ShardBlockPools&) = delete;
  ShardBlockPools& operator=(const ShardBlockPools&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return pools_.size(); }
  [[nodiscard]] BlockPool& pool(sim::ShardId s) { return *pools_[s]; }

  // Sum of every shard pool's stats (blocks_in_use, high_water, hits,
  // fallbacks, ...) — the fleet view the gauges publish.
  [[nodiscard]] BlockPool::Stats aggregate_stats() const;

 private:
  static BlockPool* resolve();

  sim::ShardedKernel* kernel_;
  std::vector<std::unique_ptr<BlockPool>> pools_;
};

// Publishes the current wire-pool occupancy into the global metric
// registry as gauges (pull-based: BlockPool keeps its hot-path stats
// in relaxed atomics and only this refresh touches the registry):
//
//   wire.block_pool.blocks_in_use     blocks acquired and not released
//   wire.block_pool.high_water        max blocks_in_use ever seen
//   wire.block_pool.pool_hits         acquires served off a freelist
//   wire.block_pool.heap_fallbacks    acquires past the cap (heap)
//
// Covers the installed ShardBlockPools when `pools` is non-null (the
// aggregate across shards), else the process default pool. Call it
// from a TimeSeriesRecorder pre-sample hook so every telemetry grid
// point carries fresh pool occupancy (hcm_top's WIRE POOL panel).
void publish_wire_pool_gauges(ShardBlockPools* pools = nullptr);

}  // namespace hcm::net
