#include "net/ieee1394.hpp"

namespace hcm::net {

void Ieee1394Bus::subscribe_reset(NodeId node, BusResetHandler handler) {
  reset_handlers_[node] = std::move(handler);
}

void Ieee1394Bus::reset_bus() {
  ++generation_;
  const std::uint32_t gen = generation_;
  // Reset completes after ~2 ms of bus arbitration, then every node's
  // reset handler runs (HAVi re-enumerates the bus from these).
  for (auto& [node, handler] : reset_handlers_) {
    if (!handler) continue;
    auto h = handler;  // copy: handler map may change during delivery
    sched_.after(sim::milliseconds(2), [h, gen] { h(gen); });
  }
}

Result<IsoChannel> Ieee1394Bus::allocate_channel(std::uint32_t bytes_per_cycle) {
  for (int ch = 0; ch < kIsoChannelCount; ++ch) {
    auto channel = static_cast<IsoChannel>(ch);
    if (channels_.find(channel) == channels_.end()) {
      channels_[channel].bytes_per_cycle = bytes_per_cycle;
      return channel;
    }
  }
  return resource_exhausted("no free isochronous channel");
}

Status Ieee1394Bus::release_channel(IsoChannel ch) {
  if (channels_.erase(ch) == 0) {
    return not_found("iso channel not allocated: " + std::to_string(ch));
  }
  return Status::ok();
}

IsoListenerId Ieee1394Bus::listen_channel(IsoChannel ch,
                                          IsoPacketHandler handler) {
  auto id = next_listener_++;
  channels_[ch].listeners.emplace(id, std::move(handler));
  return id;
}

void Ieee1394Bus::unlisten_channel(IsoChannel ch, IsoListenerId id) {
  auto it = channels_.find(ch);
  if (it != channels_.end()) it->second.listeners.erase(id);
}

Status Ieee1394Bus::send_iso(IsoChannel ch, Bytes payload) {
  if (!is_up()) return unavailable("1394 bus is down");
  auto it = channels_.find(ch);
  if (it == channels_.end()) {
    return not_found("iso channel not allocated: " + std::to_string(ch));
  }
  account(payload.size());
  ++iso_packets_;
  auto listeners = it->second.listeners;  // copy for safe delivery
  sched_.after(sim::microseconds(125),
               [listeners, ch, payload = std::move(payload)] {
                 for (const auto& [id, l] : listeners) l(ch, payload);
               });
  return Status::ok();
}

}  // namespace hcm::net
