// Reliable ordered byte streams (TCP-like) over the simulated network.
// HTTP, the Jini call protocol, and the mail protocol run on these.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "common/block_stream.hpp"
#include "common/bytes.hpp"
#include "net/address.hpp"
#include "sim/scheduler.hpp"

namespace hcm::net {

class Network;
class Stream;
using StreamPtr = std::shared_ptr<Stream>;

// Payloads travel as pooled BlockStreams end-to-end: the sender renders
// into blocks, transit moves the chain (no copy), and the receiver
// splices it straight into its parser. Handlers that still want flat
// bytes call data.to_bytes()/to_string().
using DataHandler = std::function<void(BlockStream&& data)>;
using CloseHandler = std::function<void()>;

// One end of an established connection. Created in pairs by
// Network::connect; always held via shared_ptr.
class Stream : public std::enable_shared_from_this<Stream> {
 public:
  // Construction is internal to Network; use Network::connect.
  Stream(Network& net, Endpoint local, Endpoint remote)
      : net_(net), local_(local), remote_(remote) {}
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  [[nodiscard]] Endpoint local() const { return local_; }
  [[nodiscard]] Endpoint remote() const { return remote_; }
  [[nodiscard]] bool is_open() const { return open_; }

  // Sends bytes to the peer; delivered in FIFO order after the route's
  // transit time. Silently dropped if the stream is closed. If the
  // route has failed, the connection is reset (both ends see close).
  // The BlockStream form is the wire path: the block chain itself moves
  // to the peer. The Bytes form wraps into blocks for convenience.
  void send(BlockStream data);
  void send(Bytes data);

  // Graceful close: the peer's close handler fires after transit time.
  void close();

  // Delivery of bytes that arrive before a handler is installed is
  // buffered and flushed when the handler is set.
  void set_on_data(DataHandler handler);
  void set_on_close(CloseHandler handler);

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class Network;

  void deliver(BlockStream data);    // peer -> this
  void peer_closed();                // peer close/reset -> this

  Network& net_;
  Endpoint local_;
  Endpoint remote_;
  std::weak_ptr<Stream> peer_;
  bool open_ = true;
  DataHandler on_data_;
  CloseHandler on_close_;
  std::deque<BlockStream> pending_;  // arrived before on_data_ set
  bool closed_pending_ = false;      // closed before on_close_ set
  sim::SimTime clear_time_ = 0;      // FIFO ordering for our sends
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace hcm::net
