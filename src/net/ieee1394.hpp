// IEEE 1394 (FireWire) bus model: the substrate HAVi runs on.
// Asynchronous packets go through the generic Network datagram path
// (transit_time below); isochronous streaming and bus resets are the
// 1394-specific features HAVi's stream manager and enumeration need.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/segment.hpp"
#include "sim/scheduler.hpp"

namespace hcm::net {

using IsoChannel = std::uint8_t;
constexpr int kIsoChannelCount = 64;

// Called on each attached node when the bus resets (device added or
// removed). `generation` increments per reset, as in real 1394.
using BusResetHandler = std::function<void(std::uint32_t generation)>;
// Sink callback for isochronous packets.
using IsoPacketHandler =
    std::function<void(IsoChannel channel, const Bytes& payload)>;
using IsoListenerId = std::uint64_t;

class Ieee1394Bus : public Segment {
 public:
  // S400: 400 Mb/s, ~25 us arbitration+propagation per async packet.
  explicit Ieee1394Bus(std::string name, sim::Scheduler& sched)
      : Segment(std::move(name), SegmentKind::kIeee1394), sched_(sched) {}

  [[nodiscard]] sim::Duration transit_time(std::size_t bytes) const override {
    auto ser = static_cast<sim::Duration>(
        (static_cast<std::uint64_t>(bytes) * 8 * 1000000) / 400'000'000ULL);
    return sim::microseconds(25) + ser;
  }

  // --- Bus reset / generations -------------------------------------
  [[nodiscard]] std::uint32_t generation() const { return generation_; }
  void subscribe_reset(NodeId node, BusResetHandler handler);
  // Triggers a reset (call after attaching/detaching a device).
  void reset_bus();

  // --- Isochronous channels ----------------------------------------
  // Allocates a free channel with the given bandwidth (bytes / cycle,
  // 8 kHz cycle clock). Returns the channel number.
  [[nodiscard]] Result<IsoChannel> allocate_channel(std::uint32_t bytes_per_cycle);
  Status release_channel(IsoChannel ch);
  [[nodiscard]] int channels_in_use() const {
    return static_cast<int>(channels_.size());
  }

  // Registers a listener for packets on a channel (e.g. a display FCM).
  IsoListenerId listen_channel(IsoChannel ch, IsoPacketHandler handler);
  // Removes one listener; other listeners on the channel are untouched.
  void unlisten_channel(IsoChannel ch, IsoListenerId id);

  // Transmits one isochronous packet on a channel; delivered to all
  // listeners after one cycle (125 us).
  Status send_iso(IsoChannel ch, Bytes payload);

  [[nodiscard]] std::uint64_t iso_packets_sent() const { return iso_packets_; }

 private:
  struct ChannelState {
    std::uint32_t bytes_per_cycle = 0;
    std::map<IsoListenerId, IsoPacketHandler> listeners;
  };

  sim::Scheduler& sched_;
  std::uint32_t generation_ = 0;
  std::map<NodeId, BusResetHandler> reset_handlers_;
  std::map<IsoChannel, ChannelState> channels_;
  IsoListenerId next_listener_ = 1;
  std::uint64_t iso_packets_ = 0;
};

}  // namespace hcm::net
