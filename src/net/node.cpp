#include "net/node.hpp"

namespace hcm::net {

Status Node::bind(std::uint16_t port, DatagramHandler handler) {
  if (datagram_handlers_.count(port) != 0) {
    return already_exists(name_ + ": datagram port " + std::to_string(port) +
                          " in use");
  }
  datagram_handlers_[port] = std::move(handler);
  return Status::ok();
}

void Node::unbind(std::uint16_t port) { datagram_handlers_.erase(port); }

const DatagramHandler* Node::datagram_handler(std::uint16_t port) const {
  auto it = datagram_handlers_.find(port);
  return it == datagram_handlers_.end() ? nullptr : &it->second;
}

Status Node::listen(std::uint16_t port, AcceptHandler handler) {
  if (listeners_.count(port) != 0) {
    return already_exists(name_ + ": listen port " + std::to_string(port) +
                          " in use");
  }
  listeners_[port] = std::move(handler);
  return Status::ok();
}

void Node::stop_listening(std::uint16_t port) { listeners_.erase(port); }

const AcceptHandler* Node::listener(std::uint16_t port) const {
  auto it = listeners_.find(port);
  return it == listeners_.end() ? nullptr : &it->second;
}

std::uint16_t Node::next_ephemeral_port() {
  if (next_ephemeral_ == 0) next_ephemeral_ = 49152;  // wrapped
  return next_ephemeral_++;
}

}  // namespace hcm::net
