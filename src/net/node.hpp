// A simulated host: an appliance, PC, gateway, or embedded controller.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/address.hpp"

namespace hcm::net {

class Network;
class Stream;
using StreamPtr = std::shared_ptr<Stream>;

using DatagramHandler = std::function<void(Endpoint from, const Bytes& data)>;
using AcceptHandler = std::function<void(StreamPtr stream)>;

class Node {
 public:
  Node(Network& net, NodeId id, std::string name)
      : net_(net), id_(id), name_(std::move(name)) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() { return net_; }

  // Failure injection: a down node neither sends nor receives. Atomic:
  // routing on any shard reads it, fault injection writes it.
  [[nodiscard]] bool is_up() const {
    return up_.load(std::memory_order_relaxed);
  }
  void set_up(bool up) { up_.store(up, std::memory_order_relaxed); }

  // --- Datagram ports ------------------------------------------------
  Status bind(std::uint16_t port, DatagramHandler handler);
  void unbind(std::uint16_t port);
  [[nodiscard]] const DatagramHandler* datagram_handler(std::uint16_t port) const;

  // --- Stream listeners ----------------------------------------------
  Status listen(std::uint16_t port, AcceptHandler handler);
  void stop_listening(std::uint16_t port);
  [[nodiscard]] const AcceptHandler* listener(std::uint16_t port) const;

  // Ephemeral port allocation for outgoing connections.
  [[nodiscard]] std::uint16_t next_ephemeral_port();

 private:
  Network& net_;
  NodeId id_;
  std::string name_;
  std::atomic<bool> up_{true};
  // Owner-shard state: handlers, listeners and ephemeral ports are only
  // touched by code running on this node's shard (deliveries arrive
  // there via Network's shard-aware channels), so they need no locks.
  std::map<std::uint16_t, DatagramHandler> datagram_handlers_;
  std::map<std::uint16_t, AcceptHandler> listeners_;
  std::uint16_t next_ephemeral_ = 49152;
};

}  // namespace hcm::net
