// Network segments: the physical media of the simulated home.
// EthernetSegment models the TCP/IP home LAN and the Internet backbone;
// Ieee1394Bus and PowerlineSegment live in their own headers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/scheduler.hpp"

namespace hcm::net {

enum class SegmentKind { kEthernet, kIeee1394, kPowerline };

// A shared medium connecting a set of nodes. Subclasses define the
// latency/bandwidth model; Network uses transit_time() for delivery.
class Segment {
 public:
  Segment(std::string name, SegmentKind kind)
      : name_(std::move(name)), kind_(kind) {}
  virtual ~Segment() = default;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SegmentKind kind() const { return kind_; }

  // Time for `bytes` to cross this segment, including media access.
  [[nodiscard]] virtual sim::Duration transit_time(std::size_t bytes) const = 0;

  // Failure injection. Atomic flags: a backbone segment is consulted
  // by routing/accounting on every shard that touches it, while fault
  // injection flips state from scenario code (docs/SHARDING.md).
  [[nodiscard]] bool is_up() const {
    return up_.load(std::memory_order_relaxed);
  }
  void set_up(bool up) { up_.store(up, std::memory_order_relaxed); }
  [[nodiscard]] double drop_probability() const {
    return drop_probability_.load(std::memory_order_relaxed);
  }
  void set_drop_probability(double p) {
    drop_probability_.store(p, std::memory_order_relaxed);
  }

  // Membership (managed by Network; topology is frozen before a
  // sharded run, so reads need no lock) --------------------------------
  void attach(NodeId node) { nodes_.push_back(node); }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }
  [[nodiscard]] bool has_node(NodeId node) const;

  // Traffic accounting (read by the wire-overhead benches). Relaxed
  // atomics: cross-island traffic accounts from multiple shards.
  void account(std::size_t bytes) {
    bytes_carried_.fetch_add(bytes, std::memory_order_relaxed);
    frames_carried_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_carried() const {
    return bytes_carried_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_carried() const {
    return frames_carried_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  SegmentKind kind_;
  std::vector<NodeId> nodes_;
  std::atomic<bool> up_{true};
  std::atomic<double> drop_probability_{0.0};
  std::atomic<std::uint64_t> bytes_carried_{0};
  std::atomic<std::uint64_t> frames_carried_{0};
};

// Switched Ethernet / Internet hop: latency + serialization delay.
class EthernetSegment : public Segment {
 public:
  EthernetSegment(std::string name, sim::Duration base_latency,
                  std::uint64_t bandwidth_bps)
      : Segment(std::move(name), SegmentKind::kEthernet),
        base_latency_(base_latency),
        bandwidth_bps_(bandwidth_bps) {}

  [[nodiscard]] sim::Duration transit_time(std::size_t bytes) const override {
    // serialization delay: bits / bandwidth, in microseconds
    auto ser = static_cast<sim::Duration>(
        (static_cast<std::uint64_t>(bytes) * 8 * 1000000) / bandwidth_bps_);
    return base_latency_ + ser;
  }

  // Typical home LAN (100 Mb/s, 200 us).
  static EthernetSegment home_lan(std::string name) {
    return {std::move(name), sim::microseconds(200), 100'000'000};
  }

 private:
  sim::Duration base_latency_;
  std::uint64_t bandwidth_bps_;
};

}  // namespace hcm::net
