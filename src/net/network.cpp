#include "net/network.hpp"

#include <algorithm>
#include <queue>

#include "common/check.hpp"

namespace hcm::net {

sim::Scheduler& Network::scheduler() {
  if (kernel_ != nullptr) {
    const auto* ctx = sim::ShardedKernel::current();
    if (ctx != nullptr && ctx->kernel == kernel_) {
      return kernel_->shard(ctx->shard);
    }
  }
  return sched_;
}

void Network::set_kernel(sim::ShardedKernel* kernel) {
  HCM_CHECK_MSG(kernel == nullptr || !kernel->running(),
                "attach the kernel between runs");
  kernel_ = kernel;
}

void Network::place_node(NodeId node_id, sim::ShardId shard) {
  HCM_CHECK(node_id != kInvalidNode && node_id <= node_shard_.size());
  HCM_CHECK(kernel_ == nullptr || shard < kernel_->shards());
  node_shard_[node_id - 1] = shard;
}

sim::ShardId Network::shard_of(NodeId node_id) const {
  if (node_id == kInvalidNode || node_id > node_shard_.size()) return 0;
  return node_shard_[node_id - 1];
}

sim::Duration Network::min_cross_shard_latency() const {
  if (kernel_ == nullptr) return 0;
  sim::Duration best = 0;
  for (const auto& seg : segments_) {
    bool cross = false;
    bool have = false;
    sim::ShardId first = 0;
    for (NodeId n : seg->nodes()) {
      const sim::ShardId s = shard_of(n);
      if (!have) {
        first = s;
        have = true;
      } else if (s != first) {
        cross = true;
        break;
      }
    }
    if (!cross) continue;
    const sim::Duration t = seg->transit_time(0);
    if (best == 0 || t < best) best = t;
  }
  return best;
}

void Network::deliver_at(NodeId dst, sim::SimTime when, sim::EventFn fn) {
  if (kernel_ == nullptr) {
    sched_.at(when, std::move(fn));
    return;
  }
  const sim::ShardId dst_shard = shard_of(dst);
  const auto* ctx = sim::ShardedKernel::current();
  const bool bound = ctx != nullptr && ctx->kernel == kernel_;
  if (bound && dst_shard == ctx->shard) {
    kernel_->shard(dst_shard).at(when, std::move(fn));
    return;
  }
  if (!kernel_->running()) {
    // Coordinator side (setup or between-window scenario drive):
    // single-threaded direct access to the destination slab.
    sim::Scheduler& ss = kernel_->shard(dst_shard);
    ss.at(std::max(when, ss.now()), std::move(fn));
    return;
  }
  // Cross-shard from a worker mid-window: enqueue through the kernel,
  // clamped to the conservative lookahead so the delivery always lands
  // after the current window's barrier.
  const sim::SimTime earliest =
      kernel_->shard(ctx->shard).now() + kernel_->lookahead();
  kernel_->post(dst_shard, std::max(when, earliest), std::move(fn));
}

void Network::deliver_to(NodeId dst, sim::Duration latency, sim::EventFn fn) {
  deliver_at(dst, scheduler().now() + latency, std::move(fn));
}

Node& Network::add_node(const std::string& name) {
  HCM_CHECK_MSG(kernel_ == nullptr || !kernel_->running(),
                "topology is frozen while the kernel runs");
  auto id = static_cast<NodeId>(nodes_.size() + 1);
  nodes_.push_back(std::make_unique<Node>(*this, id, name));
  sim::ShardId shard = 0;
  if (kernel_ != nullptr) {
    const auto* ctx = sim::ShardedKernel::current();
    if (ctx != nullptr && ctx->kernel == kernel_) shard = ctx->shard;
  }
  node_shard_.push_back(shard);
  return *nodes_.back();
}

Node* Network::node(NodeId id) {
  if (id == kInvalidNode || id > nodes_.size()) return nullptr;
  return nodes_[id - 1].get();
}

Node* Network::find_node(const std::string& name) {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

EthernetSegment& Network::add_ethernet(const std::string& name,
                                       sim::Duration base_latency,
                                       std::uint64_t bandwidth_bps) {
  segments_.push_back(
      std::make_unique<EthernetSegment>(name, base_latency, bandwidth_bps));
  return static_cast<EthernetSegment&>(*segments_.back());
}

Ieee1394Bus& Network::add_ieee1394(const std::string& name) {
  // scheduler(), not sched_: island media built under run_as(shard)
  // keep their bus timers (isochronous cycles, arbitration) on the
  // island's own shard.
  segments_.push_back(std::make_unique<Ieee1394Bus>(name, scheduler()));
  return static_cast<Ieee1394Bus&>(*segments_.back());
}

PowerlineSegment& Network::add_powerline(const std::string& name) {
  segments_.push_back(std::make_unique<PowerlineSegment>(name, scheduler()));
  return static_cast<PowerlineSegment&>(*segments_.back());
}

void Network::attach(Node& node, Segment& segment) {
  segment.attach(node.id());
  attachments_[node.id()].push_back(&segment);
  // New links can create shorter routes than the cached ones.
  std::unique_lock lock(route_mu_);
  route_cache_.clear();
}

Result<Network::RoutePtr> Network::find_route(NodeId a, NodeId b) {
  Node* na = node(a);
  Node* nb = node(b);
  if (na == nullptr || nb == nullptr) return not_found("no such node");
  if (!na->is_up()) return unavailable(na->name() + " is down");
  if (!nb->is_up()) return unavailable(nb->name() + " is down");
  if (a == b) return loopback_route_;

  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  {
    std::shared_lock lock(route_mu_);
    auto it = route_cache_.find(key);
    if (it != route_cache_.end()) {
      const Route& r = *it->second;
      bool valid = true;
      for (const Segment* seg : r.path) {
        if (!seg->is_up()) {
          valid = false;
          break;
        }
      }
      for (NodeId hop : r.via) {
        Node* nn = node(hop);
        if (nn == nullptr || !nn->is_up()) {
          valid = false;
          break;
        }
      }
      if (valid) return it->second;
    }
  }

  // BFS over nodes; edges are up segments.
  std::map<NodeId, std::pair<NodeId, Segment*>> parent;  // node -> (prev, via)
  std::queue<NodeId> frontier;
  frontier.push(a);
  parent[a] = {kInvalidNode, nullptr};
  while (!frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop();
    auto it = attachments_.find(cur);
    if (it == attachments_.end()) continue;
    for (Segment* seg : it->second) {
      if (!seg->is_up()) continue;
      for (NodeId next : seg->nodes()) {
        if (parent.count(next) != 0) continue;
        Node* nn = node(next);
        if (nn == nullptr || !nn->is_up()) continue;
        parent[next] = {cur, seg};
        if (next == b) {
          auto route = std::make_shared<Route>();
          for (NodeId hop = b; hop != a; hop = parent[hop].first) {
            route->path.push_back(parent[hop].second);
            if (hop != b) route->via.push_back(hop);
          }
          std::reverse(route->path.begin(), route->path.end());
          std::unique_lock lock(route_mu_);
          route_cache_[key] = route;  // replaces a stale entry, if any
          return RoutePtr(route);
        }
        frontier.push(next);
      }
    }
  }
  return unavailable("no route from " + na->name() + " to " + nb->name());
}

sim::Duration Network::path_latency(const Route& r, std::size_t bytes) {
  if (r.path.empty()) return sim::microseconds(10);  // loopback
  sim::Duration total = 0;
  for (const Segment* seg : r.path) total += seg->transit_time(bytes);
  // Per-hop forwarding cost at intermediate gateways.
  if (r.path.size() > 1) {
    total += static_cast<sim::Duration>(r.path.size() - 1) *
             sim::microseconds(50);
  }
  return total;
}

void Network::account_path(const Route& r, std::size_t bytes) {
  for (Segment* seg : r.path) seg->account(bytes);
}

Result<sim::Duration> Network::route_latency(NodeId a, NodeId b,
                                             std::size_t bytes) {
  auto route = find_route(a, b);
  if (!route.is_ok()) return route.status();
  return path_latency(*route.value(), bytes);
}

void Network::send_datagram(Endpoint from, Endpoint to, Bytes data) {
  datagrams_sent_.inc();
  auto route = find_route(from.node, to.node);
  if (!route.is_ok()) {
    datagrams_dropped_.inc();
    return;
  }
  // Per-segment random loss, sampled from the sending shard's RNG so
  // each shard's stream stays deterministic.
  for (const Segment* seg : route.value()->path) {
    if (seg->drop_probability() > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      if (dist(scheduler().rng()) < seg->drop_probability()) {
        datagrams_dropped_.inc();
        return;
      }
    }
  }
  account_path(*route.value(), data.size());
  auto latency = path_latency(*route.value(), data.size());
  deliver_to(to.node, latency, [this, from, to, data = std::move(data)] {
    Node* dst = node(to.node);
    if (dst == nullptr || !dst->is_up()) {
      datagrams_dropped_.inc();
      return;
    }
    const DatagramHandler* handler = dst->datagram_handler(to.port);
    if (handler == nullptr || !*handler) {
      datagrams_dropped_.inc();
      return;
    }
    (*handler)(from, data);
  });
}

void Network::join_group(NodeId node_id, GroupId group) {
  std::lock_guard<std::mutex> lk(groups_mu_);
  groups_[group].insert(node_id);
}

void Network::leave_group(NodeId node_id, GroupId group) {
  std::lock_guard<std::mutex> lk(groups_mu_);
  auto it = groups_.find(group);
  if (it != groups_.end()) it->second.erase(node_id);
}

void Network::send_multicast(Endpoint from, GroupId group, std::uint16_t port,
                             Bytes data) {
  // Membership reads under the lock: discovery on one island may join
  // while another island's shard multicasts on its own LAN.
  std::lock_guard<std::mutex> lk(groups_mu_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return;
  auto ait = attachments_.find(from.node);
  if (ait == attachments_.end()) return;
  Node* src = node(from.node);
  if (src == nullptr || !src->is_up()) return;

  // Multicast does not cross gateways: delivered only to members that
  // share an up segment with the sender (matches link-local discovery).
  // Like IP multicast with IP_MULTICAST_LOOP, the sender's own node
  // receives a copy if it joined the group.
  std::set<NodeId> delivered;
  if (git->second.count(from.node) != 0) {
    delivered.insert(from.node);
    scheduler().after(sim::microseconds(10), [this, from, port, data] {
      Node* self = node(from.node);
      if (self == nullptr || !self->is_up()) return;
      const DatagramHandler* handler = self->datagram_handler(port);
      if (handler != nullptr && *handler) (*handler)(from, data);
    });
  }
  for (Segment* seg : ait->second) {
    if (!seg->is_up()) continue;
    for (NodeId member : seg->nodes()) {
      if (git->second.count(member) == 0) continue;
      if (!delivered.insert(member).second) continue;
      seg->account(data.size());
      auto latency = seg->transit_time(data.size());
      deliver_to(member, latency, [this, from, member, port, data] {
        Node* dst = node(member);
        if (dst == nullptr || !dst->is_up()) return;
        const DatagramHandler* handler = dst->datagram_handler(port);
        if (handler != nullptr && *handler) (*handler)(from, data);
      });
    }
  }
}

void Network::connect(NodeId from, Endpoint to, ConnectCallback cb) {
  stream_connects_.inc();
  Node* src = node(from);
  if (src == nullptr) {
    scheduler().after(0, [cb] { cb(not_found("no such source node")); });
    return;
  }
  auto route = find_route(from, to.node);
  if (!route.is_ok()) {
    auto status = route.status();
    scheduler().after(sim::milliseconds(1),
                      [cb, status] { cb(status); });
    return;
  }
  const auto rtt = 2 * path_latency(*route.value(), 40);
  const auto handshake = rtt + rtt / 2;  // SYN, SYN-ACK, ACK
  Endpoint local{from, src->next_ephemeral_port()};

  if (!cross_shard(from, to.node)) {
    // Same shard (or unsharded): keep the legacy single handshake
    // event so 1-shard traces stay byte-identical.
    scheduler().after(handshake, [this, local, to, cb] {
      Node* dst = node(to.node);
      Node* src2 = node(local.node);
      if (dst == nullptr || !dst->is_up() || src2 == nullptr ||
          !src2->is_up()) {
        cb(unavailable("peer unreachable during handshake"));
        return;
      }
      const AcceptHandler* acceptor = dst->listener(to.port);
      if (acceptor == nullptr || !*acceptor) {
        cb(unavailable("connection refused: " + to.to_string()));
        return;
      }
      auto client = std::make_shared<Stream>(*this, local, to);
      auto server = std::make_shared<Stream>(*this, to, local);
      client->peer_ = server;
      server->peer_ = client;
      (*acceptor)(server);
      cb(client);
    });
    return;
  }

  // Cross-shard handshake splits by side: the accept fires on the
  // destination shard at 1 RTT (SYN arrived, SYN-ACK in flight), the
  // connect callback on the source shard at the legacy 1.5 RTT mark.
  deliver_to(to.node, rtt, [this, local, to, cb, rtt] {
    Node* dst = node(to.node);
    Node* src2 = node(local.node);
    if (dst == nullptr || !dst->is_up() || src2 == nullptr ||
        !src2->is_up()) {
      deliver_to(local.node, rtt / 2, [cb] {
        cb(unavailable("peer unreachable during handshake"));
      });
      return;
    }
    const AcceptHandler* acceptor = dst->listener(to.port);
    if (acceptor == nullptr || !*acceptor) {
      const std::string msg = "connection refused: " + to.to_string();
      deliver_to(local.node, rtt / 2, [cb, msg] { cb(unavailable(msg)); });
      return;
    }
    auto client = std::make_shared<Stream>(*this, local, to);
    auto server = std::make_shared<Stream>(*this, to, local);
    client->peer_ = server;
    server->peer_ = client;
    (*acceptor)(server);
    deliver_to(local.node, rtt / 2, [cb, client] { cb(client); });
  });
}

}  // namespace hcm::net
