#include "net/network.hpp"

#include <algorithm>
#include <queue>

namespace hcm::net {

Node& Network::add_node(const std::string& name) {
  auto id = static_cast<NodeId>(nodes_.size() + 1);
  nodes_.push_back(std::make_unique<Node>(*this, id, name));
  return *nodes_.back();
}

Node* Network::node(NodeId id) {
  if (id == kInvalidNode || id > nodes_.size()) return nullptr;
  return nodes_[id - 1].get();
}

Node* Network::find_node(const std::string& name) {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

EthernetSegment& Network::add_ethernet(const std::string& name,
                                       sim::Duration base_latency,
                                       std::uint64_t bandwidth_bps) {
  segments_.push_back(
      std::make_unique<EthernetSegment>(name, base_latency, bandwidth_bps));
  return static_cast<EthernetSegment&>(*segments_.back());
}

Ieee1394Bus& Network::add_ieee1394(const std::string& name) {
  segments_.push_back(std::make_unique<Ieee1394Bus>(name, sched_));
  return static_cast<Ieee1394Bus&>(*segments_.back());
}

PowerlineSegment& Network::add_powerline(const std::string& name) {
  segments_.push_back(std::make_unique<PowerlineSegment>(name, sched_));
  return static_cast<PowerlineSegment&>(*segments_.back());
}

void Network::attach(Node& node, Segment& segment) {
  segment.attach(node.id());
  attachments_[node.id()].push_back(&segment);
}

Result<Network::Route> Network::find_route(NodeId a, NodeId b) {
  Node* na = node(a);
  Node* nb = node(b);
  if (na == nullptr || nb == nullptr) return not_found("no such node");
  if (!na->is_up()) return unavailable(na->name() + " is down");
  if (!nb->is_up()) return unavailable(nb->name() + " is down");
  if (a == b) return Route{};  // loopback

  // BFS over nodes; edges are up segments.
  std::map<NodeId, std::pair<NodeId, Segment*>> parent;  // node -> (prev, via)
  std::queue<NodeId> frontier;
  frontier.push(a);
  parent[a] = {kInvalidNode, nullptr};
  while (!frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop();
    auto it = attachments_.find(cur);
    if (it == attachments_.end()) continue;
    for (Segment* seg : it->second) {
      if (!seg->is_up()) continue;
      for (NodeId next : seg->nodes()) {
        if (parent.count(next) != 0) continue;
        Node* nn = node(next);
        if (nn == nullptr || !nn->is_up()) continue;
        parent[next] = {cur, seg};
        if (next == b) {
          Route route;
          for (NodeId hop = b; hop != a; hop = parent[hop].first) {
            route.path.push_back(parent[hop].second);
          }
          std::reverse(route.path.begin(), route.path.end());
          return route;
        }
        frontier.push(next);
      }
    }
  }
  return unavailable("no route from " + na->name() + " to " + nb->name());
}

sim::Duration Network::path_latency(const Route& r, std::size_t bytes) {
  if (r.path.empty()) return sim::microseconds(10);  // loopback
  sim::Duration total = 0;
  for (const Segment* seg : r.path) total += seg->transit_time(bytes);
  // Per-hop forwarding cost at intermediate gateways.
  if (r.path.size() > 1) {
    total += static_cast<sim::Duration>(r.path.size() - 1) *
             sim::microseconds(50);
  }
  return total;
}

void Network::account_path(const Route& r, std::size_t bytes) {
  for (Segment* seg : r.path) seg->account(bytes);
}

Result<sim::Duration> Network::route_latency(NodeId a, NodeId b,
                                             std::size_t bytes) {
  auto route = find_route(a, b);
  if (!route.is_ok()) return route.status();
  return path_latency(route.value(), bytes);
}

void Network::send_datagram(Endpoint from, Endpoint to, Bytes data) {
  datagrams_sent_.inc();
  auto route = find_route(from.node, to.node);
  if (!route.is_ok()) {
    datagrams_dropped_.inc();
    return;
  }
  // Per-segment random loss.
  for (const Segment* seg : route.value().path) {
    if (seg->drop_probability() > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      if (dist(sched_.rng()) < seg->drop_probability()) {
        datagrams_dropped_.inc();
        return;
      }
    }
  }
  account_path(route.value(), data.size());
  auto latency = path_latency(route.value(), data.size());
  sched_.after(latency, [this, from, to, data = std::move(data)] {
    Node* dst = node(to.node);
    if (dst == nullptr || !dst->is_up()) {
      datagrams_dropped_.inc();
      return;
    }
    const DatagramHandler* handler = dst->datagram_handler(to.port);
    if (handler == nullptr || !*handler) {
      datagrams_dropped_.inc();
      return;
    }
    (*handler)(from, data);
  });
}

void Network::join_group(NodeId node_id, GroupId group) {
  groups_[group].insert(node_id);
}

void Network::leave_group(NodeId node_id, GroupId group) {
  auto it = groups_.find(group);
  if (it != groups_.end()) it->second.erase(node_id);
}

void Network::send_multicast(Endpoint from, GroupId group, std::uint16_t port,
                             Bytes data) {
  auto git = groups_.find(group);
  if (git == groups_.end()) return;
  auto ait = attachments_.find(from.node);
  if (ait == attachments_.end()) return;
  Node* src = node(from.node);
  if (src == nullptr || !src->is_up()) return;

  // Multicast does not cross gateways: delivered only to members that
  // share an up segment with the sender (matches link-local discovery).
  // Like IP multicast with IP_MULTICAST_LOOP, the sender's own node
  // receives a copy if it joined the group.
  std::set<NodeId> delivered;
  if (git->second.count(from.node) != 0) {
    delivered.insert(from.node);
    sched_.after(sim::microseconds(10), [this, from, port, data] {
      Node* self = node(from.node);
      if (self == nullptr || !self->is_up()) return;
      const DatagramHandler* handler = self->datagram_handler(port);
      if (handler != nullptr && *handler) (*handler)(from, data);
    });
  }
  for (Segment* seg : ait->second) {
    if (!seg->is_up()) continue;
    for (NodeId member : seg->nodes()) {
      if (git->second.count(member) == 0) continue;
      if (!delivered.insert(member).second) continue;
      seg->account(data.size());
      auto latency = seg->transit_time(data.size());
      sched_.after(latency, [this, from, member, port, data] {
        Node* dst = node(member);
        if (dst == nullptr || !dst->is_up()) return;
        const DatagramHandler* handler = dst->datagram_handler(port);
        if (handler != nullptr && *handler) (*handler)(from, data);
      });
    }
  }
}

void Network::connect(NodeId from, Endpoint to, ConnectCallback cb) {
  stream_connects_.inc();
  Node* src = node(from);
  if (src == nullptr) {
    sched_.after(0, [cb] { cb(not_found("no such source node")); });
    return;
  }
  auto route = find_route(from, to.node);
  if (!route.is_ok()) {
    auto status = route.status();
    sched_.after(sim::milliseconds(1),
                 [cb, status] { cb(status); });
    return;
  }
  const auto rtt = 2 * path_latency(route.value(), 40);
  const auto handshake = rtt + rtt / 2;  // SYN, SYN-ACK, ACK
  Endpoint local{from, src->next_ephemeral_port()};

  sched_.after(handshake, [this, local, to, cb] {
    Node* dst = node(to.node);
    Node* src2 = node(local.node);
    if (dst == nullptr || !dst->is_up() || src2 == nullptr || !src2->is_up()) {
      cb(unavailable("peer unreachable during handshake"));
      return;
    }
    const AcceptHandler* acceptor = dst->listener(to.port);
    if (acceptor == nullptr || !*acceptor) {
      cb(unavailable("connection refused: " + to.to_string()));
      return;
    }
    auto client = std::make_shared<Stream>(*this, local, to);
    auto server = std::make_shared<Stream>(*this, to, local);
    client->peer_ = server;
    server->peer_ = client;
    (*acceptor)(server);
    cb(client);
  });
}

}  // namespace hcm::net
