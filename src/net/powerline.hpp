// X10 powerline carrier model. X10 signals one bit per AC zero crossing
// (120 half-cycles/s at 60 Hz); a standard command is an address frame
// plus a function frame, each transmitted twice, with 3-cycle gaps —
// which is why real X10 commands take the better part of a second. The
// medium is broadcast and half-duplex: simultaneous transmitters collide
// and both frames are lost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/segment.hpp"
#include "sim/scheduler.hpp"

namespace hcm::net {

// All attached devices hear every frame (including the transmitter).
using PowerlineHandler = std::function<void(NodeId from, const Bytes& frame)>;
using TransmitDone = std::function<void(const Status&)>;

class PowerlineSegment : public Segment {
 public:
  PowerlineSegment(std::string name, sim::Scheduler& sched)
      : Segment(std::move(name), SegmentKind::kPowerline), sched_(sched) {}

  // Duration of one X10 frame of `bytes` payload on the 120 Hz
  // half-cycle clock. Each payload bit costs two half-cycles (bit +
  // complement), the start code 4 half-cycles, and the frame is sent
  // twice with a 3-cycle (6 half-cycle) gap.
  [[nodiscard]] sim::Duration transit_time(std::size_t bytes) const override {
    const std::uint64_t half_cycles_per_copy = 4 + bytes * 8 * 2;
    const std::uint64_t total = half_cycles_per_copy * 2 + 6;
    return static_cast<sim::Duration>(total * kHalfCycleUs);
  }

  void subscribe(NodeId node, PowerlineHandler handler);
  void unsubscribe(NodeId node);

  // Queues a frame for transmission. Frames from different nodes
  // serialize on the medium; if two arrive while the line is idle in
  // the same half-cycle they collide (both dropped, done gets an error
  // so the device layer can retry).
  void transmit(NodeId from, Bytes frame, TransmitDone done);

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

  static constexpr std::int64_t kHalfCycleUs = 1000000 / 120;  // 60 Hz mains

 private:
  struct Pending {
    NodeId from;
    Bytes frame;
    TransmitDone done;
    sim::SimTime enqueued_at;
  };

  void start_next();
  void finish(Pending p, bool collided);

  sim::Scheduler& sched_;
  std::map<NodeId, PowerlineHandler> handlers_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  std::uint64_t collisions_ = 0;
};

}  // namespace hcm::net
