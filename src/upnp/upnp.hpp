// UPnP-like middleware: SSDP-style multicast discovery, XML device
// descriptions over HTTP, and SOAP control actions. §5 of the paper
// argues any new middleware joins the framework by writing one PCM —
// the UPnP PCM in core/ is that demonstration, and this is the
// middleware it converts.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/service.hpp"
#include "http/client.hpp"
#include "http/server.hpp"
#include "soap/rpc.hpp"
#include "soap/wsdl.hpp"

namespace hcm::upnp {

constexpr net::GroupId kSsdpGroup = 0x55506E50;  // "UPnP"
constexpr std::uint16_t kSsdpPort = 1900;

// One advertised service of a device.
struct ServiceDescription {
  std::string service_id;      // "urn:hcm:svc:lamp-1"
  InterfaceDesc interface;
  net::Endpoint control;       // SOAP control endpoint
  std::string control_path;    // e.g. "/control/lamp-1"
};

struct DeviceDescription {
  std::string friendly_name;
  std::string udn;             // unique device name
  std::vector<ServiceDescription> services;
};

// A device: announces itself over SSDP and serves its description,
// per-service WSDL-style SCPD documents, and SOAP control endpoints.
class UpnpDevice {
 public:
  UpnpDevice(net::Network& net, net::NodeId node, std::string friendly_name,
             std::uint16_t http_port = 5000);
  ~UpnpDevice();
  UpnpDevice(const UpnpDevice&) = delete;
  UpnpDevice& operator=(const UpnpDevice&) = delete;

  Status start();

  // Adds a controllable service (call before or after start()).
  void add_service(const std::string& service_id, InterfaceDesc iface,
                   ServiceHandler handler);

  // GENA-style eventing: control points SUBSCRIBE/UNSUBSCRIBE at
  // /gena/<service_id> with a CALLBACK URL; post_event NOTIFYs every
  // subscriber of the service.
  void post_event(const std::string& service_id, const std::string& event,
                  const Value& payload);
  [[nodiscard]] std::size_t subscriber_count(
      const std::string& service_id) const;
  [[nodiscard]] std::uint64_t events_posted() const { return events_posted_; }

  [[nodiscard]] const std::string& udn() const { return udn_; }
  [[nodiscard]] net::Endpoint http_endpoint() const {
    return {node_, http_port_};
  }

 private:
  void on_ssdp(net::Endpoint from, const Bytes& data);
  void handle_gena(const std::string& service_id, const http::Request& req,
                   http::RespondFn respond);
  std::string description_xml() const;

  net::Network& net_;
  net::NodeId node_;
  std::string friendly_name_;
  std::string udn_;
  std::uint16_t http_port_;
  http::HttpServer http_;
  http::HttpClient notify_client_;
  struct Mounted {
    InterfaceDesc iface;
    std::unique_ptr<soap::SoapService> control;
  };
  std::map<std::string, Mounted> services_;
  struct GenaSubscriber {
    net::Endpoint callback;
    std::string path;
  };
  // service_id -> SID -> subscriber callback.
  std::map<std::string, std::map<std::string, GenaSubscriber>> subscribers_;
  std::uint64_t next_sid_ = 1;
  std::uint64_t events_posted_ = 0;
};

// Control point: discovers devices and invokes their actions.
class ControlPoint {
 public:
  ControlPoint(net::Network& net, net::NodeId node);

  using DevicesFn = std::function<void(std::vector<DeviceDescription>)>;
  // M-SEARCH: collects device descriptions for `wait`.
  void search(sim::Duration wait, DevicesFn done);

  // Invokes an action on a discovered service.
  void invoke(const ServiceDescription& service, const std::string& action,
              const ValueList& args, InvokeResultFn done);

  // GENA: subscribes to a service's events. NOTIFYs arrive at a
  // lazily-started callback server; `done` receives the SID.
  using EventFn = std::function<void(const std::string& service_id,
                                     const std::string& event,
                                     const Value& payload)>;
  using SubscribeDoneFn = std::function<void(Result<std::string>)>;
  void subscribe(const ServiceDescription& service, EventFn on_event,
                 SubscribeDoneFn done);
  void unsubscribe(const ServiceDescription& service, const std::string& sid);

 private:
  void fetch_description(net::Endpoint http_endpoint,
                         std::function<void(Result<DeviceDescription>)> done);
  [[nodiscard]] Status ensure_notify_server();

  net::Network& net_;
  net::NodeId node_;
  http::HttpClient http_;
  soap::SoapClient soap_;
  std::uint16_t reply_port_ = 21900;
  std::unique_ptr<http::HttpServer> notify_server_;
  std::uint16_t notify_port_ = 5390;
  struct GenaSub {
    std::string service_id;
    EventFn on_event;
  };
  std::map<std::string, GenaSub> gena_subs_;  // by SID
};

}  // namespace hcm::upnp
