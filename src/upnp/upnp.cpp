#include "upnp/upnp.hpp"

#include <atomic>

#include "common/strings.hpp"
#include "soap/value_xml.hpp"
#include "xml/xml.hpp"

namespace hcm::upnp {

namespace {
constexpr const char* kSearchMagic = "M-SEARCH * HTTP/1.1";
// Atomic so device construction across future shard workers still
// yields unique UDNs without a data race.
std::atomic<std::uint64_t> g_udn_counter{0};
}  // namespace

UpnpDevice::UpnpDevice(net::Network& net, net::NodeId node,
                       std::string friendly_name, std::uint16_t http_port)
    : net_(net),
      node_(node),
      friendly_name_(std::move(friendly_name)),
      udn_("uuid:hcm-" + std::to_string(g_udn_counter.fetch_add(1) + 1)),
      http_port_(http_port),
      http_(net, node, http_port),
      notify_client_(net, node) {}

UpnpDevice::~UpnpDevice() {
  if (net::Node* n = net_.node(node_)) n->unbind(kSsdpPort);
}

Status UpnpDevice::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("upnp device: no such node");
  auto status = http_.start();
  if (!status.is_ok()) return status;
  http_.route("/description.xml",
              [this](const http::Request&, http::RespondFn respond) {
                respond(http::Response::make(200, "OK", description_xml(),
                                             "text/xml"));
              });
  net_.join_group(node_, kSsdpGroup);
  status = n->bind(kSsdpPort, [this](net::Endpoint from, const Bytes& data) {
    on_ssdp(from, data);
  });
  if (!status.is_ok()) return status;
  return Status::ok();
}

void UpnpDevice::add_service(const std::string& service_id,
                             InterfaceDesc iface, ServiceHandler handler) {
  Mounted mounted;
  mounted.iface = iface;
  const std::string control_path = "/control/" + service_id;
  const std::string scpd_path = "/scpd/" + service_id;
  mounted.control = std::make_unique<soap::SoapService>(http_, control_path);
  // Every interface method becomes a SOAP action on the control URL.
  for (const auto& m : iface.methods) {
    mounted.control->register_method(
        m.name, [handler, name = m.name](const soap::NamedValues& params,
                                         soap::CallResultFn done) {
          ValueList args;
          args.reserve(params.size());
          for (const auto& [k, v] : params) args.push_back(v);
          handler(name, args, std::move(done));
        });
  }
  // SCPD document: we serve WSDL, which carries the same information.
  Uri endpoint{"http", "node-" + std::to_string(node_), http_port_,
               control_path};
  const std::string scpd =
      soap::emit_wsdl(iface, service_id, endpoint);
  http_.route(scpd_path, [scpd](const http::Request&,
                                http::RespondFn respond) {
    respond(http::Response::make(200, "OK", scpd, "text/xml"));
  });
  http_.route("/gena/" + service_id,
              [this, service_id](const http::Request& req,
                                 http::RespondFn respond) {
                handle_gena(service_id, req, std::move(respond));
              });
  services_[service_id] = std::move(mounted);
}

void UpnpDevice::handle_gena(const std::string& service_id,
                             const http::Request& req,
                             http::RespondFn respond) {
  if (req.method == "SUBSCRIBE") {
    const std::string* cb = req.header("CALLBACK");
    if (cb == nullptr) {
      respond(http::Response::make(400, "Bad Request", "missing CALLBACK"));
      return;
    }
    std::string url = *cb;
    if (url.size() >= 2 && url.front() == '<' && url.back() == '>') {
      url = url.substr(1, url.size() - 2);
    }
    auto uri = parse_uri(url);
    if (!uri.is_ok() || uri.value().host.rfind("node-", 0) != 0) {
      respond(http::Response::make(400, "Bad Request", "bad CALLBACK"));
      return;
    }
    auto id = parse_uint(uri.value().host.substr(5));
    if (id <= 0) {
      respond(http::Response::make(400, "Bad Request", "bad CALLBACK host"));
      return;
    }
    GenaSubscriber sub;
    sub.callback = {static_cast<net::NodeId>(id), uri.value().port};
    sub.path = uri.value().path;
    const std::string sid = "uuid:gena-" + std::to_string(next_sid_++);
    subscribers_[service_id][sid] = std::move(sub);
    auto resp = http::Response::make(200, "OK", sid);
    resp.set_header("SID", sid);
    respond(std::move(resp));
    return;
  }
  if (req.method == "UNSUBSCRIBE") {
    const std::string* sid = req.header("SID");
    bool removed = false;
    if (sid != nullptr) {
      auto it = subscribers_.find(service_id);
      if (it != subscribers_.end()) removed = it->second.erase(*sid) > 0;
    }
    if (removed) {
      respond(http::Response::make(200, "OK", ""));
    } else {
      respond(http::Response::make(412, "Precondition Failed", ""));
    }
    return;
  }
  respond(http::Response::make(405, "Method Not Allowed", ""));
}

void UpnpDevice::post_event(const std::string& service_id,
                            const std::string& event, const Value& payload) {
  auto it = subscribers_.find(service_id);
  if (it == subscribers_.end() || it->second.empty()) return;
  xml::Element root("propertyset");
  soap::value_to_xml("service", Value(service_id), root);
  soap::value_to_xml("event", Value(event), root);
  soap::value_to_xml("payload", payload, root);
  const std::string body = root.to_string();
  for (const auto& [sid, sub] : it->second) {
    http::Request req;
    req.method = "NOTIFY";
    req.target = sub.path;
    req.set_header("SID", sid);
    req.set_header("Content-Type", "text/xml");
    req.body = body;
    notify_client_.request(sub.callback, std::move(req),
                           [](Result<http::Response>) {});
    ++events_posted_;
  }
}

std::size_t UpnpDevice::subscriber_count(const std::string& service_id) const {
  auto it = subscribers_.find(service_id);
  return it == subscribers_.end() ? 0 : it->second.size();
}

void UpnpDevice::on_ssdp(net::Endpoint from, const Bytes& data) {
  if (to_string(data).rfind(kSearchMagic, 0) != 0) return;
  // Unicast response with our description location.
  std::string resp = "HTTP/1.1 200 OK\r\nLOCATION: http://node-" +
                     std::to_string(node_) + ":" +
                     std::to_string(http_port_) +
                     "/description.xml\r\nUSN: " + udn_ + "\r\n\r\n";
  net_.send_datagram({node_, kSsdpPort}, from, to_bytes(resp));
}

std::string UpnpDevice::description_xml() const {
  xml::Element root("root");
  root.set_attr("xmlns", "urn:schemas-upnp-org:device-1-0");
  auto& device = root.add_child("device");
  device.add_child("friendlyName").set_text(friendly_name_);
  device.add_child("UDN").set_text(udn_);
  auto& list = device.add_child("serviceList");
  for (const auto& [id, mounted] : services_) {
    auto& svc = list.add_child("service");
    svc.add_child("serviceId").set_text(id);
    svc.add_child("controlURL").set_text("/control/" + id);
    svc.add_child("SCPDURL").set_text("/scpd/" + id);
  }
  return "<?xml version=\"1.0\"?>" + root.to_string();
}

// --- Control point --------------------------------------------------------

ControlPoint::ControlPoint(net::Network& net, net::NodeId node)
    : net_(net), node_(node), http_(net, node), soap_(net, node) {}

void ControlPoint::search(sim::Duration wait, DevicesFn done) {
  net::Node* n = net_.node(node_);
  if (n == nullptr) {
    done({});
    return;
  }
  auto locations = std::make_shared<std::vector<net::Endpoint>>();
  const std::uint16_t port = reply_port_++;
  n->bind(port, [locations](net::Endpoint, const Bytes& data) {
    // Parse the LOCATION header of the SSDP response.
    auto text = to_string(data);
    for (const auto& line : split(text, '\n')) {
      auto trimmed = trim(line);
      if (!starts_with(to_lower(trimmed), "location:")) continue;
      auto uri = parse_uri(std::string(trim(trimmed.substr(9))));
      if (!uri.is_ok()) continue;
      // Host form is "node-<id>".
      auto host = uri.value().host;
      if (host.rfind("node-", 0) != 0) continue;
      auto id = parse_uint(host.substr(5));
      if (id <= 0) continue;
      locations->push_back(
          {static_cast<net::NodeId>(id), uri.value().port});
    }
  });
  net_.send_multicast({node_, port}, kSsdpGroup, kSsdpPort,
                      to_bytes(std::string(kSearchMagic) +
                               "\r\nMAN: \"ssdp:discover\"\r\n\r\n"));

  net_.scheduler().after(wait, [this, port, locations,
                                done = std::move(done)] {
    if (net::Node* n2 = net_.node(node_)) n2->unbind(port);
    auto devices = std::make_shared<std::vector<DeviceDescription>>();
    auto remaining = std::make_shared<std::size_t>(locations->size());
    if (*remaining == 0) {
      done({});
      return;
    }
    auto done_shared = std::make_shared<DevicesFn>(std::move(done));
    for (const auto& loc : *locations) {
      fetch_description(loc, [devices, remaining, done_shared](
                                 Result<DeviceDescription> r) {
        if (r.is_ok()) devices->push_back(std::move(r).take());
        if (--*remaining == 0) (*done_shared)(std::move(*devices));
      });
    }
  });
}

void ControlPoint::fetch_description(
    net::Endpoint http_endpoint,
    std::function<void(Result<DeviceDescription>)> done) {
  http::Request req;
  req.target = "/description.xml";
  http_.request(http_endpoint, std::move(req), [this, http_endpoint,
                                                done = std::move(done)](
                                                   Result<http::Response> r) {
    if (!r.is_ok()) {
      done(r.status());
      return;
    }
    auto doc = xml::parse(r.value().body);
    if (!doc.is_ok()) {
      done(doc.status());
      return;
    }
    const auto* device = doc.value()->child("device");
    if (device == nullptr) {
      done(protocol_error("description without device"));
      return;
    }
    auto desc = std::make_shared<DeviceDescription>();
    if (const auto* fn = device->child("friendlyName")) {
      desc->friendly_name = fn->text();
    }
    if (const auto* udn = device->child("UDN")) desc->udn = udn->text();

    // Fetch each service's SCPD (WSDL) to learn its interface.
    std::vector<std::pair<std::string, std::string>> scpds;  // id, path
    if (const auto* list = device->child("serviceList")) {
      for (const auto* svc : list->children_named("service")) {
        const auto* id = svc->child("serviceId");
        const auto* scpd = svc->child("SCPDURL");
        if (id != nullptr && scpd != nullptr) {
          scpds.emplace_back(id->text(), scpd->text());
        }
      }
    }
    auto remaining = std::make_shared<std::size_t>(scpds.size());
    auto done_shared =
        std::make_shared<std::function<void(Result<DeviceDescription>)>>(
            std::move(done));
    if (scpds.empty()) {
      (*done_shared)(std::move(*desc));
      return;
    }
    for (const auto& [id, path] : scpds) {
      http::Request scpd_req;
      scpd_req.target = path;
      http_.request(
          http_endpoint, std::move(scpd_req),
          [desc, remaining, done_shared, id = id,
           http_endpoint](Result<http::Response> sr) {
            if (sr.is_ok()) {
              auto wsdl = soap::parse_wsdl(sr.value().body);
              if (wsdl.is_ok()) {
                ServiceDescription s;
                s.service_id = id;
                s.interface = wsdl.value().interface;
                s.control = {http_endpoint.node, wsdl.value().endpoint.port};
                s.control_path = wsdl.value().endpoint.path;
                desc->services.push_back(std::move(s));
              }
            }
            if (--*remaining == 0) (*done_shared)(std::move(*desc));
          });
    }
  });
}

Status ControlPoint::ensure_notify_server() {
  if (notify_server_ != nullptr) return Status::ok();
  auto server = std::make_unique<http::HttpServer>(net_, node_, notify_port_);
  auto status = server->start();
  if (!status.is_ok()) return status;
  server->route("/notify", [this](const http::Request& req,
                                  http::RespondFn respond) {
    const std::string* sid = req.header("SID");
    if (sid == nullptr) {
      respond(http::Response::make(400, "Bad Request", "missing SID"));
      return;
    }
    auto sub = gena_subs_.find(*sid);
    if (sub == gena_subs_.end()) {
      respond(http::Response::make(412, "Precondition Failed", ""));
      return;
    }
    auto doc = xml::parse(req.body);
    if (!doc.is_ok()) {
      respond(http::Response::make(400, "Bad Request", "bad propertyset"));
      return;
    }
    std::string event;
    Value payload;
    if (const auto* e = doc.value()->child("event")) {
      auto v = soap::value_from_xml(*e);
      if (v.is_ok() && v.value().is_string()) event = v.value().as_string();
    }
    if (const auto* p = doc.value()->child("payload")) {
      auto v = soap::value_from_xml(*p);
      if (v.is_ok()) payload = std::move(v).take();
    }
    // Copy: the handler may unsubscribe (and erase the map entry).
    auto handler = sub->second.on_event;
    const std::string service_id = sub->second.service_id;
    respond(http::Response::make(200, "OK", ""));
    if (handler) handler(service_id, event, payload);
  });
  notify_server_ = std::move(server);
  return Status::ok();
}

void ControlPoint::subscribe(const ServiceDescription& service,
                             EventFn on_event, SubscribeDoneFn done) {
  if (auto status = ensure_notify_server(); !status.is_ok()) {
    done(status);
    return;
  }
  http::Request req;
  req.method = "SUBSCRIBE";
  req.target = "/gena/" + service.service_id;
  req.set_header("CALLBACK", "<http://node-" + std::to_string(node_) + ":" +
                                 std::to_string(notify_port_) + "/notify>");
  http_.request(service.control, std::move(req),
                [this, service_id = service.service_id,
                 on_event = std::move(on_event),
                 done = std::move(done)](Result<http::Response> r) mutable {
                  if (!r.is_ok()) {
                    done(r.status());
                    return;
                  }
                  const std::string* sid = r.value().header("SID");
                  if (r.value().status != 200 || sid == nullptr) {
                    done(protocol_error("SUBSCRIBE rejected: " +
                                        r.value().reason));
                    return;
                  }
                  gena_subs_[*sid] = GenaSub{service_id, std::move(on_event)};
                  done(*sid);
                });
}

void ControlPoint::unsubscribe(const ServiceDescription& service,
                               const std::string& sid) {
  gena_subs_.erase(sid);
  http::Request req;
  req.method = "UNSUBSCRIBE";
  req.target = "/gena/" + service.service_id;
  req.set_header("SID", sid);
  http_.request(service.control, std::move(req),
                [](Result<http::Response>) {});
}

void ControlPoint::invoke(const ServiceDescription& service,
                          const std::string& action, const ValueList& args,
                          InvokeResultFn done) {
  const MethodDesc* desc = service.interface.find_method(action);
  if (desc == nullptr) {
    done(not_found("service has no action " + action));
    return;
  }
  if (auto status = check_args(*desc, args); !status.is_ok()) {
    done(status);
    return;
  }
  soap::NamedValues params;
  for (std::size_t i = 0; i < args.size(); ++i) {
    params.emplace_back(desc->params[i].name, args[i]);
  }
  soap_.call(service.control, service.control_path,
             "urn:hcm:" + service.interface.name, action, params,
             std::move(done));
}

}  // namespace hcm::upnp
