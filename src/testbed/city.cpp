#include "testbed/city.hpp"

#include <string>

namespace hcm::testbed {

namespace {
constexpr std::uint16_t kGatewayHttpPort = 8080;
constexpr std::uint16_t kReportPort = 7000;
constexpr std::uint16_t kDevicePort = 7001;
constexpr const char* kSoapPath = "/vsg";
constexpr const char* kSoapNs = "urn:hcm:city";
}  // namespace

City::City(sim::Scheduler& scheduler, const CityOptions& options)
    : sched(scheduler), net(scheduler), options_(options) {
  build(options);
}

City::City(sim::ShardedKernel& k, const CityOptions& options)
    : kernel(&k), sched(k.shard(0)), net(sched), options_(options) {
  net.set_kernel(kernel);
  kernel->seed(options.seed);
  build(options);
}

void City::build(const CityOptions& options) {
  const sim::ShardId shards = kernel == nullptr ? 1 : kernel->shards();
  on_shard(0, [&] {
    backbone_ = &net.add_ethernet("backbone", options.backbone_latency,
                                  100'000'000);
  });

  islands_.reserve(options.islands);
  for (std::size_t i = 0; i < options.islands; ++i) {
    auto isl = std::make_unique<Island>();
    isl->index = i;
    isl->shard = static_cast<sim::ShardId>(i % shards);
    Island& island = *isl;
    on_shard(island.shard, [&] {
      auto& lan = net.add_ethernet("lan-" + std::to_string(i),
                                   sim::microseconds(100), 100'000'000);
      island.gateway = &net.add_node("gw-" + std::to_string(i));
      net.attach(*island.gateway, lan);
      net.attach(*island.gateway, *backbone_);
      island.http = std::make_unique<http::HttpServer>(
          net, island.gateway->id(), kGatewayHttpPort);
      (void)island.http->start();
      island.service =
          std::make_unique<soap::SoapService>(*island.http, kSoapPath);
      island.service->register_method(
          "report", [&island](const soap::NamedValues&, soap::CallResultFn d) {
            d(Value(static_cast<std::int64_t>(island.index)));
          });
      (void)island.gateway->bind(
          kReportPort,
          [&island](net::Endpoint, const Bytes&) { ++island.reports; });
      island.client =
          std::make_unique<soap::SoapClient>(net, island.gateway->id());
      island.devices.reserve(options.devices_per_island);
      for (std::size_t d = 0; d < options.devices_per_island; ++d) {
        auto& dev = net.add_node("dev-" + std::to_string(i) + "-" +
                                 std::to_string(d));
        net.attach(dev, lan);
        island.devices.push_back(dev.id());
        ++device_count_;
      }
    });
    islands_.push_back(std::move(isl));
  }
  const std::size_t n = islands_.size();
  for (std::size_t i = 0; i < n; ++i) {
    islands_[i]->neighbor = {islands_[(i + 1) % n]->gateway->id(),
                             kGatewayHttpPort};
  }
  if (kernel != nullptr) {
    const sim::Duration min_latency = net.min_cross_shard_latency();
    if (min_latency > 0) kernel->set_lookahead(min_latency);
  }
}

void City::start() {
  for (auto& isl : islands_) {
    Island& island = *isl;
    on_shard(island.shard, [&] {
      auto& shard_sched = net.scheduler();
      for (std::size_t d = 0; d < island.devices.size(); ++d) {
        // Index-derived phases spread the fleet across the period
        // deterministically (no RNG involved in the tick grid).
        const sim::Duration phase = static_cast<sim::Duration>(
            (island.index * 131 + d * 17) % options_.device_period + 1);
        shard_sched.after(phase, [this, &island, d] {
          tick_device(island, d, options_.device_period);
        });
      }
      const sim::Duration ring_phase = static_cast<sim::Duration>(
          (island.index * 197) % options_.ring_period + 1);
      shard_sched.after(ring_phase, [this, &island] {
        ring_call(island, options_.ring_period);
      });
    });
  }
}

void City::tick_device(Island& isl, std::size_t dev, sim::Duration period) {
  const Bytes payload{0x01, static_cast<std::uint8_t>(isl.index & 0xff),
                      static_cast<std::uint8_t>(dev & 0xff)};
  net.send_datagram({isl.devices[dev], kDevicePort},
                    {isl.gateway->id(), kReportPort}, payload);
  net.scheduler().after(period, [this, &isl, dev, period] {
    tick_device(isl, dev, period);
  });
}

void City::ring_call(Island& isl, sim::Duration period) {
  isl.client->call(isl.neighbor, kSoapPath, kSoapNs, "report",
                   {{"island", Value(static_cast<std::int64_t>(isl.index))}},
                   [&isl](Result<Value> r) {
                     if (r.is_ok()) ++isl.ring_ok;
                   });
  net.scheduler().after(period,
                        [this, &isl, period] { ring_call(isl, period); });
}

std::uint64_t City::reports_received() const {
  std::uint64_t total = 0;
  for (const auto& isl : islands_) total += isl->reports;
  return total;
}

std::uint64_t City::ring_calls_ok() const {
  std::uint64_t total = 0;
  for (const auto& isl : islands_) total += isl->ring_ok;
  return total;
}

}  // namespace hcm::testbed
