#include "testbed/home.hpp"

namespace hcm::testbed {

namespace {
// The interface remote event listeners export (mirrors jini::LookupService).
InterfaceDesc listener_interface() {
  return InterfaceDesc{
      "RemoteEventListener",
      {MethodDesc{"serviceEvent",
                  {{"type", ValueType::kString}, {"item", ValueType::kMap}},
                  ValueType::kNull,
                  true}}};
}
}  // namespace

InterfaceDesc LaserdiscPlayer::describe_interface() {
  InterfaceDesc iface{
      "MediaPlayer",
      {
          MethodDesc{"turnOn", {}, ValueType::kBool, false},
          MethodDesc{"turnOff", {}, ValueType::kBool, false},
          MethodDesc{"play", {}, ValueType::kBool, false},
          MethodDesc{"stop", {}, ValueType::kBool, false},
          MethodDesc{"getStatus", {}, ValueType::kMap, false},
          // Jini remote-event registration (RemoteEventListener model).
          MethodDesc{"notify",
                     {{"node", ValueType::kInt},
                      {"port", ValueType::kInt},
                      {"listener", ValueType::kString}},
                     ValueType::kInt,
                     false},
          MethodDesc{"cancelNotify",
                     {{"id", ValueType::kInt}},
                     ValueType::kBool,
                     false},
      }};
  iface.events.push_back(MethodDesc{"statusChanged",
                                    {{"powered", ValueType::kBool},
                                     {"playing", ValueType::kBool}},
                                    ValueType::kNull,
                                    true});
  return iface;
}

LaserdiscPlayer::LaserdiscPlayer(net::Network& net, net::NodeId node,
                                 net::Endpoint lookup_endpoint)
    : net_(net), node_(node), exporter_(net, node, 4170) {
  (void)exporter_.start();
  exporter_.export_object(
      "laserdisc-1",
      [this](const std::string& method, const ValueList& args,
             InvokeResultFn done) { handle(method, args, done); });
  jini::ServiceItem item;
  item.service_id = "laserdisc-1";
  item.name = "laserdisc-1";
  item.interface = describe_interface();
  item.endpoint = exporter_.endpoint();
  item.attributes = ValueMap{{"vendor", Value("pioneer")}};
  registrar_ = std::make_unique<jini::Registrar>(net, node, lookup_endpoint,
                                                 std::move(item));
  registrar_->join([](const Status&) {});
}

void LaserdiscPlayer::handle(const std::string& method, const ValueList& args,
                             InvokeResultFn done) {
  ++commands_;
  if (method == "turnOn") {
    powered_ = true;
    fire_status_changed();
    return done(Value(true));
  }
  if (method == "turnOff") {
    powered_ = false;
    playing_ = false;
    fire_status_changed();
    return done(Value(true));
  }
  if (method == "play") {
    if (!powered_) return done(unavailable("laserdisc is powered off"));
    playing_ = true;
    fire_status_changed();
    return done(Value(true));
  }
  if (method == "stop") {
    playing_ = false;
    fire_status_changed();
    return done(Value(true));
  }
  if (method == "notify") {
    if (args.size() != 3 || !args[0].is_int() || !args[1].is_int() ||
        !args[2].is_string()) {
      return done(invalid_argument("notify(node, port, listener_id)"));
    }
    jini::ServiceItem item;
    item.service_id = args[2].as_string();
    item.name = "listener";
    item.interface = listener_interface();
    item.endpoint = {static_cast<net::NodeId>(args[0].as_int()),
                     static_cast<std::uint16_t>(args[1].as_int())};
    auto id = next_listener_++;
    listeners_[id] =
        std::make_unique<jini::Proxy>(net_, node_, std::move(item));
    return done(Value(id));
  }
  if (method == "cancelNotify") {
    if (args.size() != 1 || !args[0].is_int()) {
      return done(invalid_argument("cancelNotify(id)"));
    }
    return done(Value(listeners_.erase(args[0].as_int()) > 0));
  }
  if (method == "getStatus") {
    return done(Value(ValueMap{
        {"powered", Value(powered_)},
        {"playing", Value(playing_)},
    }));
  }
  done(not_found("laserdisc has no method " + method));
}

void LaserdiscPlayer::fire_status_changed() {
  for (auto& [id, listener] : listeners_) {
    (void)listener->invoke_one_way(
        "serviceEvent", {Value(std::string("statusChanged")),
                         Value(ValueMap{{"powered", Value(powered_)},
                                        {"playing", Value(playing_)}})});
  }
}

SmartHome::SmartHome(sim::Scheduler& scheduler,
                     const SmartHomeOptions& options)
    : sched(scheduler), net(scheduler) {
  build(options);
}

SmartHome::SmartHome(const SmartHomeOptions& options)
    : owned_kernel(std::make_unique<sim::ShardedKernel>(
          sim::ShardedKernelOptions{options.shards})),
      kernel(owned_kernel.get()),
      sched(kernel->shard(0)),
      net(sched) {
  net.set_kernel(kernel);
  build(options);
}

SmartHome::SmartHome(sim::ShardedKernel& k, const SmartHomeOptions& options)
    : kernel(&k), sched(k.shard(0)), net(sched) {
  net.set_kernel(kernel);
  build(options);
}

void SmartHome::build(const SmartHomeOptions& options) {
  const sim::ShardId jini_shard = shard_for_island(0);
  const sim::ShardId havi_shard = shard_for_island(1);
  const sim::ShardId x10_shard = shard_for_island(2);
  const sim::ShardId mail_shard = shard_for_island(3);
  island_shards = {{"jini-island", jini_shard},
                   {"havi-island", havi_shard},
                   {"x10-island", x10_shard},
                   {"mail-island", mail_shard}};

  // --- backbone + VSR (shard 0) -----------------------------------------
  on_shard(0, [&] {
    backbone = &net.add_ethernet("backbone", sim::milliseconds(5), 10'000'000);
    vsr_node = &net.add_node("vsr-host");
    net.attach(*vsr_node, *backbone);
    vsr = std::make_unique<core::VsrServer>(
        net, vsr_node->id(), 8000, soap::UddiRegistry::kDefaultJournalCapacity,
        options.store_dir);
    (void)vsr->start();
  });

  // --- Jini island --------------------------------------------------------
  // Each island block runs bound to its shard: nodes auto-place there
  // and every timer/stream the island objects create at construction
  // lands on the island's own slab. Only the backbone spans shards, so
  // its 5 ms latency is the conservative lookahead.
  on_shard(jini_shard, [&] {
    jini_lan =
        &net.add_ethernet("jini-lan", sim::microseconds(200), 100'000'000);
    jini_gw = &net.add_node("jini-gw");
    lookup_node = &net.add_node("jini-lookup");
    laserdisc_node = &net.add_node("laserdisc");
    net.attach(*jini_gw, *jini_lan);
    net.attach(*jini_gw, *backbone);
    net.attach(*lookup_node, *jini_lan);
    net.attach(*laserdisc_node, *jini_lan);
    lookup = std::make_unique<jini::LookupService>(net, lookup_node->id());
    (void)lookup->start();
    laserdisc = std::make_unique<LaserdiscPlayer>(net, laserdisc_node->id(),
                                                  lookup->endpoint());
  });

  // --- HAVi island --------------------------------------------------------
  on_shard(havi_shard, [&] {
    firewire = &net.add_ieee1394("firewire");
    havi_gw = &net.add_node("havi-gw");
    vcr_node = &net.add_node("d-vhs");
    camera_node = &net.add_node("dv-camera");
    net.attach(*havi_gw, *firewire);
    net.attach(*havi_gw, *backbone);
    net.attach(*vcr_node, *firewire);
    net.attach(*camera_node, *firewire);
    fav = std::make_unique<havi::FavController>(net, havi_gw->id(), *firewire);

    vcr_ms = std::make_unique<havi::MessagingSystem>(net, vcr_node->id());
    (void)vcr_ms->start();
    vcr_dcm = std::make_unique<havi::Dcm>(*vcr_ms, "huid-dvhs", "D-VHS deck");
    {
      auto fcm = std::make_unique<havi::VcrFcm>(*vcr_ms, *firewire,
                                                "huid-dvhs-t", "vcr-1");
      vcr = fcm.get();
      vcr_dcm->add_fcm(std::move(fcm));
      vcr->set_event_manager(fav->event_manager.seid());
      auto tuner_fcm = std::make_unique<havi::TunerFcm>(
          *vcr_ms, *firewire, "huid-dvhs-u", "tuner-1");
      tuner = tuner_fcm.get();
      vcr_dcm->add_fcm(std::move(tuner_fcm));
    }

    camera_ms = std::make_unique<havi::MessagingSystem>(net, camera_node->id());
    (void)camera_ms->start();
    camera_dcm =
        std::make_unique<havi::Dcm>(*camera_ms, "huid-cam", "DV camera");
    {
      auto fcm = std::make_unique<havi::DvCameraFcm>(*camera_ms, *firewire,
                                                     "huid-cam-c", "camera-1");
      camera = fcm.get();
      camera_dcm->add_fcm(std::move(fcm));
      auto display_fcm = std::make_unique<havi::DisplayFcm>(
          *camera_ms, *firewire, "huid-cam-d", "display-1");
      display = display_fcm.get();
      camera_dcm->add_fcm(std::move(display_fcm));
    }

    {
      havi::RegistryClient vcr_rc(*vcr_ms, vcr_dcm->seid(),
                                  fav->registry.seid());
      havi::RegistryClient cam_rc(*camera_ms, camera_dcm->seid(),
                                  fav->registry.seid());
      vcr_dcm->announce(vcr_rc, [](const Status&) {});
      camera_dcm->announce(cam_rc, [](const Status&) {});
    }
  });

  // --- X10 island ---------------------------------------------------------
  on_shard(x10_shard, [&] {
    powerline = &net.add_powerline("powerline");
    x10_gw = &net.add_node("x10-gw");
    lamp_node = &net.add_node("desk-lamp");
    fan_node = &net.add_node("ceiling-fan");
    sensor_node = &net.add_node("motion-sensor");
    remote_node = &net.add_node("x10-remote");
    net.attach(*x10_gw, *powerline);
    net.attach(*x10_gw, *backbone);
    net.attach(*lamp_node, *powerline);
    net.attach(*fan_node, *powerline);
    net.attach(*sensor_node, *powerline);
    net.attach(*remote_node, *powerline);
    cm11a = std::make_unique<x10::Cm11aController>(net, x10_gw->id(),
                                                   *powerline);
    lamp = std::make_unique<x10::LampModule>(net, lamp_node->id(), *powerline,
                                             x10::HouseCode::kA, 1);
    fan = std::make_unique<x10::ApplianceModule>(
        net, fan_node->id(), *powerline, x10::HouseCode::kA, 2);
    motion_sensor = std::make_unique<x10::MotionSensor>(
        net, sensor_node->id(), *powerline, x10::HouseCode::kA, 5);
    remote = std::make_unique<x10::RemoteControl>(
        net, remote_node->id(), *powerline, x10::HouseCode::kP);
  });

  // --- Mail island --------------------------------------------------------
  if (options.include_mail_island) {
    on_shard(mail_shard, [&] {
      mail_node = &net.add_node("mail-host");
      mail_gw = &net.add_node("mail-gw");
      net.attach(*mail_node, *backbone);
      net.attach(*mail_gw, *backbone);
      mail_server = std::make_unique<mail::MailServer>(net, mail_node->id());
      (void)mail_server->start();
    });
  }

  // --- meta-middleware ---------------------------------------------------
  on_shard(0, [&] {
    meta = std::make_unique<core::MetaMiddleware>(net, vsr->endpoint());
  });

  on_shard(jini_shard, [&] {
    auto adapter = std::make_unique<core::JiniAdapter>(net, jini_gw->id(),
                                                       lookup->endpoint());
    (void)adapter->start();
    jini_adapter = adapter.get();
    (void)meta->add_island("jini-island", jini_gw->id(), std::move(adapter),
                           options.protocol);
  });
  on_shard(havi_shard, [&] {
    auto adapter = std::make_unique<core::HaviAdapter>(fav->messaging,
                                                       fav->registry.seid());
    havi_adapter = adapter.get();
    (void)meta->add_island("havi-island", havi_gw->id(), std::move(adapter),
                           options.protocol);
  });
  on_shard(x10_shard, [&] {
    std::vector<core::X10DeviceConfig> devices{
        {"desk-lamp", x10::HouseCode::kA, 1, /*dimmable=*/true},
        {"ceiling-fan", x10::HouseCode::kA, 2, /*dimmable=*/false},
    };
    auto adapter = std::make_unique<core::X10Adapter>(
        net, *cm11a, std::move(devices), x10::HouseCode::kP);
    x10_adapter = adapter.get();
    (void)meta->add_island("x10-island", x10_gw->id(), std::move(adapter),
                           options.protocol);
  });
  if (options.include_mail_island) {
    on_shard(mail_shard, [&] {
      auto adapter = std::make_unique<core::MailAdapter>(
          net, mail_gw->id(), mail_node->id(), "home", options.mail_poll);
      mail_adapter = adapter.get();
      (void)meta->add_island("mail-island", mail_gw->id(), std::move(adapter),
                             options.protocol);
    });
  }

  // Let announcements, registrations and lease joins settle (bounded:
  // lease renewal is periodic, so the queue never empties).
  if (kernel != nullptr) {
    const sim::Duration min_latency = net.min_cross_shard_latency();
    if (min_latency > 0) kernel->set_lookahead(min_latency);
    kernel->run_for(sim::seconds(2));
  } else {
    sched.run_for(sim::seconds(2));
  }
}

Status SmartHome::refresh() {
  std::optional<Status> result;
  if (kernel != nullptr) {
    kernel->run_as(0, [&] {
      meta->refresh_all([&](const Status& s) { result = s; });
    });
    kernel->run_until_done([&] { return result.has_value(); });
  } else {
    meta->refresh_all([&](const Status& s) { result = s; });
    sim::run_until_done(sched, [&] { return result.has_value(); });
  }
  return result.value_or(internal_error("refresh did not complete"));
}

}  // namespace hcm::testbed
