// City testbed: the ROADMAP scale shape — N middleware islands (one
// LAN + gateway + device fleet each) bridged over one backbone — built
// directly on the VSG wire mechanics (SOAP over HTTP over streams) so
// a 1,000-island / 100k-device city stays affordable to construct.
// Island i is placed on shard i % shards; only the backbone spans
// shards, so its latency is the conservative-window lookahead.
//
// Traffic, all index-derived and therefore deterministic:
//   - every device ticks a datagram report to its gateway each
//     device_period (phase spread by island/device index),
//   - every gateway periodically SOAP-calls its ring neighbor
//     (i+1) % islands — the cross-shard backbone traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "http/server.hpp"
#include "net/network.hpp"
#include "sim/sharded_kernel.hpp"
#include "soap/rpc.hpp"

namespace hcm::testbed {

struct CityOptions {
  std::size_t islands = 4;
  std::size_t devices_per_island = 8;
  sim::Duration device_period = sim::milliseconds(500);
  sim::Duration backbone_latency = sim::milliseconds(5);
  sim::Duration ring_period = sim::milliseconds(750);
  std::uint64_t seed = 42;
};

class City {
 public:
  // Legacy single-threaded city.
  City(sim::Scheduler& sched, const CityOptions& options);
  // Sharded city over a caller-owned (freshly constructed) kernel.
  City(sim::ShardedKernel& kernel, const CityOptions& options);
  City(const City&) = delete;
  City& operator=(const City&) = delete;

  // Kicks off the device ticks and ring calls (idempotent-free: call
  // once, before running the kernel/scheduler).
  void start();

  [[nodiscard]] std::size_t islands() const { return islands_.size(); }
  [[nodiscard]] std::size_t device_count() const { return device_count_; }
  // Aggregates across islands — read only while the kernel is parked.
  [[nodiscard]] std::uint64_t reports_received() const;
  [[nodiscard]] std::uint64_t ring_calls_ok() const;

  sim::ShardedKernel* kernel = nullptr;  // null in legacy mode
  sim::Scheduler& sched;
  net::Network net;

 private:
  struct Island {
    std::size_t index = 0;
    sim::ShardId shard = 0;
    net::Node* gateway = nullptr;
    net::Endpoint neighbor{};  // ring target (gateway of (i+1) % n)
    std::unique_ptr<http::HttpServer> http;
    std::unique_ptr<soap::SoapService> service;
    std::unique_ptr<soap::SoapClient> client;
    std::vector<net::NodeId> devices;
    // Owner-shard counters (only the island's shard touches them).
    std::uint64_t reports = 0;
    std::uint64_t ring_ok = 0;
  };

  void build(const CityOptions& options);
  void tick_device(Island& isl, std::size_t dev, sim::Duration period);
  void ring_call(Island& isl, sim::Duration period);
  template <typename Fn>
  void on_shard(sim::ShardId s, Fn&& fn) {
    if (kernel == nullptr) {
      fn();
    } else {
      kernel->run_as(s, std::forward<Fn>(fn));
    }
  }

  CityOptions options_;
  std::size_t device_count_ = 0;
  net::EthernetSegment* backbone_ = nullptr;
  std::vector<std::unique_ptr<Island>> islands_;
};

}  // namespace hcm::testbed
