// The canonical simulated smart home — the paper's Figure 3 topology:
// a Jini island on Ethernet (laserdisc player, lookup service), a HAVi
// island on IEEE1394 (VCR, DV camera, display, tuner behind a FAV
// controller), an X10 island on the powerline (lamp, fan, motion
// sensor, hand-held remote), an Internet mail service, and the meta-
// middleware (VSR + one VSG/PCM per island) connecting them. Tests,
// benches and examples all build on this so the topology is stated once.
#pragma once

#include <map>
#include <memory>

#include "core/adapters/havi_adapter.hpp"
#include "core/adapters/jini_adapter.hpp"
#include "core/adapters/mail_adapter.hpp"
#include "core/adapters/x10_adapter.hpp"
#include "core/meta.hpp"
#include "havi/dcm.hpp"
#include "havi/fcm_av.hpp"
#include "jini/lookup.hpp"
#include "jini/proxy.hpp"
#include "jini/registrar.hpp"
#include "mail/mail.hpp"
#include "sim/sharded_kernel.hpp"
#include "x10/cm11a.hpp"
#include "x10/device.hpp"

namespace hcm::testbed {

// The Jini-native laserdisc player of Fig. 5 ("controlling a Jini
// Laserdisc with an X10 remote controller"). Besides its control
// methods it supports Jini remote events: notify(node, port, listener)
// registers a RemoteEventListener that receives serviceEvent
// ("statusChanged", {powered, playing}) on every state change.
class LaserdiscPlayer {
 public:
  LaserdiscPlayer(net::Network& net, net::NodeId node,
                  net::Endpoint lookup_endpoint);

  static InterfaceDesc describe_interface();

  [[nodiscard]] bool powered() const { return powered_; }
  [[nodiscard]] bool playing() const { return playing_; }
  [[nodiscard]] std::uint64_t commands() const { return commands_; }
  [[nodiscard]] std::size_t listener_count() const {
    return listeners_.size();
  }

 private:
  void handle(const std::string& method, const ValueList& args,
              InvokeResultFn done);
  void fire_status_changed();

  net::Network& net_;
  net::NodeId node_;
  jini::Exporter exporter_;
  std::unique_ptr<jini::Registrar> registrar_;
  bool powered_ = false;
  bool playing_ = false;
  std::uint64_t commands_ = 0;
  std::map<std::int64_t, std::unique_ptr<jini::Proxy>> listeners_;
  std::int64_t next_listener_ = 1;
};

struct SmartHomeOptions {
  core::VsgProtocol protocol = core::VsgProtocol::kSoap;
  bool include_mail_island = true;
  sim::Duration mail_poll = sim::seconds(5);
  // Non-empty: the VSR persists to this directory (store::VsrStore) and
  // a SmartHome constructed over the same directory resumes the
  // registry's previous epoch/sequence. See docs/PERSISTENCE.md.
  std::string store_dir;
  // Worker shards for the kernel-owning constructor. 1 keeps today's
  // single-threaded behavior (byte-identical traces); islands are
  // spread across shards (i+1) % shards with the backbone + VSR on
  // shard 0, so the 5 ms backbone latency is the lookahead.
  sim::ShardId shards = 1;
};

class SmartHome {
 public:
  explicit SmartHome(sim::Scheduler& sched)
      : SmartHome(sched, SmartHomeOptions{}) {}
  // Legacy single-scheduler home (options.shards ignored; no kernel).
  SmartHome(sim::Scheduler& sched, const SmartHomeOptions& options);
  // Home that owns a sharded kernel with options.shards shards.
  explicit SmartHome(const SmartHomeOptions& options);
  // Home over a caller-owned kernel (must be freshly constructed).
  SmartHome(sim::ShardedKernel& kernel, const SmartHomeOptions& options = {});
  SmartHome(const SmartHome&) = delete;
  SmartHome& operator=(const SmartHome&) = delete;

  // Runs meta.refresh_all and drains the scheduler/kernel; returns its
  // status.
  Status refresh();

  // Shard hosting an island's gateway ("jini-island" etc.); 0 when not
  // sharded.
  [[nodiscard]] sim::ShardId island_shard(const std::string& name) const {
    auto it = island_shards.find(name);
    return it == island_shards.end() ? 0 : it->second;
  }

  // Declared before sched/net: both bind to shard 0 of the owned
  // kernel when one exists.
  std::unique_ptr<sim::ShardedKernel> owned_kernel;
  sim::ShardedKernel* kernel = nullptr;  // null in pure legacy mode
  sim::Scheduler& sched;
  net::Network net;
  std::map<std::string, sim::ShardId> island_shards;

  // --- backbone + VSR ---------------------------------------------------
  net::EthernetSegment* backbone = nullptr;
  net::Node* vsr_node = nullptr;
  std::unique_ptr<core::VsrServer> vsr;

  // --- Jini island --------------------------------------------------------
  net::EthernetSegment* jini_lan = nullptr;
  net::Node* jini_gw = nullptr;
  net::Node* lookup_node = nullptr;
  net::Node* laserdisc_node = nullptr;
  std::unique_ptr<jini::LookupService> lookup;
  std::unique_ptr<LaserdiscPlayer> laserdisc;

  // --- HAVi island ----------------------------------------------------------
  net::Ieee1394Bus* firewire = nullptr;
  net::Node* havi_gw = nullptr;   // also the FAV controller
  net::Node* vcr_node = nullptr;
  net::Node* camera_node = nullptr;
  std::unique_ptr<havi::FavController> fav;
  std::unique_ptr<havi::MessagingSystem> vcr_ms;
  std::unique_ptr<havi::MessagingSystem> camera_ms;
  std::unique_ptr<havi::Dcm> vcr_dcm;
  std::unique_ptr<havi::Dcm> camera_dcm;
  havi::VcrFcm* vcr = nullptr;
  havi::DvCameraFcm* camera = nullptr;
  havi::DisplayFcm* display = nullptr;
  havi::TunerFcm* tuner = nullptr;

  // --- X10 island ---------------------------------------------------------
  net::PowerlineSegment* powerline = nullptr;
  net::Node* x10_gw = nullptr;
  net::Node* lamp_node = nullptr;
  net::Node* fan_node = nullptr;
  net::Node* sensor_node = nullptr;
  net::Node* remote_node = nullptr;
  std::unique_ptr<x10::Cm11aController> cm11a;
  std::unique_ptr<x10::LampModule> lamp;
  std::unique_ptr<x10::ApplianceModule> fan;
  std::unique_ptr<x10::MotionSensor> motion_sensor;
  std::unique_ptr<x10::RemoteControl> remote;

  // --- Mail island -----------------------------------------------------------
  net::Node* mail_node = nullptr;
  net::Node* mail_gw = nullptr;
  std::unique_ptr<mail::MailServer> mail_server;

  // --- meta-middleware ---------------------------------------------------
  std::unique_ptr<core::MetaMiddleware> meta;
  // Raw adapter handles (owned by the PCMs inside meta).
  core::JiniAdapter* jini_adapter = nullptr;
  core::HaviAdapter* havi_adapter = nullptr;
  core::X10Adapter* x10_adapter = nullptr;
  core::MailAdapter* mail_adapter = nullptr;

 private:
  void build(const SmartHomeOptions& options);
  [[nodiscard]] sim::ShardId shard_for_island(std::size_t idx) const {
    const sim::ShardId n = kernel == nullptr ? 1 : kernel->shards();
    return n == 1 ? 0 : static_cast<sim::ShardId>((idx + 1) % n);
  }
  // Bind construction-time code to an island's shard so the objects'
  // timers and sends land on their own slab; identity when unsharded.
  template <typename Fn>
  void on_shard(sim::ShardId s, Fn&& fn) {
    if (kernel == nullptr) {
      fn();
    } else {
      kernel->run_as(s, std::forward<Fn>(fn));
    }
  }
};

}  // namespace hcm::testbed
