// The canonical simulated smart home — the paper's Figure 3 topology:
// a Jini island on Ethernet (laserdisc player, lookup service), a HAVi
// island on IEEE1394 (VCR, DV camera, display, tuner behind a FAV
// controller), an X10 island on the powerline (lamp, fan, motion
// sensor, hand-held remote), an Internet mail service, and the meta-
// middleware (VSR + one VSG/PCM per island) connecting them. Tests,
// benches and examples all build on this so the topology is stated once.
#pragma once

#include <map>
#include <memory>

#include "core/adapters/havi_adapter.hpp"
#include "core/adapters/jini_adapter.hpp"
#include "core/adapters/mail_adapter.hpp"
#include "core/adapters/x10_adapter.hpp"
#include "core/meta.hpp"
#include "havi/dcm.hpp"
#include "havi/fcm_av.hpp"
#include "jini/lookup.hpp"
#include "jini/proxy.hpp"
#include "jini/registrar.hpp"
#include "mail/mail.hpp"
#include "x10/cm11a.hpp"
#include "x10/device.hpp"

namespace hcm::testbed {

// The Jini-native laserdisc player of Fig. 5 ("controlling a Jini
// Laserdisc with an X10 remote controller"). Besides its control
// methods it supports Jini remote events: notify(node, port, listener)
// registers a RemoteEventListener that receives serviceEvent
// ("statusChanged", {powered, playing}) on every state change.
class LaserdiscPlayer {
 public:
  LaserdiscPlayer(net::Network& net, net::NodeId node,
                  net::Endpoint lookup_endpoint);

  static InterfaceDesc describe_interface();

  [[nodiscard]] bool powered() const { return powered_; }
  [[nodiscard]] bool playing() const { return playing_; }
  [[nodiscard]] std::uint64_t commands() const { return commands_; }
  [[nodiscard]] std::size_t listener_count() const {
    return listeners_.size();
  }

 private:
  void handle(const std::string& method, const ValueList& args,
              InvokeResultFn done);
  void fire_status_changed();

  net::Network& net_;
  net::NodeId node_;
  jini::Exporter exporter_;
  std::unique_ptr<jini::Registrar> registrar_;
  bool powered_ = false;
  bool playing_ = false;
  std::uint64_t commands_ = 0;
  std::map<std::int64_t, std::unique_ptr<jini::Proxy>> listeners_;
  std::int64_t next_listener_ = 1;
};

struct SmartHomeOptions {
  core::VsgProtocol protocol = core::VsgProtocol::kSoap;
  bool include_mail_island = true;
  sim::Duration mail_poll = sim::seconds(5);
  // Non-empty: the VSR persists to this directory (store::VsrStore) and
  // a SmartHome constructed over the same directory resumes the
  // registry's previous epoch/sequence. See docs/PERSISTENCE.md.
  std::string store_dir;
};

class SmartHome {
 public:
  explicit SmartHome(sim::Scheduler& sched)
      : SmartHome(sched, SmartHomeOptions{}) {}
  SmartHome(sim::Scheduler& sched, const SmartHomeOptions& options);
  SmartHome(const SmartHome&) = delete;
  SmartHome& operator=(const SmartHome&) = delete;

  // Runs meta.refresh_all and drains the scheduler; returns its status.
  Status refresh();

  sim::Scheduler& sched;
  net::Network net;

  // --- backbone + VSR ---------------------------------------------------
  net::EthernetSegment* backbone = nullptr;
  net::Node* vsr_node = nullptr;
  std::unique_ptr<core::VsrServer> vsr;

  // --- Jini island --------------------------------------------------------
  net::EthernetSegment* jini_lan = nullptr;
  net::Node* jini_gw = nullptr;
  net::Node* lookup_node = nullptr;
  net::Node* laserdisc_node = nullptr;
  std::unique_ptr<jini::LookupService> lookup;
  std::unique_ptr<LaserdiscPlayer> laserdisc;

  // --- HAVi island ----------------------------------------------------------
  net::Ieee1394Bus* firewire = nullptr;
  net::Node* havi_gw = nullptr;   // also the FAV controller
  net::Node* vcr_node = nullptr;
  net::Node* camera_node = nullptr;
  std::unique_ptr<havi::FavController> fav;
  std::unique_ptr<havi::MessagingSystem> vcr_ms;
  std::unique_ptr<havi::MessagingSystem> camera_ms;
  std::unique_ptr<havi::Dcm> vcr_dcm;
  std::unique_ptr<havi::Dcm> camera_dcm;
  havi::VcrFcm* vcr = nullptr;
  havi::DvCameraFcm* camera = nullptr;
  havi::DisplayFcm* display = nullptr;
  havi::TunerFcm* tuner = nullptr;

  // --- X10 island ---------------------------------------------------------
  net::PowerlineSegment* powerline = nullptr;
  net::Node* x10_gw = nullptr;
  net::Node* lamp_node = nullptr;
  net::Node* fan_node = nullptr;
  net::Node* sensor_node = nullptr;
  net::Node* remote_node = nullptr;
  std::unique_ptr<x10::Cm11aController> cm11a;
  std::unique_ptr<x10::LampModule> lamp;
  std::unique_ptr<x10::ApplianceModule> fan;
  std::unique_ptr<x10::MotionSensor> motion_sensor;
  std::unique_ptr<x10::RemoteControl> remote;

  // --- Mail island -----------------------------------------------------------
  net::Node* mail_node = nullptr;
  net::Node* mail_gw = nullptr;
  std::unique_ptr<mail::MailServer> mail_server;

  // --- meta-middleware ---------------------------------------------------
  std::unique_ptr<core::MetaMiddleware> meta;
  // Raw adapter handles (owned by the PCMs inside meta).
  core::JiniAdapter* jini_adapter = nullptr;
  core::HaviAdapter* havi_adapter = nullptr;
  core::X10Adapter* x10_adapter = nullptr;
  core::MailAdapter* mail_adapter = nullptr;
};

}  // namespace hcm::testbed
