#include "jini/registrar.hpp"

namespace hcm::jini {

InterfaceDesc lookup_interface() {
  return InterfaceDesc{
      "LookupService",
      {
          MethodDesc{"register",
                     {{"item", ValueType::kMap}, {"lease", ValueType::kInt}},
                     ValueType::kMap,
                     false},
          MethodDesc{"renew",
                     {{"lease", ValueType::kString},
                      {"duration", ValueType::kInt}},
                     ValueType::kInt,
                     false},
          MethodDesc{"cancel", {{"lease", ValueType::kString}},
                     ValueType::kBool, false},
          MethodDesc{"lookup",
                     {{"iface", ValueType::kString},
                      {"attrs", ValueType::kMap}},
                     ValueType::kList,
                     false},
          MethodDesc{"notify",
                     {{"node", ValueType::kInt},
                      {"port", ValueType::kInt},
                      {"listener", ValueType::kString}},
                     ValueType::kInt,
                     false},
      }};
}

std::unique_ptr<Proxy> lookup_proxy(net::Network& net, net::NodeId node,
                                    net::Endpoint endpoint) {
  ServiceItem item;
  item.service_id = "lookup";
  item.name = "lookup";
  item.interface = lookup_interface();
  item.endpoint = endpoint;
  return std::make_unique<Proxy>(net, node, std::move(item));
}

void LookupClient::lookup(const std::string& iface, const ValueMap& attrs,
                          ItemsFn done) {
  proxy_->invoke("lookup", {Value(iface), Value(attrs)},
                 [done = std::move(done)](Result<Value> r) {
                   if (!r.is_ok()) {
                     done(r.status());
                     return;
                   }
                   if (!r.value().is_list()) {
                     done(protocol_error("lookup reply is not a list"));
                     return;
                   }
                   std::vector<ServiceItem> items;
                   for (const auto& v : r.value().as_list()) {
                     auto item = ServiceItem::from_value(v);
                     if (!item.is_ok()) {
                       done(item.status());
                       return;
                     }
                     items.push_back(std::move(item).take());
                   }
                   done(std::move(items));
                 });
}

void LookupClient::notify(net::Endpoint listener,
                          const std::string& listener_id,
                          std::function<void(Result<std::int64_t>)> done) {
  proxy_->invoke("notify",
                 {Value(static_cast<std::int64_t>(listener.node)),
                  Value(static_cast<std::int64_t>(listener.port)),
                  Value(listener_id)},
                 [done = std::move(done)](Result<Value> r) {
                   if (!r.is_ok()) {
                     done(r.status());
                     return;
                   }
                   auto id = r.value().to_int();
                   if (!id.is_ok()) {
                     done(protocol_error("bad notify reply"));
                     return;
                   }
                   done(id.value());
                 });
}

Registrar::Registrar(net::Network& net, net::NodeId node, net::Endpoint lookup,
                     ServiceItem item, sim::Duration lease)
    : net_(net),
      proxy_(lookup_proxy(net, node, lookup)),
      item_(std::move(item)),
      lease_(lease) {}

Registrar::~Registrar() {
  if (renew_event_ != 0) net_.scheduler().cancel(renew_event_);
}

void Registrar::join(std::function<void(const Status&)> done) {
  proxy_->invoke(
      "register",
      {item_.to_value(), Value(static_cast<std::int64_t>(lease_))},
      [this, done = std::move(done)](Result<Value> r) {
        if (!r.is_ok()) {
          done(r.status());
          return;
        }
        const Value& grant = r.value();
        if (!grant.at("lease").is_string()) {
          done(protocol_error("bad lease grant"));
          return;
        }
        lease_id_ = grant.at("lease").as_string();
        auto granted = grant.at("duration").to_int();
        schedule_renew(granted.is_ok() ? granted.value() : lease_);
        done(Status::ok());
      });
}

void Registrar::cancel(std::function<void(const Status&)> done) {
  if (!lease_id_) {
    done(Status::ok());
    return;
  }
  if (renew_event_ != 0) {
    net_.scheduler().cancel(renew_event_);
    renew_event_ = 0;
  }
  proxy_->invoke("cancel", {Value(*lease_id_)},
                 [this, done = std::move(done)](Result<Value> r) {
                   lease_id_.reset();
                   done(r.is_ok() ? Status::ok() : r.status());
                 });
}

void Registrar::schedule_renew(sim::Duration granted) {
  // Renew at half-life, the standard lease discipline.
  renew_event_ = net_.scheduler().after(granted / 2, [this] {
    renew_event_ = 0;
    renew();
  });
}

void Registrar::renew() {
  if (!lease_id_) return;
  proxy_->invoke(
      "renew", {Value(*lease_id_), Value(static_cast<std::int64_t>(lease_))},
      [this](Result<Value> r) {
        if (!r.is_ok()) {
          // Lease lost (lookup restarted / partition): re-join from
          // scratch so the service reappears.
          lease_id_.reset();
          join([](const Status&) {});
          return;
        }
        ++renewals_;
        auto granted = r.value().to_int();
        schedule_renew(granted.is_ok() ? granted.value() : lease_);
      });
}

}  // namespace hcm::jini
