#include "jini/lookup.hpp"

#include "common/logging.hpp"

namespace hcm::jini {

namespace {
// The interface remote event listeners must export.
InterfaceDesc listener_interface() {
  return InterfaceDesc{
      "RemoteEventListener",
      {MethodDesc{"serviceEvent",
                  {{"type", ValueType::kString}, {"item", ValueType::kMap}},
                  ValueType::kNull,
                  true}}};
}
}  // namespace

LookupService::LookupService(net::Network& net, net::NodeId node,
                             std::uint16_t port)
    : net_(net), node_(node), exporter_(net, node, port) {}

LookupService::~LookupService() { stop(); }

Status LookupService::start() {
  auto status = exporter_.start();
  if (!status.is_ok()) return status;
  exporter_.export_object(
      "lookup", [this](const std::string& method, const ValueList& args,
                       InvokeResultFn done) { handle(method, args, done); });
  return Status::ok();
}

void LookupService::stop() { exporter_.stop(); }

void LookupService::handle(const std::string& method, const ValueList& args,
                           InvokeResultFn done) {
  if (method == "register") return done(do_register(args));
  if (method == "renew") return done(do_renew(args));
  if (method == "cancel") return done(do_cancel(args));
  if (method == "lookup") return done(do_lookup(args));
  if (method == "notify") return done(do_notify(args));
  done(not_found("lookup service has no method " + method));
}

Result<Value> LookupService::do_register(const ValueList& args) {
  if (args.size() != 2) return invalid_argument("register(item, lease_us)");
  auto item = ServiceItem::from_value(args[0]);
  if (!item.is_ok()) return item.status();
  auto requested = args[1].to_int();
  if (!requested.is_ok()) return invalid_argument("bad lease duration");

  sim::Duration lease = requested.value();
  if (lease <= 0 || lease > kMaxLease) lease = kMaxLease;

  const std::string service_id = item.value().service_id;
  // Re-registration replaces the item and its lease (Jini semantics).
  if (auto it = services_.find(service_id); it != services_.end()) {
    net_.scheduler().cancel(it->second.expiry_event);
    leases_.erase(it->second.lease_id);
    services_.erase(it);
  }

  Registration reg;
  reg.item = std::move(item).take();
  reg.lease_id = "lease-" + std::to_string(next_lease_++);
  reg.expiry_event = net_.scheduler().after(
      lease, [this, lease_id = reg.lease_id] { expire_lease(lease_id); });
  leases_[reg.lease_id] = service_id;
  fire_event(kEventRegistered, reg.item);
  auto lease_id = reg.lease_id;
  services_[service_id] = std::move(reg);
  return Value(ValueMap{
      {"lease", Value(lease_id)},
      {"duration", Value(static_cast<std::int64_t>(lease))},
  });
}

Result<Value> LookupService::do_renew(const ValueList& args) {
  if (args.size() != 2) return invalid_argument("renew(lease, duration_us)");
  if (!args[0].is_string()) return invalid_argument("bad lease id");
  auto it = leases_.find(args[0].as_string());
  if (it == leases_.end()) return not_found("unknown lease (expired?)");
  auto requested = args[1].to_int();
  if (!requested.is_ok()) return invalid_argument("bad lease duration");
  sim::Duration lease = requested.value();
  if (lease <= 0 || lease > kMaxLease) lease = kMaxLease;

  auto& reg = services_.at(it->second);
  net_.scheduler().cancel(reg.expiry_event);
  reg.expiry_event = net_.scheduler().after(
      lease, [this, lease_id = reg.lease_id] { expire_lease(lease_id); });
  return Value(static_cast<std::int64_t>(lease));
}

Result<Value> LookupService::do_cancel(const ValueList& args) {
  if (args.size() != 1 || !args[0].is_string()) {
    return invalid_argument("cancel(lease)");
  }
  auto it = leases_.find(args[0].as_string());
  if (it == leases_.end()) return Value(false);
  remove_service(it->second);
  return Value(true);
}

Result<Value> LookupService::do_lookup(const ValueList& args) {
  if (args.size() != 2) return invalid_argument("lookup(iface, attrs)");
  const std::string iface =
      args[0].is_string() ? args[0].as_string() : "";
  const ValueMap attrs = args[1].is_map() ? args[1].as_map() : ValueMap{};
  ValueList matches;
  for (const auto& [id, reg] : services_) {
    if (!iface.empty() && reg.item.interface.name != iface) continue;
    bool ok = true;
    for (const auto& [k, v] : attrs) {
      auto found = reg.item.attributes.find(k);
      if (found == reg.item.attributes.end() || !(found->second == v)) {
        ok = false;
        break;
      }
    }
    if (ok) matches.push_back(reg.item.to_value());
  }
  return Value(std::move(matches));
}

Result<Value> LookupService::do_notify(const ValueList& args) {
  if (args.size() != 3) {
    return invalid_argument("notify(node, port, listener_id)");
  }
  auto node = args[0].to_int();
  auto port = args[1].to_int();
  if (!node.is_ok() || !port.is_ok() || !args[2].is_string()) {
    return invalid_argument("bad listener endpoint");
  }
  ServiceItem listener_item;
  listener_item.service_id = args[2].as_string();
  listener_item.name = "listener";
  listener_item.interface = listener_interface();
  listener_item.endpoint = {static_cast<net::NodeId>(node.value()),
                            static_cast<std::uint16_t>(port.value())};
  Listener l;
  l.proxy = std::make_unique<Proxy>(net_, node_, std::move(listener_item));
  auto id = next_listener_++;
  listeners_.emplace(id, std::move(l));
  return Value(id);
}

void LookupService::expire_lease(const std::string& lease_id) {
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  log_debug("jini.lookup", "lease expired: ", lease_id);
  remove_service(it->second);
}

void LookupService::remove_service(const std::string& service_id) {
  auto it = services_.find(service_id);
  if (it == services_.end()) return;
  net_.scheduler().cancel(it->second.expiry_event);
  leases_.erase(it->second.lease_id);
  ServiceItem item = std::move(it->second.item);
  services_.erase(it);
  fire_event(kEventRemoved, item);
}

void LookupService::fire_event(const char* type, const ServiceItem& item) {
  ++events_fired_;
  for (auto& [id, listener] : listeners_) {
    listener.proxy->invoke_one_way(
        "serviceEvent", {Value(std::string(type)), item.to_value()});
  }
}

// --- Discovery --------------------------------------------------------

namespace {
constexpr const char* kRequestMagic = "JINI-DISCOVERY-REQUEST";
}  // namespace

DiscoveryResponder::DiscoveryResponder(net::Network& net, net::NodeId node,
                                       net::Endpoint lookup_endpoint)
    : net_(net), node_(node), lookup_endpoint_(lookup_endpoint) {}

Status DiscoveryResponder::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("no such node");
  net_.join_group(node_, kDiscoveryGroup);
  return n->bind(kDiscoveryPort, [this](net::Endpoint from,
                                        const Bytes& data) {
    if (to_string(data) != kRequestMagic) return;
    BufWriter w;
    w.put_u32(lookup_endpoint_.node);
    w.put_u16(lookup_endpoint_.port);
    net_.send_datagram({node_, kDiscoveryPort}, from, w.take());
  });
}

void DiscoveryClient::discover(sim::Duration wait, FoundFn done) {
  net::Node* n = net_.node(node_);
  if (n == nullptr) {
    done({});
    return;
  }
  auto found = std::make_shared<std::vector<net::Endpoint>>();
  const std::uint16_t port = reply_port_++;
  n->bind(port, [found](net::Endpoint, const Bytes& data) {
    BufReader r(data);
    auto node = r.u32();
    auto p = r.u16();
    if (node.is_ok() && p.is_ok()) {
      found->push_back({node.value(), p.value()});
    }
  });
  net_.send_multicast({node_, port}, kDiscoveryGroup, kDiscoveryPort,
                      to_bytes(kRequestMagic));
  net_.scheduler().after(wait, [this, port, found, done = std::move(done)] {
    if (net::Node* node = net_.node(node_)) node->unbind(port);
    done(*found);
  });
}

}  // namespace hcm::jini
