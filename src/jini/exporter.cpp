#include "jini/exporter.hpp"

#include "common/logging.hpp"

namespace hcm::jini {

Exporter::Exporter(net::Network& net, net::NodeId node, std::uint16_t port)
    : net_(net), node_(node), port_(port) {}

Exporter::~Exporter() { stop(); }

Status Exporter::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("exporter: no such node");
  auto status =
      n->listen(port_, [this](net::StreamPtr stream) { on_accept(stream); });
  if (!status.is_ok()) return status;
  listening_ = true;
  return Status::ok();
}

void Exporter::stop() {
  if (!listening_) return;
  if (net::Node* n = net_.node(node_)) n->stop_listening(port_);
  listening_ = false;
  for (auto& weak : connections_) {
    if (auto conn = weak.lock(); conn && conn->stream) {
      conn->stream->set_on_data(nullptr);
      conn->stream->close();
      conn->stream = nullptr;
    }
  }
  connections_.clear();
}

void Exporter::export_object(const std::string& service_id,
                             ServiceHandler handler) {
  objects_[service_id] = std::move(handler);
}

void Exporter::unexport_object(const std::string& service_id) {
  objects_.erase(service_id);
}

void Exporter::on_accept(net::StreamPtr stream) {
  auto conn = std::make_shared<Conn>();
  conn->stream = stream;
  std::erase_if(connections_,
                [](const std::weak_ptr<Conn>& w) { return w.expired(); });
  connections_.push_back(conn);
  stream->set_on_close([conn] { conn->stream = nullptr; });
  stream->set_on_data([this, conn](BlockStream&& data) {
    std::vector<Bytes> frames;
    auto status = conn->reader.feed(std::move(data), frames);
    if (!status.is_ok()) {
      log_warn("jini", "bad frame, closing: ", status.to_string());
      if (conn->stream) conn->stream->close();
      return;
    }
    for (const auto& f : frames) handle_frame(f, conn);
  });
}

void Exporter::handle_frame(const Bytes& payload,
                            const std::shared_ptr<Conn>& conn) {
  auto call = decode_call(payload);
  if (!call.is_ok()) {
    log_warn("jini", "undecodable call: ", call.status().to_string());
    if (conn->stream) conn->stream->close();
    return;
  }
  ++calls_served_;
  const CallMessage& msg = call.value();
  auto reply_with = [conn, call_id = msg.call_id,
                     one_way = msg.one_way](Result<Value> result) {
    if (one_way) return;  // fire-and-forget
    if (!conn->stream || !conn->stream->is_open()) return;
    ReplyMessage reply;
    reply.call_id = call_id;
    if (result.is_ok()) {
      reply.value = std::move(result).take();
    } else {
      reply.status = result.status();
    }
    conn->stream->send(frame(encode_reply(reply)));
  };

  auto it = objects_.find(msg.service_id);
  if (it == objects_.end()) {
    reply_with(not_found("no exported object: " + msg.service_id));
    return;
  }
  it->second(msg.method, msg.args, reply_with);
}

}  // namespace hcm::jini
