#include "jini/protocol.hpp"

#include "common/value_codec.hpp"

namespace hcm::jini {

Value ServiceItem::to_value() const {
  return Value(ValueMap{
      {"id", Value(service_id)},
      {"name", Value(name)},
      {"iface", interface_to_value(interface)},
      {"node", Value(static_cast<std::int64_t>(endpoint.node))},
      {"port", Value(static_cast<std::int64_t>(endpoint.port))},
      {"attrs", Value(attributes)},
  });
}

Result<ServiceItem> ServiceItem::from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("service item is not a map");
  ServiceItem item;
  if (!v.at("id").is_string()) return protocol_error("service item id");
  item.service_id = v.at("id").as_string();
  item.name = v.at("name").is_string() ? v.at("name").as_string() : "";
  auto iface = interface_from_value(v.at("iface"));
  if (!iface.is_ok()) return iface.status();
  item.interface = std::move(iface).take();
  auto node = v.at("node").to_int();
  auto port = v.at("port").to_int();
  if (!node.is_ok() || !port.is_ok()) {
    return protocol_error("service item endpoint");
  }
  item.endpoint = {static_cast<net::NodeId>(node.value()),
                   static_cast<std::uint16_t>(port.value())};
  if (v.at("attrs").is_map()) item.attributes = v.at("attrs").as_map();
  return item;
}

Bytes encode_call(const CallMessage& m) {
  return encode_value(Value(ValueMap{
      {"id", Value(static_cast<std::int64_t>(m.call_id))},
      {"svc", Value(m.service_id)},
      {"method", Value(m.method)},
      {"args", Value(m.args)},
      {"oneWay", Value(m.one_way)},
  }));
}

Result<CallMessage> decode_call(const Bytes& b) {
  auto v = decode_value(b);
  if (!v.is_ok()) return v.status();
  const Value& m = v.value();
  if (!m.is_map()) return protocol_error("call is not a map");
  CallMessage out;
  auto id = m.at("id").to_int();
  if (!id.is_ok()) return protocol_error("call missing id");
  out.call_id = static_cast<std::uint64_t>(id.value());
  if (!m.at("svc").is_string() || !m.at("method").is_string()) {
    return protocol_error("call missing service/method");
  }
  out.service_id = m.at("svc").as_string();
  out.method = m.at("method").as_string();
  if (m.at("args").is_list()) out.args = m.at("args").as_list();
  out.one_way = m.at("oneWay").is_bool() && m.at("oneWay").as_bool();
  return out;
}

Bytes encode_reply(const ReplyMessage& m) {
  ValueMap map{
      {"id", Value(static_cast<std::int64_t>(m.call_id))},
      {"ok", Value(m.status.is_ok())},
  };
  if (m.status.is_ok()) {
    map["value"] = m.value;
  } else {
    map["code"] = Value(static_cast<std::int64_t>(m.status.code()));
    map["msg"] = Value(m.status.message());
  }
  return encode_value(Value(std::move(map)));
}

Result<ReplyMessage> decode_reply(const Bytes& b) {
  auto v = decode_value(b);
  if (!v.is_ok()) return v.status();
  const Value& m = v.value();
  if (!m.is_map()) return protocol_error("reply is not a map");
  ReplyMessage out;
  auto id = m.at("id").to_int();
  if (!id.is_ok()) return protocol_error("reply missing id");
  out.call_id = static_cast<std::uint64_t>(id.value());
  if (!m.at("ok").is_bool()) return protocol_error("reply missing ok");
  if (m.at("ok").as_bool()) {
    out.value = m.at("value");
  } else {
    auto code = m.at("code").to_int();
    if (!code.is_ok() || code.value() < 0 ||
        code.value() > static_cast<int>(StatusCode::kResourceExhausted)) {
      return protocol_error("reply missing error code");
    }
    out.status = Status(
        static_cast<StatusCode>(code.value()),
        m.at("msg").is_string() ? m.at("msg").as_string() : "");
  }
  return out;
}

Bytes frame(const Bytes& payload) {
  BufWriter w;
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_raw(payload);
  return w.take();
}

Status FrameReader::feed(BlockStream&& data, std::vector<Bytes>& out) {
  buf_.splice(std::move(data));
  while (buf_.size() >= 4) {
    std::uint8_t hdr[4];
    buf_.copy_to(hdr, 0, 4);
    std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                        (static_cast<std::uint32_t>(hdr[1]) << 16) |
                        (static_cast<std::uint32_t>(hdr[2]) << 8) |
                        static_cast<std::uint32_t>(hdr[3]);
    if (len > 16 * 1024 * 1024) {
      return protocol_error("frame too large: " + std::to_string(len));
    }
    if (buf_.size() < 4u + len) return Status::ok();
    Bytes frame(len);
    buf_.copy_to(frame.data(), 4, len);
    buf_.consume(4u + len);
    out.push_back(std::move(frame));
  }
  return Status::ok();
}

}  // namespace hcm::jini
