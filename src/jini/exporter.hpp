// Exporter: serves remote calls for local Jini service objects — the
// analogue of exporting a java.rmi.Remote. One exporter per node can
// host many service objects, dispatched by service id.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/service.hpp"
#include "jini/protocol.hpp"
#include "net/network.hpp"

namespace hcm::jini {

class Exporter {
 public:
  Exporter(net::Network& net, net::NodeId node, std::uint16_t port);
  ~Exporter();
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  Status start();
  void stop();

  // Registers a service object under an id; remote calls to that id are
  // dispatched to `handler`.
  void export_object(const std::string& service_id, ServiceHandler handler);
  void unexport_object(const std::string& service_id);
  [[nodiscard]] bool has_object(const std::string& service_id) const {
    return objects_.count(service_id) != 0;
  }

  [[nodiscard]] net::Endpoint endpoint() const { return {node_, port_}; }
  [[nodiscard]] std::uint64_t calls_served() const { return calls_served_; }

 private:
  struct Conn {
    net::StreamPtr stream;
    FrameReader reader;
  };

  void on_accept(net::StreamPtr stream);
  void handle_frame(const Bytes& payload, const std::shared_ptr<Conn>& conn);

  net::Network& net_;
  net::NodeId node_;
  std::uint16_t port_;
  bool listening_ = false;
  // Live connections, detached on stop() (their callbacks capture this).
  std::vector<std::weak_ptr<Conn>> connections_;
  std::map<std::string, ServiceHandler> objects_;
  std::uint64_t calls_served_ = 0;
};

}  // namespace hcm::jini
