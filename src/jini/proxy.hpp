// Client-side stub for a remote Jini service object — the analogue of
// the downloaded Jini proxy. Connects lazily and multiplexes calls on
// one stream per remote endpoint.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/service.hpp"
#include "jini/protocol.hpp"
#include "net/network.hpp"

namespace hcm::jini {

class Proxy {
 public:
  Proxy(net::Network& net, net::NodeId local_node, ServiceItem item)
      : Proxy(net, local_node, std::move(item), sim::seconds(10)) {}
  Proxy(net::Network& net, net::NodeId local_node, ServiceItem item,
        sim::Duration call_timeout);
  ~Proxy();
  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  [[nodiscard]] const ServiceItem& item() const { return item_; }

  // Invokes a remote method. Arguments are checked against the proxy's
  // interface before anything touches the wire.
  void invoke(const std::string& method, const ValueList& args,
              InvokeResultFn done);

  // One-way (no reply expected); only valid for one_way methods.
  Status invoke_one_way(const std::string& method, const ValueList& args);

  // As a ServiceHandler, for plugging a remote service where a local
  // object is expected.
  [[nodiscard]] ServiceHandler as_handler();

 private:
  struct Shared;  // connection + pending-call state, shared with lambdas

  void ensure_connected(std::function<void(const Status&)> then);
  void send_call(CallMessage msg, InvokeResultFn done);

  net::Network& net_;
  net::NodeId local_node_;
  ServiceItem item_;
  sim::Duration call_timeout_;
  std::shared_ptr<Shared> shared_;
};

}  // namespace hcm::jini
