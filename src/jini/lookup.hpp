// The Jini Lookup Service ("reggie"): service registration with leases,
// template matching lookup, remote service events, and multicast
// discovery responses. Faithful to the Jini architecture spec's
// externally visible behaviour.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "jini/exporter.hpp"
#include "jini/proxy.hpp"
#include "jini/protocol.hpp"
#include "net/network.hpp"

namespace hcm::jini {

// Event types delivered to registered listeners.
inline constexpr const char* kEventRegistered = "REGISTERED";
inline constexpr const char* kEventRemoved = "REMOVED";

class LookupService {
 public:
  LookupService(net::Network& net, net::NodeId node,
                std::uint16_t port = kLookupPort);
  ~LookupService();
  LookupService(const LookupService&) = delete;
  LookupService& operator=(const LookupService&) = delete;

  Status start();
  void stop();

  [[nodiscard]] net::Endpoint endpoint() const { return exporter_.endpoint(); }
  [[nodiscard]] std::size_t service_count() const { return services_.size(); }

  // Default lease granted when the client asks for 0/overlong leases.
  static constexpr sim::Duration kMaxLease = sim::seconds(300);

 private:
  void handle(const std::string& method, const ValueList& args,
              InvokeResultFn done);
  Result<Value> do_register(const ValueList& args);
  Result<Value> do_renew(const ValueList& args);
  Result<Value> do_cancel(const ValueList& args);
  Result<Value> do_lookup(const ValueList& args);
  Result<Value> do_notify(const ValueList& args);
  void expire_lease(const std::string& lease_id);
  void remove_service(const std::string& service_id);
  void fire_event(const char* type, const ServiceItem& item);

  net::Network& net_;
  net::NodeId node_;
  Exporter exporter_;

  struct Registration {
    ServiceItem item;
    std::string lease_id;
    sim::EventId expiry_event = 0;
  };
  std::map<std::string, Registration> services_;  // by service_id
  std::map<std::string, std::string> leases_;     // lease_id -> service_id
  std::uint64_t next_lease_ = 1;

  struct Listener {
    std::unique_ptr<Proxy> proxy;
  };
  std::map<std::int64_t, Listener> listeners_;
  std::int64_t next_listener_ = 1;
  std::uint64_t events_fired_ = 0;

 public:
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }
};

// Announces/locates lookup services via multicast (the discovery
// protocol): clients multicast a request, lookup services answer with
// their endpoint.
class DiscoveryResponder {
 public:
  DiscoveryResponder(net::Network& net, net::NodeId node,
                     net::Endpoint lookup_endpoint);
  Status start();

 private:
  net::Network& net_;
  net::NodeId node_;
  net::Endpoint lookup_endpoint_;
};

class DiscoveryClient {
 public:
  DiscoveryClient(net::Network& net, net::NodeId node)
      : net_(net), node_(node) {}

  using FoundFn = std::function<void(std::vector<net::Endpoint>)>;
  // Multicasts a request and collects answers for `wait`.
  void discover(sim::Duration wait, FoundFn done);

 private:
  net::Network& net_;
  net::NodeId node_;
  std::uint16_t reply_port_ = 14160;
};

}  // namespace hcm::jini
