// Client-side lookup access: typed wrapper over the lookup service's
// remote interface, plus a JoinManager-like registrar that keeps a
// service's lease renewed for as long as it lives.
#pragma once

#include <memory>
#include <optional>

#include "jini/lookup.hpp"
#include "jini/proxy.hpp"

namespace hcm::jini {

// The lookup service's own remote interface.
[[nodiscard]] InterfaceDesc lookup_interface();
// A proxy to a lookup service at `endpoint`, usable from `node`.
[[nodiscard]] std::unique_ptr<Proxy> lookup_proxy(net::Network& net,
                                                  net::NodeId node,
                                                  net::Endpoint endpoint);

class LookupClient {
 public:
  LookupClient(net::Network& net, net::NodeId node, net::Endpoint lookup)
      : proxy_(lookup_proxy(net, node, lookup)) {}

  using ItemsFn = std::function<void(Result<std::vector<ServiceItem>>)>;

  // Finds services by interface name ("" = all) and attribute filter.
  void lookup(const std::string& iface, const ValueMap& attrs, ItemsFn done);

  // Registers a remote event listener (already exported at node/port
  // under listener_id); callback gets the registration id.
  void notify(net::Endpoint listener, const std::string& listener_id,
              std::function<void(Result<std::int64_t>)> done);

  [[nodiscard]] Proxy& proxy() { return *proxy_; }

 private:
  std::unique_ptr<Proxy> proxy_;
};

// Registers a service and auto-renews its lease at half-life until
// destroyed or cancel() is called. Mirrors Jini's JoinManager.
class Registrar {
 public:
  Registrar(net::Network& net, net::NodeId node, net::Endpoint lookup,
            ServiceItem item, sim::Duration lease = sim::seconds(30));
  ~Registrar();
  Registrar(const Registrar&) = delete;
  Registrar& operator=(const Registrar&) = delete;

  // Performs the initial registration.
  void join(std::function<void(const Status&)> done);
  // Cancels the lease (service disappears from the lookup service).
  void cancel(std::function<void(const Status&)> done);

  [[nodiscard]] bool joined() const { return lease_id_.has_value(); }
  [[nodiscard]] std::uint64_t renewals() const { return renewals_; }

 private:
  void schedule_renew(sim::Duration granted);
  void renew();

  net::Network& net_;
  std::unique_ptr<Proxy> proxy_;
  ServiceItem item_;
  sim::Duration lease_;
  std::optional<std::string> lease_id_;
  sim::EventId renew_event_ = 0;
  std::uint64_t renewals_ = 0;
};

}  // namespace hcm::jini
