#include "jini/proxy.hpp"

namespace hcm::jini {

struct Proxy::Shared {
  net::StreamPtr stream;
  FrameReader reader;
  bool connecting = false;
  std::vector<std::function<void(const Status&)>> waiters;
  std::uint64_t next_call_id = 1;
  struct Pending {
    InvokeResultFn done;
    sim::EventId timeout_event = 0;
  };
  std::map<std::uint64_t, Pending> pending;
  sim::Scheduler* sched = nullptr;

  void fail_all(const Status& status) {
    auto pending_now = std::move(pending);
    pending.clear();
    for (auto& [id, p] : pending_now) {
      if (p.timeout_event != 0) sched->cancel(p.timeout_event);
      if (p.done) p.done(status);
    }
    auto waiters_now = std::move(waiters);
    waiters.clear();
    for (auto& w : waiters_now) w(status);
  }
};

Proxy::Proxy(net::Network& net, net::NodeId local_node, ServiceItem item,
             sim::Duration call_timeout)
    : net_(net),
      local_node_(local_node),
      item_(std::move(item)),
      call_timeout_(call_timeout),
      shared_(std::make_shared<Shared>()) {
  shared_->sched = &net.scheduler();
}

Proxy::~Proxy() {
  if (shared_->stream) shared_->stream->close();
  shared_->fail_all(cancelled("proxy destroyed"));
}

void Proxy::ensure_connected(std::function<void(const Status&)> then) {
  if (shared_->stream && shared_->stream->is_open()) {
    then(Status::ok());
    return;
  }
  shared_->waiters.push_back(std::move(then));
  if (shared_->connecting) return;
  shared_->connecting = true;
  auto shared = shared_;
  net_.connect(local_node_, item_.endpoint,
               [shared](Result<net::StreamPtr> r) {
                 shared->connecting = false;
                 if (!r.is_ok()) {
                   auto waiters = std::move(shared->waiters);
                   shared->waiters.clear();
                   for (auto& w : waiters) w(r.status());
                   return;
                 }
                 shared->stream = r.value();
                 shared->reader = FrameReader{};
                 shared->stream->set_on_close(
                     [shared] { shared->fail_all(unavailable("peer closed")); });
                 shared->stream->set_on_data([shared](BlockStream&& data) {
                   std::vector<Bytes> frames;
                   if (!shared->reader.feed(std::move(data), frames).is_ok()) {
                     shared->stream->close();
                     return;
                   }
                   for (const auto& f : frames) {
                     auto reply = decode_reply(f);
                     if (!reply.is_ok()) continue;
                     auto it = shared->pending.find(reply.value().call_id);
                     if (it == shared->pending.end()) continue;
                     auto p = std::move(it->second);
                     shared->pending.erase(it);
                     if (p.timeout_event != 0) {
                       shared->sched->cancel(p.timeout_event);
                     }
                     if (reply.value().status.is_ok()) {
                       p.done(reply.value().value);
                     } else {
                       p.done(reply.value().status);
                     }
                   }
                 });
                 auto waiters = std::move(shared->waiters);
                 shared->waiters.clear();
                 for (auto& w : waiters) w(Status::ok());
               });
}

void Proxy::invoke(const std::string& method, const ValueList& args,
                   InvokeResultFn done) {
  const MethodDesc* desc = item_.interface.find_method(method);
  if (desc == nullptr) {
    done(not_found("interface " + item_.interface.name + " has no method " +
                   method));
    return;
  }
  if (auto status = check_args(*desc, args); !status.is_ok()) {
    done(status);
    return;
  }
  CallMessage msg;
  msg.call_id = shared_->next_call_id++;
  msg.service_id = item_.service_id;
  msg.method = method;
  msg.args = args;
  msg.one_way = desc->one_way;
  send_call(std::move(msg), std::move(done));
}

Status Proxy::invoke_one_way(const std::string& method,
                             const ValueList& args) {
  const MethodDesc* desc = item_.interface.find_method(method);
  if (desc == nullptr) return not_found("no method " + method);
  if (!desc->one_way) {
    return invalid_argument(method + " is not a one-way method");
  }
  invoke(method, args, [](Result<Value>) {});
  return Status::ok();
}

void Proxy::send_call(CallMessage msg, InvokeResultFn done) {
  auto shared = shared_;
  auto timeout_after = call_timeout_;
  ensure_connected([shared, timeout_after, msg = std::move(msg),
                    done = std::move(done)](const Status& status) mutable {
    if (!status.is_ok()) {
      done(status);
      return;
    }
    if (msg.one_way) {
      shared->stream->send(frame(encode_call(msg)));
      done(Value());
      return;
    }
    auto call_id = msg.call_id;
    Shared::Pending pending;
    pending.done = std::move(done);
    pending.timeout_event =
        shared->sched->after(timeout_after, [shared, call_id] {
          auto it = shared->pending.find(call_id);
          if (it == shared->pending.end()) return;
          auto p = std::move(it->second);
          shared->pending.erase(it);
          p.done(timeout("jini call timed out"));
        });
    shared->pending.emplace(call_id, std::move(pending));
    shared->stream->send(frame(encode_call(msg)));
  });
}

ServiceHandler Proxy::as_handler() {
  // The handler shares the proxy's connection state, so it stays valid
  // for the proxy's lifetime (PCMs own their proxies).
  return [this](const std::string& method, const ValueList& args,
                InvokeResultFn done) { invoke(method, args, std::move(done)); };
}

}  // namespace hcm::jini
