// The Jini-like middleware's wire protocol. Real Jini moves serialized
// Java objects over JRMP; our stand-in moves length-framed binary Values
// over reliable streams, preserving the call/reply, registration, lease
// and remote-event semantics (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <string>

#include "common/block_stream.hpp"
#include "common/bytes.hpp"
#include "common/interface_desc.hpp"
#include "common/service.hpp"
#include "common/status.hpp"
#include "common/value.hpp"
#include "net/address.hpp"

namespace hcm::jini {

// Well-known ports / groups (mirroring Jini's 4160).
constexpr std::uint16_t kLookupPort = 4160;
constexpr std::uint16_t kDiscoveryPort = 4160;
constexpr net::GroupId kDiscoveryGroup = 0x4A494E49;  // "JINI"

// A registered Jini service: identity, typed interface, and the
// endpoint its exporter listens on.
struct ServiceItem {
  std::string service_id;
  std::string name;
  InterfaceDesc interface;
  net::Endpoint endpoint;
  ValueMap attributes;

  [[nodiscard]] Value to_value() const;
  static Result<ServiceItem> from_value(const Value& v);

  friend bool operator==(const ServiceItem&, const ServiceItem&) = default;
};

// Remote call and reply messages.
struct CallMessage {
  std::uint64_t call_id = 0;
  std::string service_id;
  std::string method;
  ValueList args;
  bool one_way = false;
};

struct ReplyMessage {
  std::uint64_t call_id = 0;
  Status status;
  Value value;
};

[[nodiscard]] Bytes encode_call(const CallMessage& m);
[[nodiscard]] Result<CallMessage> decode_call(const Bytes& b);
[[nodiscard]] Bytes encode_reply(const ReplyMessage& m);
[[nodiscard]] Result<ReplyMessage> decode_reply(const Bytes& b);

// Length-prefix framing for streams: u32 length + payload.
[[nodiscard]] Bytes frame(const Bytes& payload);

// Incremental deframer. Accumulates in pooled blocks: delivered
// payloads splice in and drained frames release their blocks, so
// steady-state deframing does no buffer grow/shrink heap traffic.
class FrameReader {
 public:
  // Feed stream bytes; complete frames are appended to `out`.
  Status feed(BlockStream&& data, std::vector<Bytes>& out);

 private:
  BlockStream buf_;
};

}  // namespace hcm::jini
