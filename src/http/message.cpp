#include "http/message.hpp"

#include "common/strings.hpp"

namespace hcm::http {

const std::string* find_header(const Headers& headers, std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

void set_header(Headers& headers, std::string name, std::string value) {
  for (auto& [k, v] : headers) {
    if (iequals(k, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

namespace {
void serialize_headers(std::string& out, const Headers& headers,
                       std::size_t body_size) {
  bool have_length = false;
  for (const auto& [k, v] : headers) {
    if (iequals(k, "Content-Length")) {
      have_length = true;
      out += k + ": " + std::to_string(body_size) + "\r\n";
    } else {
      out += k + ": " + v + "\r\n";
    }
  }
  if (!have_length) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}
}  // namespace

Bytes Request::serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  serialize_headers(out, headers, body.size());
  out += body;
  return to_bytes(out);
}

Bytes Response::serialize() const {
  std::string out =
      version + " " + std::to_string(status) + " " + reason + "\r\n";
  serialize_headers(out, headers, body.size());
  out += body;
  return to_bytes(out);
}

Response Response::make(int status, std::string reason, std::string body,
                        std::string content_type) {
  Response r;
  r.status = status;
  r.reason = std::move(reason);
  r.body = std::move(body);
  r.set_header("Content-Type", std::move(content_type));
  return r;
}

Status MessageParser::feed(const Bytes& data) {
  buf_.append(data.begin(), data.end());
  return try_parse();
}

Status MessageParser::try_parse() {
  while (true) {
    if (!in_body_) {
      auto head_end = buf_.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        if (buf_.size() > 64 * 1024) {
          return protocol_error("HTTP header section too large");
        }
        return Status::ok();  // need more data
      }
      auto status = parse_head(std::string_view(buf_).substr(0, head_end));
      if (!status.is_ok()) return status;
      buf_.erase(0, head_end + 4);
      in_body_ = true;
    }
    // Body phase.
    if (buf_.size() < body_needed_) return Status::ok();
    std::string body = buf_.substr(0, body_needed_);
    buf_.erase(0, body_needed_);
    in_body_ = false;
    if (mode_ == Mode::kRequest) {
      cur_req_.body = std::move(body);
      requests_.push_back(std::move(cur_req_));
      cur_req_ = Request{};
    } else {
      cur_resp_.body = std::move(body);
      responses_.push_back(std::move(cur_resp_));
      cur_resp_ = Response{};
    }
  }
}

Status MessageParser::parse_head(std::string_view head) {
  auto line_end = head.find("\r\n");
  auto first = head.substr(0, line_end);
  Headers headers;

  // Header lines.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    auto eol = rest.find("\r\n");
    auto line = eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return protocol_error("malformed header line");
    }
    headers.emplace_back(std::string(trim(line.substr(0, colon))),
                         std::string(trim(line.substr(colon + 1))));
  }

  long long length = 0;
  if (const auto* cl = find_header(headers, "Content-Length")) {
    length = parse_uint(trim(*cl));
    if (length < 0) return protocol_error("bad Content-Length");
  }
  body_needed_ = static_cast<std::size_t>(length);

  if (mode_ == Mode::kRequest) {
    auto parts = split(first, ' ');
    if (parts.size() != 3) return protocol_error("malformed request line");
    cur_req_ = Request{};
    cur_req_.method = parts[0];
    cur_req_.target = parts[1];
    cur_req_.version = parts[2];
    cur_req_.headers = std::move(headers);
  } else {
    // "HTTP/1.1 200 OK" — reason may contain spaces.
    auto sp1 = first.find(' ');
    if (sp1 == std::string_view::npos) {
      return protocol_error("malformed status line");
    }
    auto sp2 = first.find(' ', sp1 + 1);
    cur_resp_ = Response{};
    cur_resp_.version = std::string(first.substr(0, sp1));
    auto code_sv = sp2 == std::string_view::npos
                       ? first.substr(sp1 + 1)
                       : first.substr(sp1 + 1, sp2 - sp1 - 1);
    auto code = parse_uint(code_sv);
    if (code < 100 || code > 599) return protocol_error("bad status code");
    cur_resp_.status = static_cast<int>(code);
    cur_resp_.reason =
        sp2 == std::string_view::npos ? "" : std::string(first.substr(sp2 + 1));
    cur_resp_.headers = std::move(headers);
  }
  return Status::ok();
}

std::vector<Request> MessageParser::take_requests() {
  return std::exchange(requests_, {});
}

std::vector<Response> MessageParser::take_responses() {
  return std::exchange(responses_, {});
}

}  // namespace hcm::http
