#include "http/message.hpp"

#include <charconv>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace hcm::http {

const std::string* find_header(const Headers& headers, std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

void set_header(Headers& headers, std::string name, std::string value) {
  for (auto& [k, v] : headers) {
    if (iequals(k, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

std::string& header_slot(Headers& headers, std::string_view name) {
  for (auto& [k, v] : headers) {
    if (iequals(k, name)) return v;
  }
  headers.emplace_back(std::string(name), std::string());
  return headers.back().second;
}

namespace {

// Serialization renders straight into the sink handed to the stream —
// the Bytes buffer or the wire path's pooled BlockStream — with no
// intermediate std::string. Both sinks share one rendering core so the
// emitted bytes are identical by construction.
void append(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void append(BlockStream& out, std::string_view s) { out.append(s); }

template <class Sink>
void append_uint(Sink& out, unsigned long long v) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  append(out, std::string_view(buf, static_cast<std::size_t>(end - buf)));
}

std::size_t headers_size(const Headers& headers) {
  std::size_t n = 0;
  for (const auto& [k, v] : headers) n += k.size() + v.size() + 4;
  return n;
}

template <class Sink>
void serialize_headers(Sink& out, const Headers& headers,
                       std::size_t body_size) {
  bool have_length = false;
  for (const auto& [k, v] : headers) {
    append(out, k);
    append(out, ": ");
    if (iequals(k, "Content-Length")) {
      have_length = true;
      append_uint(out, body_size);
    } else {
      append(out, v);
    }
    append(out, "\r\n");
  }
  if (!have_length) {
    append(out, "Content-Length: ");
    append_uint(out, body_size);
    append(out, "\r\n");
  }
  append(out, "\r\n");
}

template <class Sink>
void serialize_request_head(Sink& out, const Request& r,
                            std::size_t body_size) {
  append(out, r.method);
  append(out, " ");
  append(out, r.target);
  append(out, " ");
  append(out, r.version);
  append(out, "\r\n");
  serialize_headers(out, r.headers, body_size);
}

template <class Sink>
void serialize_response_head(Sink& out, const Response& r,
                             std::size_t body_size) {
  append(out, r.version);
  append(out, " ");
  append_uint(out, static_cast<unsigned long long>(r.status));
  append(out, " ");
  append(out, r.reason);
  append(out, "\r\n");
  serialize_headers(out, r.headers, body_size);
}

}  // namespace

Bytes Request::serialize() const {
  Bytes out;
  // hcm:allow(hotpath-bytes-growth): legacy flat form off the wire path
  out.reserve(method.size() + target.size() + version.size() + 4 +
              headers_size(headers) + 32 + body.size());
  serialize_request_head(out, *this, body.size());
  append(out, body);
  return out;
}

void Request::serialize_to(BlockStream& out) const {
  serialize_request_head(out, *this, body.size());
  out.append(body);
}

void Request::serialize_head_to(BlockStream& out,
                                std::size_t body_size) const {
  HCM_DCHECK_MSG(body.empty(), "spliced-body form requires an empty body");
  serialize_request_head(out, *this, body_size);
}

Bytes Response::serialize() const {
  Bytes out;
  // hcm:allow(hotpath-bytes-growth): legacy flat form off the wire path
  out.reserve(version.size() + reason.size() + 6 + headers_size(headers) + 32 +
              body.size());
  serialize_response_head(out, *this, body.size());
  append(out, body);
  return out;
}

void Response::serialize_to(BlockStream& out) const {
  serialize_response_head(out, *this, body.size());
  out.append(body);
}

void Response::serialize_head_to(BlockStream& out,
                                 std::size_t body_size) const {
  HCM_DCHECK_MSG(body.empty(), "spliced-body form requires an empty body");
  serialize_response_head(out, *this, body_size);
}

Response Response::make(int status, std::string reason, std::string body,
                        std::string content_type) {
  Response r;
  r.status = status;
  r.reason = std::move(reason);
  r.body = std::move(body);
  r.set_header("Content-Type", std::move(content_type));
  return r;
}

Status MessageParser::feed(const Bytes& data) {
  buf_.append(data.data(), data.size());
  return try_parse();
}

Status MessageParser::feed(BlockStream&& data) {
  buf_.splice(std::move(data));
  return try_parse();
}

Status MessageParser::try_parse() {
  while (true) {
    if (!in_body_) {
      auto head_end = buf_.find("\r\n\r\n");
      if (head_end == BlockStream::npos) {
        if (buf_.size() > 64 * 1024) {
          return protocol_error("HTTP header section too large");
        }
        return Status::ok();  // need more data
      }
      auto status = parse_head(buf_.view(0, head_end, head_scratch_));
      if (!status.is_ok()) return status;
      buf_.consume(head_end + 4);
      in_body_ = true;
    }
    // Body phase. The body is written into the current message's
    // (capacity-retaining) string, and the finished message is swapped
    // into a FIFO slot rather than moved — slots are never destroyed,
    // so at steady state the whole parse cycle reuses previously grown
    // storage instead of touching the heap.
    if (buf_.size() < body_needed_) return Status::ok();
    std::string& body = mode_ == Mode::kRequest ? cur_req_.body : cur_resp_.body;
    body.resize(body_needed_);
    if (body_needed_ > 0) {
      buf_.copy_to(body.data(), 0, body_needed_);
      buf_.consume(body_needed_);
    }
    in_body_ = false;
    if (mode_ == Mode::kRequest) {
      if (used_req_ < requests_.size()) {
        std::swap(requests_[used_req_], cur_req_);
      } else {
        requests_.push_back(std::move(cur_req_));
      }
      ++used_req_;
    } else {
      if (used_resp_ < responses_.size()) {
        std::swap(responses_[used_resp_], cur_resp_);
      } else {
        responses_.push_back(std::move(cur_resp_));
      }
      ++used_resp_;
    }
  }
}

Status MessageParser::parse_head(std::string_view head) {
  auto line_end = head.find("\r\n");
  auto first = head.substr(0, line_end);
  // Header entries are assigned into the recycled message's existing
  // pairs — at steady state the name/value strings keep their grown
  // capacity across messages, so header parsing is allocation-free.
  Headers& headers =
      mode_ == Mode::kRequest ? cur_req_.headers : cur_resp_.headers;
  std::size_t n_headers = 0;

  // Header lines.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    auto eol = rest.find("\r\n");
    auto line = eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return protocol_error("malformed header line");
    }
    auto name = trim(line.substr(0, colon));
    auto value = trim(line.substr(colon + 1));
    if (n_headers < headers.size()) {
      headers[n_headers].first.assign(name);
      headers[n_headers].second.assign(value);
    } else {
      headers.emplace_back(std::string(name), std::string(value));
    }
    ++n_headers;
  }
  headers.resize(n_headers);

  long long length = 0;
  if (const auto* cl = find_header(headers, "Content-Length")) {
    length = parse_uint(trim(*cl));
    if (length < 0) return protocol_error("bad Content-Length");
  }
  body_needed_ = static_cast<std::size_t>(length);

  if (mode_ == Mode::kRequest) {
    // "METHOD SP target SP version" — parsed in place; a method or
    // target containing a space is malformed anyway.
    auto sp1 = first.find(' ');
    auto sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : first.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        first.find(' ', sp2 + 1) != std::string_view::npos || sp1 == 0 ||
        sp2 == sp1 + 1 || sp2 + 1 == first.size()) {
      return protocol_error("malformed request line");
    }
    cur_req_.method.assign(first.substr(0, sp1));
    cur_req_.target.assign(first.substr(sp1 + 1, sp2 - sp1 - 1));
    cur_req_.version.assign(first.substr(sp2 + 1));
  } else {
    // "HTTP/1.1 200 OK" — reason may contain spaces.
    auto sp1 = first.find(' ');
    if (sp1 == std::string_view::npos) {
      return protocol_error("malformed status line");
    }
    auto sp2 = first.find(' ', sp1 + 1);
    cur_resp_.version.assign(first.substr(0, sp1));
    auto code_sv = sp2 == std::string_view::npos
                       ? first.substr(sp1 + 1)
                       : first.substr(sp1 + 1, sp2 - sp1 - 1);
    auto code = parse_uint(code_sv);
    if (code < 100 || code > 599) return protocol_error("bad status code");
    cur_resp_.status = static_cast<int>(code);
    if (sp2 == std::string_view::npos) {
      cur_resp_.reason.clear();
    } else {
      cur_resp_.reason.assign(first.substr(sp2 + 1));
    }
  }
  return Status::ok();
}

std::vector<Request> MessageParser::take_requests() {
  std::vector<Request> out;
  out.reserve(used_req_ - next_req_);
  for (std::size_t i = next_req_; i < used_req_; ++i) {
    out.push_back(std::move(requests_[i]));
  }
  next_req_ = used_req_ = 0;
  return out;
}

std::vector<Response> MessageParser::take_responses() {
  std::vector<Response> out;
  out.reserve(used_resp_ - next_resp_);
  for (std::size_t i = next_resp_; i < used_resp_; ++i) {
    out.push_back(std::move(responses_[i]));
  }
  next_resp_ = used_resp_ = 0;
  return out;
}

bool MessageParser::pop_request(Request& out) {
  if (next_req_ >= used_req_) return false;
  // Swap, not move: the caller's drained scratch message rotates its
  // grown string/vector capacities back into the slot for reuse.
  std::swap(out, requests_[next_req_++]);
  if (next_req_ == used_req_) {
    next_req_ = used_req_ = 0;
  }
  return true;
}

bool MessageParser::pop_response(Response& out) {
  if (next_resp_ >= used_resp_) return false;
  std::swap(out, responses_[next_resp_++]);
  if (next_resp_ == used_resp_) {
    next_resp_ = used_resp_ = 0;
  }
  return true;
}

}  // namespace hcm::http
