#include "http/message.hpp"

#include <charconv>

#include "common/strings.hpp"

namespace hcm::http {

const std::string* find_header(const Headers& headers, std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

void set_header(Headers& headers, std::string name, std::string value) {
  for (auto& [k, v] : headers) {
    if (iequals(k, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

namespace {

// Serialization renders straight into the Bytes buffer handed to the
// stream — no intermediate std::string and no to_bytes copy.
void append(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void append_uint(Bytes& out, unsigned long long v) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  append(out, std::string_view(buf, static_cast<std::size_t>(end - buf)));
}

std::size_t headers_size(const Headers& headers) {
  std::size_t n = 0;
  for (const auto& [k, v] : headers) n += k.size() + v.size() + 4;
  return n;
}

void serialize_headers(Bytes& out, const Headers& headers,
                       std::size_t body_size) {
  bool have_length = false;
  for (const auto& [k, v] : headers) {
    append(out, k);
    append(out, ": ");
    if (iequals(k, "Content-Length")) {
      have_length = true;
      append_uint(out, body_size);
    } else {
      append(out, v);
    }
    append(out, "\r\n");
  }
  if (!have_length) {
    append(out, "Content-Length: ");
    append_uint(out, body_size);
    append(out, "\r\n");
  }
  append(out, "\r\n");
}

}  // namespace

Bytes Request::serialize() const {
  Bytes out;
  out.reserve(method.size() + target.size() + version.size() + 4 +
              headers_size(headers) + 32 + body.size());
  append(out, method);
  append(out, " ");
  append(out, target);
  append(out, " ");
  append(out, version);
  append(out, "\r\n");
  serialize_headers(out, headers, body.size());
  append(out, body);
  return out;
}

Bytes Response::serialize() const {
  Bytes out;
  out.reserve(version.size() + reason.size() + 6 + headers_size(headers) + 32 +
              body.size());
  append(out, version);
  append(out, " ");
  append_uint(out, static_cast<unsigned long long>(status));
  append(out, " ");
  append(out, reason);
  append(out, "\r\n");
  serialize_headers(out, headers, body.size());
  append(out, body);
  return out;
}

Response Response::make(int status, std::string reason, std::string body,
                        std::string content_type) {
  Response r;
  r.status = status;
  r.reason = std::move(reason);
  r.body = std::move(body);
  r.set_header("Content-Type", std::move(content_type));
  return r;
}

Status MessageParser::feed(const Bytes& data) {
  buf_.append(data.begin(), data.end());
  return try_parse();
}

Status MessageParser::try_parse() {
  while (true) {
    if (!in_body_) {
      auto head_end = buf_.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        if (buf_.size() > 64 * 1024) {
          return protocol_error("HTTP header section too large");
        }
        return Status::ok();  // need more data
      }
      auto status = parse_head(std::string_view(buf_).substr(0, head_end));
      if (!status.is_ok()) return status;
      buf_.erase(0, head_end + 4);
      in_body_ = true;
    }
    // Body phase.
    if (buf_.size() < body_needed_) return Status::ok();
    std::string body;
    if (buf_.size() == body_needed_) {
      // The buffer is exactly the body (the common one-message-per-
      // delivery case): move it out instead of copying.
      body = std::move(buf_);
      buf_.clear();
    } else {
      body = buf_.substr(0, body_needed_);
      buf_.erase(0, body_needed_);
    }
    in_body_ = false;
    if (mode_ == Mode::kRequest) {
      cur_req_.body = std::move(body);
      requests_.push_back(std::move(cur_req_));
      cur_req_ = Request{};
    } else {
      cur_resp_.body = std::move(body);
      responses_.push_back(std::move(cur_resp_));
      cur_resp_ = Response{};
    }
  }
}

Status MessageParser::parse_head(std::string_view head) {
  auto line_end = head.find("\r\n");
  auto first = head.substr(0, line_end);
  Headers headers;
  headers.reserve(8);

  // Header lines.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    auto eol = rest.find("\r\n");
    auto line = eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return protocol_error("malformed header line");
    }
    headers.emplace_back(std::string(trim(line.substr(0, colon))),
                         std::string(trim(line.substr(colon + 1))));
  }

  long long length = 0;
  if (const auto* cl = find_header(headers, "Content-Length")) {
    length = parse_uint(trim(*cl));
    if (length < 0) return protocol_error("bad Content-Length");
  }
  body_needed_ = static_cast<std::size_t>(length);

  if (mode_ == Mode::kRequest) {
    // "METHOD SP target SP version" — parsed in place; a method or
    // target containing a space is malformed anyway.
    auto sp1 = first.find(' ');
    auto sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : first.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        first.find(' ', sp2 + 1) != std::string_view::npos || sp1 == 0 ||
        sp2 == sp1 + 1 || sp2 + 1 == first.size()) {
      return protocol_error("malformed request line");
    }
    cur_req_ = Request{};
    cur_req_.method = std::string(first.substr(0, sp1));
    cur_req_.target = std::string(first.substr(sp1 + 1, sp2 - sp1 - 1));
    cur_req_.version = std::string(first.substr(sp2 + 1));
    cur_req_.headers = std::move(headers);
  } else {
    // "HTTP/1.1 200 OK" — reason may contain spaces.
    auto sp1 = first.find(' ');
    if (sp1 == std::string_view::npos) {
      return protocol_error("malformed status line");
    }
    auto sp2 = first.find(' ', sp1 + 1);
    cur_resp_ = Response{};
    cur_resp_.version = std::string(first.substr(0, sp1));
    auto code_sv = sp2 == std::string_view::npos
                       ? first.substr(sp1 + 1)
                       : first.substr(sp1 + 1, sp2 - sp1 - 1);
    auto code = parse_uint(code_sv);
    if (code < 100 || code > 599) return protocol_error("bad status code");
    cur_resp_.status = static_cast<int>(code);
    cur_resp_.reason =
        sp2 == std::string_view::npos ? "" : std::string(first.substr(sp2 + 1));
    cur_resp_.headers = std::move(headers);
  }
  return Status::ok();
}

std::vector<Request> MessageParser::take_requests() {
  return std::exchange(requests_, {});
}

std::vector<Response> MessageParser::take_responses() {
  return std::exchange(responses_, {});
}

}  // namespace hcm::http
