// HTTP/1.1 message model and incremental parser. SOAP (the VSG wire
// protocol), the UDDI-like registry and UPnP descriptions all ride on
// this.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/block_stream.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"

namespace hcm::http {

using Headers = std::vector<std::pair<std::string, std::string>>;

// Case-insensitive header lookup; returns nullptr if absent.
[[nodiscard]] const std::string* find_header(const Headers& headers,
                                             std::string_view name);
void set_header(Headers& headers, std::string name, std::string value);
// Value slot for `name`, appended if absent: hot callers clear/assign
// into the returned string so a recycled header entry's capacity is
// reused instead of building a temporary value.
[[nodiscard]] std::string& header_slot(Headers& headers,
                                       std::string_view name);

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  [[nodiscard]] const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
  void set_header(std::string name, std::string value) {
    http::set_header(headers, std::move(name), std::move(value));
  }
  // Serializes with a correct Content-Length.
  [[nodiscard]] Bytes serialize() const;
  // Identical bytes into pooled blocks (the wire path's form).
  void serialize_to(BlockStream& out) const;
  // Head only, with an explicit Content-Length for a body that already
  // lives in its own BlockStream; the caller splices the body on after
  // (this->body must be empty — the SOAP fast path renders envelopes
  // straight into pooled blocks and never materializes a body string).
  void serialize_head_to(BlockStream& out, std::size_t body_size) const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  [[nodiscard]] const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
  void set_header(std::string name, std::string value) {
    http::set_header(headers, std::move(name), std::move(value));
  }
  [[nodiscard]] Bytes serialize() const;
  void serialize_to(BlockStream& out) const;
  void serialize_head_to(BlockStream& out, std::size_t body_size) const;

  static Response make(int status, std::string reason, std::string body,
                       std::string content_type = "text/plain");
};

// Incremental parser for a byte stream carrying back-to-back messages.
// Feed bytes; complete messages pop out via the callbacks.
//
// Accumulation lives in a BlockStream, so a delivered payload splices
// in without copying and steady-state parsing does no buffer
// grow/shrink heap traffic; heads are scanned in place (the scratch
// string only backs a head that straddles a block seam).
class MessageParser {
 public:
  enum class Mode { kRequest, kResponse };
  explicit MessageParser(Mode mode) : mode_(mode) {}

  // Returns a protocol error on malformed input; the connection should
  // then be dropped.
  Status feed(const Bytes& data);
  // Zero-copy form: splices the delivered blocks into accumulation.
  Status feed(BlockStream&& data);

  // Completed messages, in arrival order. Caller takes them.
  std::vector<Request> take_requests();
  std::vector<Response> take_responses();
  // Allocation-free draining (the wire path's form): moves the oldest
  // completed message into `out`, false when none is pending.
  [[nodiscard]] bool pop_request(Request& out);
  [[nodiscard]] bool pop_response(Response& out);

 private:
  Status try_parse();
  Status parse_head(std::string_view head);

  Mode mode_;
  BlockStream buf_;
  std::string head_scratch_;  // backs heads spanning a block seam
  // Parsing state: when a head has been parsed we know the body length.
  bool in_body_ = false;
  std::size_t body_needed_ = 0;
  Request cur_req_;
  Response cur_resp_;
  // FIFO of completed messages, kept as a ring of reusable slots:
  // [next_, used_) are pending, slots past used_ hold drained messages
  // whose storage the next completion swaps back into service. Slots
  // are only destroyed by take_*(), so pop_*-based consumers run
  // allocation-free at steady state.
  std::vector<Request> requests_;
  std::vector<Response> responses_;
  std::size_t next_req_ = 0;
  std::size_t next_resp_ = 0;
  std::size_t used_req_ = 0;
  std::size_t used_resp_ = 0;
};

}  // namespace hcm::http
