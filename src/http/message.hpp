// HTTP/1.1 message model and incremental parser. SOAP (the VSG wire
// protocol), the UDDI-like registry and UPnP descriptions all ride on
// this.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace hcm::http {

using Headers = std::vector<std::pair<std::string, std::string>>;

// Case-insensitive header lookup; returns nullptr if absent.
[[nodiscard]] const std::string* find_header(const Headers& headers,
                                             std::string_view name);
void set_header(Headers& headers, std::string name, std::string value);

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  [[nodiscard]] const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
  void set_header(std::string name, std::string value) {
    http::set_header(headers, std::move(name), std::move(value));
  }
  // Serializes with a correct Content-Length.
  [[nodiscard]] Bytes serialize() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  [[nodiscard]] const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
  void set_header(std::string name, std::string value) {
    http::set_header(headers, std::move(name), std::move(value));
  }
  [[nodiscard]] Bytes serialize() const;

  static Response make(int status, std::string reason, std::string body,
                       std::string content_type = "text/plain");
};

// Incremental parser for a byte stream carrying back-to-back messages.
// Feed bytes; complete messages pop out via the callbacks.
class MessageParser {
 public:
  enum class Mode { kRequest, kResponse };
  explicit MessageParser(Mode mode) : mode_(mode) {}

  // Returns a protocol error on malformed input; the connection should
  // then be dropped.
  Status feed(const Bytes& data);

  // Completed messages, in arrival order. Caller takes them.
  std::vector<Request> take_requests();
  std::vector<Response> take_responses();

 private:
  Status try_parse();
  Status parse_head(std::string_view head);

  Mode mode_;
  std::string buf_;
  // Parsing state: when a head has been parsed we know the body length.
  bool in_body_ = false;
  std::size_t body_needed_ = 0;
  Request cur_req_;
  Response cur_resp_;
  std::vector<Request> requests_;
  std::vector<Response> responses_;
};

}  // namespace hcm::http
