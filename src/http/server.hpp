// HTTP/1.1 server bound to a simulated node/port. Handlers may respond
// asynchronously (the VSG forwards calls to other islands before
// answering), so the handler receives a respond callback.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "common/inline_fn.hpp"
#include "http/message.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace hcm::http {

// Copyable small-buffer callable: a respond fn is built per request
// and handed through the handler chain, which must not heap-allocate
// at wire rates (handlers may still park copies for async replies).
// The response is taken by rvalue reference so hot handlers can lend a
// recycled scratch Response: respond serializes it synchronously and
// only moves from it if it needs to park the message.
using RespondFn = SmallFn<void(Response&&), 64>;
// Route handler: inspect the request, eventually call respond exactly once.
using RequestHandler = std::function<void(const Request&, RespondFn respond)>;

class HttpServer {
 public:
  HttpServer(net::Network& net, net::NodeId node, std::uint16_t port);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Starts listening. Fails if the port is taken.
  Status start();
  void stop();

  // Exact-match route registration; falls back to the default handler,
  // then 404.
  void route(const std::string& target, RequestHandler handler);
  void remove_route(const std::string& target);
  void set_default_handler(RequestHandler handler);

  [[nodiscard]] net::Endpoint endpoint() const { return {node_, port_}; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.value();
  }
  // Transport connections accepted since start; with keep-alive clients
  // this stays well below requests_served (connection reuse).
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_accepted_.value();
  }

 private:
  struct Connection {
    net::StreamPtr stream;
    MessageParser parser{MessageParser::Mode::kRequest};
    // Drain slot for pop_request, so dispatch does not materialize a
    // per-delivery vector the way take_requests() does.
    Request scratch_req;
  };

  void on_accept(net::StreamPtr stream);
  void handle(const Request& req, const std::shared_ptr<Connection>& conn);

  net::Network& net_;
  net::NodeId node_;
  std::uint16_t port_;
  bool listening_ = false;
  // Live connections, so stop() can detach their callbacks (which
  // capture `this`) before the server goes away.
  std::vector<std::weak_ptr<Connection>> connections_;
  std::map<std::string, RequestHandler> routes_;
  RequestHandler default_handler_;
  std::string obs_scope_;
  obs::Counter& requests_served_;
  obs::Counter& connections_accepted_;
  obs::Histogram& request_latency_us_;
};

}  // namespace hcm::http
