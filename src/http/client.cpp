#include "http/client.hpp"

namespace hcm::http {

// One live connection. Requests are serialized (at most one in flight)
// because asynchronous server handlers may finish out of order, and
// HTTP/1.1 responses carry no request correlation.
struct HttpClient::PooledConn {
  net::StreamPtr stream;
  net::Endpoint dest;
  MessageParser parser{MessageParser::Mode::kResponse};
  std::deque<std::pair<Request, ResponseCallback>> queue;
  ResponseCallback inflight;       // callback awaiting a response
  sim::EventId timeout_event = 0;
  bool keep_alive = false;
};

void HttpClient::request(net::Endpoint dest, Request req, ResponseCallback cb) {
  requests_.inc();
  cb = [this, &sched = net_.scheduler(), start = net_.scheduler().now(),
        cb = std::move(cb)](Result<Response> r) {
    latency_us_.observe(sched.now() - start);
    if (!r.is_ok()) errors_.inc();
    cb(std::move(r));
  };
  req.set_header("Host", dest.to_string());
  if (options_.keep_alive) {
    auto it = pool_.find(dest);
    if (it != pool_.end()) {
      if (it->second->stream && it->second->stream->is_open()) {
        send_on(it->second, std::move(req), std::move(cb));
        return;
      }
      pool_.erase(it);  // closed behind our back; reconnect below
    }
  }
  net_.connect(node_, dest,
               [this, dest, req = std::move(req),
                cb = std::move(cb)](Result<net::StreamPtr> stream) mutable {
                 if (!stream.is_ok()) {
                   cb(stream.status());
                   return;
                 }
                 auto conn = make_conn(stream.value(), dest);
                 if (options_.keep_alive) pool_[dest] = conn;
                 send_on(conn, std::move(req), std::move(cb));
               });
}

std::shared_ptr<HttpClient::PooledConn> HttpClient::make_conn(
    net::StreamPtr stream, net::Endpoint dest) {
  auto conn = std::make_shared<PooledConn>();
  conn->stream = std::move(stream);
  conn->dest = dest;
  conn->keep_alive = options_.keep_alive;
  auto& sched = net_.scheduler();

  // The connection owns the stream; the stream's callbacks must hold
  // only weak references back, or the pair keeps each other alive
  // forever. Ownership lives in pool_ (keep-alive) and in the pending
  // request-timeout closure (while a request is in flight).
  std::weak_ptr<PooledConn> weak = conn;

  conn->stream->set_on_close([weak, &sched] {
    auto conn = weak.lock();
    if (!conn) return;
    if (conn->timeout_event != 0) sched.cancel(conn->timeout_event);
    if (conn->inflight) {
      auto cb = std::move(conn->inflight);
      conn->inflight = nullptr;
      cb(unavailable("connection closed before response"));
    }
    for (auto& [r, pending_cb] : conn->queue) {
      pending_cb(unavailable("connection closed"));
    }
    conn->queue.clear();
    conn->stream = nullptr;
  });

  conn->stream->set_on_data([this, weak](const Bytes& data) {
    auto conn = weak.lock();
    if (!conn) return;
    auto status = conn->parser.feed(data);
    if (!status.is_ok()) {
      if (conn->inflight) {
        auto cb = std::move(conn->inflight);
        conn->inflight = nullptr;
        cb(status);
      }
      if (conn->stream) conn->stream->close();
      return;
    }
    for (auto& resp : conn->parser.take_responses()) {
      if (conn->timeout_event != 0) {
        net_.scheduler().cancel(conn->timeout_event);
        conn->timeout_event = 0;
      }
      if (conn->inflight) {
        auto cb = std::move(conn->inflight);
        conn->inflight = nullptr;
        cb(std::move(resp));
      }
      // Next queued request, if any.
      if (!conn->queue.empty() && conn->stream && conn->stream->is_open()) {
        auto [next_req, next_cb] = std::move(conn->queue.front());
        conn->queue.pop_front();
        send_on(conn, std::move(next_req), std::move(next_cb));
      } else if (!conn->keep_alive && conn->stream) {
        conn->stream->close();
      }
    }
  });
  return conn;
}

void HttpClient::send_on(const std::shared_ptr<PooledConn>& conn, Request req,
                         ResponseCallback cb) {
  if (conn->inflight) {
    conn->queue.emplace_back(std::move(req), std::move(cb));
    return;
  }
  if (!conn->stream || !conn->stream->is_open()) {
    cb(unavailable("connection closed"));
    return;
  }
  conn->inflight = std::move(cb);
  conn->stream->send(req.serialize());
  conn->timeout_event = net_.scheduler().after(
      options_.request_timeout, [conn] {
        conn->timeout_event = 0;
        if (conn->inflight) {
          auto pending = std::move(conn->inflight);
          conn->inflight = nullptr;
          pending(timeout("HTTP request timed out"));
          if (conn->stream) conn->stream->close();
        }
      });
}

}  // namespace hcm::http
