#include "http/client.hpp"

namespace hcm::http {

// One live connection. Requests are serialized (at most one in flight)
// because asynchronous server handlers may finish out of order, and
// HTTP/1.1 responses carry no request correlation.
struct HttpClient::PooledConn {
  net::StreamPtr stream;
  net::Endpoint dest;
  MessageParser parser{MessageParser::Mode::kResponse};
  struct Queued {
    Request req;
    ResponseCallback cb;
    sim::SimTime start;
  };
  std::deque<Queued> queue;
  ResponseCallback inflight;       // callback awaiting a response
  sim::SimTime inflight_start = 0; // request() entry time, for latency
  // Delivery scratch: responses are lent to the callback and moved
  // back, so string/header capacities rotate scratch <-> parser slots
  // instead of being reallocated per message.
  Response scratch_resp;
  sim::EventId timeout_event = 0;
  bool keep_alive = false;
};

// Latency/error accounting happens at the point a callback is
// delivered (not via a per-request wrapper closure, which would
// heap-allocate on every call): every path that invokes a callback
// funnels through here or records against the registry-owned metrics
// directly. The result stays owned by the caller (lvalue ref) so the
// hot path can reclaim the Response's string storage afterwards.
void HttpClient::finish(ResponseCallback cb, sim::SimTime start,
                        Result<Response>& r) {
  latency_us_.observe(net_.scheduler().now() - start);
  if (!r.is_ok()) errors_.inc();
  cb(r);
}

void HttpClient::request(net::Endpoint dest, Request req, ResponseCallback cb) {
  requests_.inc();
  const sim::SimTime start = net_.scheduler().now();
  std::string& host = header_slot(req.headers, "Host");
  host.clear();
  dest.append_to(host);
  if (options_.keep_alive) {
    auto it = pool_.find(dest);
    if (it != pool_.end()) {
      if (it->second->stream && it->second->stream->is_open()) {
        send_on(it->second, std::move(req), std::move(cb), start);
        return;
      }
      pool_.erase(it);  // closed behind our back; reconnect below
    }
  }
  net_.connect(node_, dest,
               [this, dest, start, req = std::move(req),
                cb = std::move(cb)](Result<net::StreamPtr> stream) mutable {
                 if (!stream.is_ok()) {
                   Result<Response> r(stream.status());
                   finish(std::move(cb), start, r);
                   return;
                 }
                 auto conn = make_conn(stream.value(), dest);
                 if (options_.keep_alive) pool_[dest] = conn;
                 send_on(conn, std::move(req), std::move(cb), start);
               });
}

std::shared_ptr<HttpClient::PooledConn> HttpClient::make_conn(
    net::StreamPtr stream, net::Endpoint dest) {
  auto conn = std::make_shared<PooledConn>();
  conn->stream = std::move(stream);
  conn->dest = dest;
  conn->keep_alive = options_.keep_alive;
  auto& sched = net_.scheduler();

  // The connection owns the stream; the stream's callbacks must hold
  // only weak references back, or the pair keeps each other alive
  // forever. Ownership lives in pool_ (keep-alive) and in the pending
  // request-timeout closure (while a request is in flight). on_close
  // may fire after the client is gone, so it captures the scheduler
  // and registry-owned metrics, not this.
  std::weak_ptr<PooledConn> weak = conn;

  conn->stream->set_on_close([weak, &sched, &lat = latency_us_,
                              &errs = errors_] {
    auto conn = weak.lock();
    if (!conn) return;
    if (conn->timeout_event != 0) sched.cancel(conn->timeout_event);
    if (conn->inflight) {
      auto cb = std::move(conn->inflight);
      conn->inflight = nullptr;
      lat.observe(sched.now() - conn->inflight_start);
      errs.inc();
      Result<Response> r(unavailable("connection closed before response"));
      cb(r);
    }
    for (auto& q : conn->queue) {
      lat.observe(sched.now() - q.start);
      errs.inc();
      Result<Response> r(unavailable("connection closed"));
      q.cb(r);
    }
    conn->queue.clear();
    conn->stream = nullptr;
  });

  conn->stream->set_on_data([this, weak](BlockStream&& data) {
    auto conn = weak.lock();
    if (!conn) return;
    auto status = conn->parser.feed(std::move(data));
    if (!status.is_ok()) {
      if (conn->inflight) {
        auto cb = std::move(conn->inflight);
        conn->inflight = nullptr;
        Result<Response> r(status);
        finish(std::move(cb), conn->inflight_start, r);
      }
      if (conn->stream) conn->stream->close();
      return;
    }
    while (conn->parser.pop_response(conn->scratch_resp)) {
      if (conn->timeout_event != 0) {
        net_.scheduler().cancel(conn->timeout_event);
        conn->timeout_event = 0;
      }
      if (conn->inflight) {
        auto cb = std::move(conn->inflight);
        conn->inflight = nullptr;
        // Lend the response to the callback, then take it back: unless
        // the callback moved it out, its capacities return to scratch
        // and rotate into the parser's slot ring on the next pop.
        Result<Response> r(std::move(conn->scratch_resp));
        finish(std::move(cb), conn->inflight_start, r);
        if (r.is_ok()) conn->scratch_resp = std::move(r.value());
      }
      // Next queued request, if any.
      if (!conn->queue.empty() && conn->stream && conn->stream->is_open()) {
        auto next = std::move(conn->queue.front());
        conn->queue.pop_front();
        send_on(conn, std::move(next.req), std::move(next.cb), next.start);
      } else if (!conn->keep_alive && conn->stream) {
        conn->stream->close();
      }
    }
  });
  return conn;
}

void HttpClient::send_on(const std::shared_ptr<PooledConn>& conn, Request req,
                         ResponseCallback cb, sim::SimTime start) {
  if (conn->inflight) {
    conn->queue.push_back({std::move(req), std::move(cb), start});
    return;
  }
  if (!conn->stream || !conn->stream->is_open()) {
    Result<Response> r(unavailable("connection closed"));
    finish(std::move(cb), start, r);
    return;
  }
  conn->inflight = std::move(cb);
  conn->inflight_start = start;
  BlockStream out;
  req.serialize_to(out);
  // The request is consumed here; keep its capacities for
  // recycled_request() (bounded so a one-off huge upload isn't hoarded).
  if (req.body.capacity() <= 64 * 1024) spare_req_ = std::move(req);
  conn->stream->send(std::move(out));
  conn->timeout_event = net_.scheduler().after(
      options_.request_timeout,
      [conn, &sched = net_.scheduler(), &lat = latency_us_,
       &errs = errors_] {
        conn->timeout_event = 0;
        if (conn->inflight) {
          auto pending = std::move(conn->inflight);
          conn->inflight = nullptr;
          lat.observe(sched.now() - conn->inflight_start);
          errs.inc();
          Result<Response> r(timeout("HTTP request timed out"));
          pending(r);
          if (conn->stream) conn->stream->close();
        }
      });
}

}  // namespace hcm::http
