#include "http/server.hpp"

#include "common/logging.hpp"
#include "obs/slab.hpp"

namespace hcm::http {

HttpServer::HttpServer(net::Network& net, net::NodeId node, std::uint16_t port)
    : net_(net),
      node_(node),
      port_(port),
      obs_scope_(obs::shard_registry().unique_scope("http.server")),
      requests_served_(
          obs::shard_registry().counter(obs_scope_ + ".requests")),
      connections_accepted_(
          obs::shard_registry().counter(obs_scope_ + ".connections")),
      request_latency_us_(
          obs::shard_registry().histogram(obs_scope_ + ".latency_us")) {}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("HTTP server: no such node");
  auto status =
      n->listen(port_, [this](net::StreamPtr stream) { on_accept(stream); });
  if (!status.is_ok()) return status;
  listening_ = true;
  return Status::ok();
}

void HttpServer::stop() {
  if (!listening_) return;
  if (net::Node* n = net_.node(node_)) n->stop_listening(port_);
  listening_ = false;
  // Sever every accepted connection: their stream callbacks capture
  // `this`, which must never outlive the server.
  for (auto& weak : connections_) {
    if (auto conn = weak.lock(); conn && conn->stream) {
      conn->stream->set_on_data(nullptr);
      conn->stream->close();
      conn->stream = nullptr;
    }
  }
  connections_.clear();
}

void HttpServer::route(const std::string& target, RequestHandler handler) {
  routes_[target] = std::move(handler);
}

void HttpServer::remove_route(const std::string& target) {
  routes_.erase(target);
}

void HttpServer::set_default_handler(RequestHandler handler) {
  default_handler_ = std::move(handler);
}

void HttpServer::on_accept(net::StreamPtr stream) {
  connections_accepted_.inc();
  auto conn = std::make_shared<Connection>();
  conn->stream = stream;
  // Compact dead entries occasionally, then track the new connection.
  std::erase_if(connections_,
                [](const std::weak_ptr<Connection>& w) { return w.expired(); });
  connections_.push_back(conn);
  stream->set_on_close([conn]() mutable { conn->stream = nullptr; });
  stream->set_on_data([this, conn](BlockStream&& data) {
    auto status = conn->parser.feed(std::move(data));
    if (!status.is_ok()) {
      log_warn("http", "dropping connection: ", status.to_string());
      if (conn->stream) conn->stream->close();
      return;
    }
    while (conn->parser.pop_request(conn->scratch_req)) {
      handle(conn->scratch_req, conn);
    }
  });
}

void HttpServer::handle(const Request& req,
                        const std::shared_ptr<Connection>& conn) {
  requests_served_.inc();
  // Respond may fire after the server is gone (async handlers), so it
  // captures the scheduler and the registry-owned histogram, not this.
  auto respond = [conn, keep_alive = req.version == "HTTP/1.1",
                  &sched = net_.scheduler(), &latency = request_latency_us_,
                  start = net_.scheduler().now()](Response&& resp) {
    latency.observe(sched.now() - start);
    if (!conn->stream || !conn->stream->is_open()) return;
    resp.set_header("Server", "hcm-httpd/1.0");
    BlockStream out;
    resp.serialize_to(out);
    conn->stream->send(std::move(out));
    if (!keep_alive) conn->stream->close();
  };

  auto it = routes_.find(req.target);
  if (it != routes_.end()) {
    it->second(req, std::move(respond));
    return;
  }
  // Prefix routes: "/vsg/*" style registered as "/vsg/".
  for (const auto& [prefix, handler] : routes_) {
    if (!prefix.empty() && prefix.back() == '/' &&
        req.target.rfind(prefix, 0) == 0) {
      handler(req, std::move(respond));
      return;
    }
  }
  if (default_handler_) {
    default_handler_(req, std::move(respond));
    return;
  }
  respond(Response::make(404, "Not Found", "no handler for " + req.target));
}

}  // namespace hcm::http
