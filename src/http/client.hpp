// HTTP client with optional keep-alive connection pooling. The paper's
// prototype (Apache SOAP era) opened a connection per call; pooling is
// the knob the bench_ablation_vsg_protocol experiment flips.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "http/message.hpp"
#include "net/network.hpp"

namespace hcm::http {

using ResponseCallback = std::function<void(Result<Response>)>;

class HttpClient {
 public:
  struct Options {
    bool keep_alive = false;  // pool one connection per destination
    sim::Duration request_timeout = sim::seconds(30);
  };

  HttpClient(net::Network& net, net::NodeId node)
      : HttpClient(net, node, Options{}) {}
  HttpClient(net::Network& net, net::NodeId node, Options options)
      : net_(net), node_(node), options_(options) {}
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Issues a request; the callback gets the response or an error
  // (unreachable, refused, timeout, malformed).
  void request(net::Endpoint dest, Request req, ResponseCallback cb);

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] net::Network& network() { return net_; }

 private:
  struct PooledConn;

  void send_on(const std::shared_ptr<PooledConn>& conn, Request req,
               ResponseCallback cb);
  std::shared_ptr<PooledConn> make_conn(net::StreamPtr stream,
                                        net::Endpoint dest);

  net::Network& net_;
  net::NodeId node_;
  Options options_;
  // Owns idle keep-alive connections. The stream's callbacks hold only
  // weak_ptrs back to the connection, so this map (plus any pending
  // request timeout) is what keeps a connection alive.
  std::map<net::Endpoint, std::shared_ptr<PooledConn>> pool_;
};

}  // namespace hcm::http
