// HTTP client with optional keep-alive connection pooling. The paper's
// prototype (Apache SOAP era) opened a connection per call; pooling is
// the knob the bench_ablation_vsg_protocol experiment flips.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "common/inline_fn.hpp"
#include "http/message.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/slab.hpp"

namespace hcm::http {

// Sized to hold the SOAP client's completion lambda (which captures a
// 200-byte CallResultFn) inline — the deepest callback layer on the
// wire path. The result is passed by lvalue reference: the client
// retains ownership of the delivered Response so its string/header
// storage can be recycled into the parser after the callback returns
// (callbacks that want to keep the Response move or copy it out).
using ResponseCallback = SmallFn<void(Result<Response>&), 240>;

class HttpClient {
 public:
  struct Options {
    bool keep_alive = false;  // pool one connection per destination
    sim::Duration request_timeout = sim::seconds(30);
  };

  HttpClient(net::Network& net, net::NodeId node)
      : HttpClient(net, node, Options{}) {}
  // All clients share one metric family ("http.client.*"): a client is
  // per-island plumbing, and callers segment latency by server-side
  // scopes instead. Handles resolve once per instance through
  // obs::shard_registry(), so islands built under a shard binding
  // mutate their own slab (merged at window barriers).
  HttpClient(net::Network& net, net::NodeId node, Options options)
      : net_(net),
        node_(node),
        options_(options),
        requests_(obs::shard_registry().counter("http.client.requests")),
        errors_(obs::shard_registry().counter("http.client.errors")),
        latency_us_(
            obs::shard_registry().histogram("http.client.latency_us")) {}
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Issues a request; the callback gets the response or an error
  // (unreachable, refused, timeout, malformed).
  void request(net::Endpoint dest, Request req, ResponseCallback cb);

  // A Request recycled from a previously sent one (default-constructed
  // on first use): requests are consumed at serialization, so their
  // string/header capacities rotate back here. Hot callers fetch one
  // and fill it with clear/assign to issue requests without per-call
  // allocation.
  [[nodiscard]] Request recycled_request() { return std::move(spare_req_); }

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] net::Network& network() { return net_; }

 private:
  struct PooledConn;

  void send_on(const std::shared_ptr<PooledConn>& conn, Request req,
               ResponseCallback cb, sim::SimTime start);
  void finish(ResponseCallback cb, sim::SimTime start, Result<Response>& r);
  std::shared_ptr<PooledConn> make_conn(net::StreamPtr stream,
                                        net::Endpoint dest);

  net::Network& net_;
  net::NodeId node_;
  Options options_;
  Request spare_req_;  // capacity donor for recycled_request()
  obs::Counter& requests_;
  obs::Counter& errors_;
  obs::Histogram& latency_us_;
  // Owns idle keep-alive connections. The stream's callbacks hold only
  // weak_ptrs back to the connection, so this map (plus any pending
  // request timeout) is what keeps a connection alive.
  std::map<net::Endpoint, std::shared_ptr<PooledConn>> pool_;
};

}  // namespace hcm::http
