// Virtual Service Repository (paper §3.3): the virtual database of
// service locations and descriptions. With the SOAP VSG protocol it is
// "implemented with WSDL and UDDI" — exactly what this wraps: a UDDI
// registry service hosting WSDL documents, one instance per home.
#pragma once

#include <memory>

#include "common/uri.hpp"
#include "core/naming.hpp"
#include "soap/uddi.hpp"

namespace hcm::core {

class VsrServer {
 public:
  VsrServer(net::Network& net, net::NodeId node, std::uint16_t port = 8000,
            std::size_t journal_capacity =
                soap::UddiRegistry::kDefaultJournalCapacity);

  [[nodiscard]] Status start() { return http_.start(); }

  [[nodiscard]] net::Endpoint endpoint() const { return http_.endpoint(); }
  [[nodiscard]] Uri uri() {
    return endpoint_uri(net_, "http", http_.endpoint(), "/uddi");
  }
  [[nodiscard]] const soap::UddiRegistry& registry() const {
    return registry_;
  }

 private:
  net::Network& net_;
  http::HttpServer http_;
  soap::UddiRegistry registry_;
};

// Per-island access to the VSR. (The paper draws one VSR per
// middleware network, all synchronized; a single shared repository is
// the degenerate-but-equivalent deployment we default to, and tests
// exercise gateway failure separately.)
using VsrEntry = soap::RegistryEntry;
using VsrEventSubscription = soap::EventSubscription;
using VsrClient = soap::UddiClient;
using VsrChange = soap::RegistryChange;
using VsrDelta = soap::RegistryDelta;

}  // namespace hcm::core
