// Virtual Service Repository (paper §3.3): the virtual database of
// service locations and descriptions. With the SOAP VSG protocol it is
// "implemented with WSDL and UDDI" — exactly what this wraps: a UDDI
// registry service hosting WSDL documents, one instance per home.
#pragma once

#include <memory>
#include <string>

#include "common/uri.hpp"
#include "core/naming.hpp"
#include "soap/uddi.hpp"
#include "store/vsr_store.hpp"

namespace hcm::core {

class VsrServer {
 public:
  // A non-empty `store_dir` makes the repository durable: the registry
  // writes every journaled change through a store::VsrStore in that
  // directory and, on restart over the same directory, resumes the same
  // epoch/sequence so warm client cursors stay valid. If the store
  // cannot be opened (deep corruption — a bad pack, an unreadable dir)
  // the server degrades to the in-memory registry rather than failing
  // to start; store_open_failed() reports it.
  VsrServer(net::Network& net, net::NodeId node, std::uint16_t port = 8000,
            std::size_t journal_capacity =
                soap::UddiRegistry::kDefaultJournalCapacity,
            std::string store_dir = "");

  [[nodiscard]] Status start() { return http_.start(); }

  [[nodiscard]] net::Endpoint endpoint() const { return http_.endpoint(); }
  [[nodiscard]] Uri uri() {
    return endpoint_uri(net_, "http", http_.endpoint(), "/uddi");
  }
  [[nodiscard]] const soap::UddiRegistry& registry() const {
    return registry_;
  }

  [[nodiscard]] const store::VsrStore* store() const { return store_.get(); }
  [[nodiscard]] bool store_open_failed() const { return store_open_failed_; }

 private:
  net::Network& net_;
  http::HttpServer http_;
  bool store_open_failed_ = false;
  // Declared before registry_: the registry adopts the recovered state
  // during construction and writes through for its whole lifetime.
  std::unique_ptr<store::VsrStore> store_;
  soap::UddiRegistry registry_;
};

// Per-island access to the VSR. (The paper draws one VSR per
// middleware network, all synchronized; a single shared repository is
// the degenerate-but-equivalent deployment we default to, and tests
// exercise gateway failure separately.)
using VsrEntry = soap::RegistryEntry;
using VsrEventSubscription = soap::EventSubscription;
using VsrClient = soap::UddiClient;
using VsrDelta = soap::RegistryDelta;
using VsrChange = soap::RegistryChange;

}  // namespace hcm::core
