// HAVi PCM adapter: converts between the framework's service model and
// the HAVi-like middleware (Registry queries, SE messaging).
#pragma once

#include <map>

#include "core/adapter.hpp"
#include "havi/event_manager.hpp"
#include "havi/registry.hpp"

namespace hcm::core {

class HaviAdapter : public MiddlewareAdapter {
 public:
  // `ms` is the gateway node's messaging system (already started);
  // `registry` is the bus Registry's SEID (on the FAV controller).
  HaviAdapter(havi::MessagingSystem& ms, havi::Seid registry);
  ~HaviAdapter() override;

  [[nodiscard]] std::string middleware_name() const override { return "havi"; }
  void list_services(ServicesFn done) override;
  void invoke(const std::string& service_name, const std::string& method,
              const ValueList& args, InvokeResultFn done) override;
  [[nodiscard]] Status export_service(const LocalService& service,
                                      ServiceHandler handler) override;
  void unexport_service(const std::string& name) override;

  // Event bridge: subscribes the adapter's SE to "<service>.<event>"
  // topics at the Event Manager; emit_event posts the same topics so
  // native subscribers see events of exported server proxies.
  [[nodiscard]] Status watch_events(const LocalService& service,
                                    AdapterEventFn on_event) override;
  void unwatch_events(const std::string& service_name) override;
  void emit_event(const std::string& service_name, const std::string& event,
                  const Value& payload) override;

 private:
  void handle_self(const std::string& op, const ValueList& args,
                   InvokeResultFn done);

  havi::MessagingSystem& ms_;
  havi::Seid self_;  // the adapter's own SE (source of its messages)
  havi::RegistryClient registry_;
  havi::Seid em_seid_;  // Event Manager (same FAV node as the Registry)
  std::map<std::string, havi::RegistryRecord> known_;
  struct Exported {
    havi::Seid seid;
    ServiceHandler handler;  // direct dispatch while registration settles
  };
  std::map<std::string, Exported> exported_;
  struct Watch {
    std::vector<std::string> topics;
    AdapterEventFn fn;
  };
  std::map<std::string, Watch> watches_;  // by service name
};

}  // namespace hcm::core
