// HAVi PCM adapter: converts between the framework's service model and
// the HAVi-like middleware (Registry queries, SE messaging).
#pragma once

#include <map>

#include "core/adapter.hpp"
#include "havi/registry.hpp"

namespace hcm::core {

class HaviAdapter : public MiddlewareAdapter {
 public:
  // `ms` is the gateway node's messaging system (already started);
  // `registry` is the bus Registry's SEID (on the FAV controller).
  HaviAdapter(havi::MessagingSystem& ms, havi::Seid registry);
  ~HaviAdapter() override;

  [[nodiscard]] std::string middleware_name() const override { return "havi"; }
  void list_services(ServicesFn done) override;
  void invoke(const std::string& service_name, const std::string& method,
              const ValueList& args, InvokeResultFn done) override;
  [[nodiscard]] Status export_service(const LocalService& service,
                                      ServiceHandler handler) override;
  void unexport_service(const std::string& name) override;

 private:
  havi::MessagingSystem& ms_;
  havi::Seid self_;  // the adapter's own SE (source of its messages)
  havi::RegistryClient registry_;
  std::map<std::string, havi::RegistryRecord> known_;
  struct Exported {
    havi::Seid seid;
    ServiceHandler handler;  // direct dispatch while registration settles
  };
  std::map<std::string, Exported> exported_;
};

}  // namespace hcm::core
