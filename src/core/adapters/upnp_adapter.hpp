// UPnP PCM adapter — the paper's §5 claim made concrete: "We can
// connect the UPnP service to other middleware by developing a PCM for
// UPnP." Nothing else in the framework changes.
#pragma once

#include <map>
#include <memory>

#include "core/adapter.hpp"
#include "upnp/upnp.hpp"

namespace hcm::core {

class UpnpAdapter : public MiddlewareAdapter {
 public:
  UpnpAdapter(net::Network& net, net::NodeId gateway_node,
              std::uint16_t device_http_port = 5100,
              sim::Duration search_wait = sim::milliseconds(200));
  ~UpnpAdapter() override;

  [[nodiscard]] std::string middleware_name() const override { return "upnp"; }
  void list_services(ServicesFn done) override;
  void invoke(const std::string& service_name, const std::string& method,
              const ValueList& args, InvokeResultFn done) override;
  [[nodiscard]] Status export_service(const LocalService& service,
                                      ServiceHandler handler) override;
  void unexport_service(const std::string& name) override;

  // Event bridge: watch_events GENA-subscribes at the device, NOTIFYs
  // flow back to the control point's callback server; emit_event posts
  // remote events to the gateway device's GENA subscribers.
  [[nodiscard]] Status watch_events(const LocalService& service,
                                    AdapterEventFn on_event) override;
  void unwatch_events(const std::string& service_name) override;
  void emit_event(const std::string& service_name, const std::string& event,
                  const Value& payload) override;

 private:
  net::Network& net_;
  net::NodeId node_;
  sim::Duration search_wait_;
  upnp::ControlPoint control_point_;
  // Gateway-hosted device carrying the exported server proxies.
  upnp::UpnpDevice gateway_device_;
  bool device_started_ = false;
  std::map<std::string, upnp::ServiceDescription> known_;
  std::map<std::string, ServiceHandler> exported_;
  std::map<std::string, std::string> event_sids_;  // service -> GENA SID
};

}  // namespace hcm::core
