// Internet Mail PCM adapter (paper Fig. 3 includes a Mail PCM).
// Conversions:
//   CP direction: the mail account becomes a "MailService" with
//     sendMail(to, subject, body) — any middleware can send email.
//   SP direction: a foreign service bound to mailbox "svc-<name>";
//     an arriving message invokes it (subject = method, body = one
//     argument per line), and the result is mailed back to the sender.
//     The mailbox is polled — HTTP/SMTP give no push, which is the
//     §4.2 asynchronous-notification limitation in miniature.
#pragma once

#include <map>
#include <memory>

#include "core/adapter.hpp"
#include "mail/mail.hpp"

namespace hcm::core {

class MailAdapter : public MiddlewareAdapter {
 public:
  MailAdapter(net::Network& net, net::NodeId gateway_node,
              net::NodeId mail_server, std::string account,
              sim::Duration poll_interval = sim::seconds(5));
  ~MailAdapter() override;

  [[nodiscard]] std::string middleware_name() const override { return "mail"; }
  void list_services(ServicesFn done) override;
  void invoke(const std::string& service_name, const std::string& method,
              const ValueList& args, InvokeResultFn done) override;
  [[nodiscard]] Status export_service(const LocalService& service,
                                      ServiceHandler handler) override;
  void unexport_service(const std::string& name) override;

  // Event bridge: messageArrived fires when the account's mailbox
  // receives a message (polled — mail gives no push); emit_event
  // mails remote events into the "evt-<account>" mailbox.
  [[nodiscard]] Status watch_events(const LocalService& service,
                                    AdapterEventFn on_event) override;
  void unwatch_events(const std::string& service_name) override;
  void emit_event(const std::string& service_name, const std::string& event,
                  const Value& payload) override;

  // Parses one body line into a typed argument (int, double, bool,
  // else string). Exposed for tests.
  static Value parse_arg(const std::string& line);

  [[nodiscard]] const std::string& account() const { return account_; }

 private:
  void on_service_mail(const std::string& service_name,
                       const mail::Message& m);

  net::Network& net_;
  net::NodeId node_;
  net::NodeId server_;
  std::string account_;
  sim::Duration poll_interval_;
  mail::MailClient sender_;
  struct Exported {
    ServiceHandler handler;
    std::unique_ptr<mail::MailClient> watcher;
  };
  std::map<std::string, Exported> exported_;
  std::unique_ptr<mail::MailClient> account_watcher_;  // event bridge
};

}  // namespace hcm::core
