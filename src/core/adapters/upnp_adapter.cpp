#include "core/adapters/upnp_adapter.hpp"

#include "obs/instrument.hpp"

namespace hcm::core {

UpnpAdapter::UpnpAdapter(net::Network& net, net::NodeId gateway_node,
                         std::uint16_t device_http_port,
                         sim::Duration search_wait)
    : net_(net),
      node_(gateway_node),
      search_wait_(search_wait),
      control_point_(net, gateway_node),
      gateway_device_(net, gateway_node, "hcm-gateway", device_http_port) {}

UpnpAdapter::~UpnpAdapter() = default;

void UpnpAdapter::list_services(ServicesFn done) {
  control_point_.search(
      search_wait_,
      [this, done = std::move(done)](std::vector<upnp::DeviceDescription> devices) {
        std::vector<LocalService> services;
        for (auto& device : devices) {
          const bool own_device = device.udn == gateway_device_.udn();
          for (auto& svc : device.services) {
            known_[svc.service_id] = svc;
            // Services on our own gateway device are imported server
            // proxies, not local UPnP services.
            if (own_device || exported_.count(svc.service_id) != 0) continue;
            LocalService service;
            service.name = svc.service_id;
            service.interface = svc.interface;
            service.attributes["upnp.device"] = Value(device.friendly_name);
            services.push_back(std::move(service));
          }
        }
        done(std::move(services));
      });
}

void UpnpAdapter::invoke(const std::string& service_name,
                         const std::string& method, const ValueList& args,
                         InvokeResultFn done) {
  obs::ScopedInvoke obs_invoke(net_.scheduler(), "upnp", service_name, method);
  done = obs_invoke.wrap(std::move(done));
  // Server proxies hosted on the gateway device dispatch directly.
  if (auto exported = exported_.find(service_name);
      exported != exported_.end()) {
    exported->second(method, args, std::move(done));
    return;
  }
  auto it = known_.find(service_name);
  if (it != known_.end()) {
    control_point_.invoke(it->second, method, args, std::move(done));
    return;
  }
  // Re-discover once and retry.
  list_services([this, service_name, method, args, done = std::move(done)](
                    Result<std::vector<LocalService>>) {
    auto found = known_.find(service_name);
    if (found == known_.end()) {
      done(not_found("no UPnP service: " + service_name));
      return;
    }
    control_point_.invoke(found->second, method, args, std::move(done));
  });
}

Status UpnpAdapter::export_service(const LocalService& service,
                                   ServiceHandler handler) {
  if (exported_.count(service.name) != 0) {
    return already_exists("already exported to UPnP: " + service.name);
  }
  if (!device_started_) {
    auto status = gateway_device_.start();
    if (!status.is_ok()) return status;
    device_started_ = true;
  }
  gateway_device_.add_service(service.name, service.interface, handler);
  exported_[service.name] = std::move(handler);
  return Status::ok();
}

void UpnpAdapter::unexport_service(const std::string& name) {
  // UpnpDevice keeps the mount (devices rarely retract services); the
  // adapter stops advertising it as importable.
  exported_.erase(name);
  known_.erase(name);
}

Status UpnpAdapter::watch_events(const LocalService& service,
                                 AdapterEventFn on_event) {
  if (event_sids_.count(service.name) != 0) return Status::ok();
  auto it = known_.find(service.name);
  if (it == known_.end()) {
    return not_found("no UPnP service to watch: " + service.name);
  }
  // Reserve the slot now so a second watch while SUBSCRIBE is in flight
  // stays idempotent; the SID fills in when the device answers.
  event_sids_[service.name] = "";
  control_point_.subscribe(
      it->second,
      [name = service.name, on_event = std::move(on_event)](
          const std::string&, const std::string& event, const Value& payload) {
        on_event(name, event, payload);
      },
      [this, name = service.name](Result<std::string> sid) {
        auto slot = event_sids_.find(name);
        if (slot == event_sids_.end()) return;  // unwatched meanwhile
        if (sid.is_ok()) {
          slot->second = std::move(sid).take();
        } else {
          event_sids_.erase(slot);
        }
      });
  return Status::ok();
}

void UpnpAdapter::unwatch_events(const std::string& service_name) {
  auto sid = event_sids_.find(service_name);
  if (sid == event_sids_.end()) return;
  auto desc = known_.find(service_name);
  if (desc != known_.end() && !sid->second.empty()) {
    control_point_.unsubscribe(desc->second, sid->second);
  }
  event_sids_.erase(sid);
}

void UpnpAdapter::emit_event(const std::string& service_name,
                             const std::string& event, const Value& payload) {
  if (!device_started_ || exported_.count(service_name) == 0) return;
  gateway_device_.post_event(service_name, event, payload);
}

}  // namespace hcm::core
