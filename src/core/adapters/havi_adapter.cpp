#include "core/adapters/havi_adapter.hpp"

namespace hcm::core {

HaviAdapter::HaviAdapter(havi::MessagingSystem& ms, havi::Seid registry)
    : ms_(ms),
      self_(ms.register_element(
          [](const std::string&, const ValueList&, InvokeResultFn done) {
            done(unimplemented("PCM adapter SE takes no calls"));
          })),
      registry_(ms, self_, registry) {}

HaviAdapter::~HaviAdapter() { ms_.unregister_element(self_); }

void HaviAdapter::list_services(ServicesFn done) {
  registry_.get_elements(
      ValueMap{{havi::kAttrSeType, Value("FCM")}},
      [this, done = std::move(done)](
          Result<std::vector<havi::RegistryRecord>> records) {
        if (!records.is_ok()) {
          done(records.status());
          return;
        }
        std::vector<LocalService> services;
        for (auto& record : records.value()) {
          auto name_it = record.attributes.find(havi::kAttrName);
          auto iface_it = record.attributes.find(havi::kAttrInterface);
          if (name_it == record.attributes.end() ||
              iface_it == record.attributes.end() ||
              !name_it->second.is_string()) {
            continue;  // FCM without framework-usable description
          }
          auto iface = interface_from_value(iface_it->second);
          if (!iface.is_ok()) continue;
          const std::string name = name_it->second.as_string();
          known_[name] = record;
          auto imported = record.attributes.find("hcm.imported");
          if (imported != record.attributes.end() &&
              imported->second == Value(true)) {
            continue;
          }
          LocalService service;
          service.name = name;
          service.interface = std::move(iface).take();
          service.attributes = record.attributes;
          services.push_back(std::move(service));
        }
        done(std::move(services));
      });
}

void HaviAdapter::invoke(const std::string& service_name,
                         const std::string& method, const ValueList& args,
                         InvokeResultFn done) {
  // Server proxies exported by this adapter dispatch directly (their
  // registry record may still be in flight).
  if (auto exported = exported_.find(service_name);
      exported != exported_.end()) {
    exported->second.handler(method, args, std::move(done));
    return;
  }
  auto it = known_.find(service_name);
  if (it != known_.end()) {
    ms_.send_request(self_, it->second.seid, method, args, std::move(done));
    return;
  }
  // Refresh from the registry, then retry once.
  list_services([this, service_name, method, args, done = std::move(done)](
                    Result<std::vector<LocalService>> r) {
    if (!r.is_ok()) {
      done(r.status());
      return;
    }
    auto found = known_.find(service_name);
    if (found == known_.end()) {
      done(not_found("no HAVi FCM: " + service_name));
      return;
    }
    ms_.send_request(self_, found->second.seid, method, args, std::move(done));
  });
}

Status HaviAdapter::export_service(const LocalService& service,
                                   ServiceHandler handler) {
  if (exported_.count(service.name) != 0) {
    return already_exists("already exported to HAVi: " + service.name);
  }
  // The server proxy is a plain software element whose handler is the
  // generated forwarder.
  havi::Seid seid = ms_.register_element(handler);
  ValueMap attrs{
      {havi::kAttrSeType, Value("FCM")},
      {havi::kAttrDeviceClass, Value("REMOTE")},
      {havi::kAttrName, Value(service.name)},
      {havi::kAttrInterface, interface_to_value(service.interface)},
      {"hcm.imported", Value(true)},
  };
  registry_.register_element(seid, attrs, [](const Status&) {});
  exported_[service.name] = Exported{seid, std::move(handler)};
  return Status::ok();
}

void HaviAdapter::unexport_service(const std::string& name) {
  auto it = exported_.find(name);
  if (it == exported_.end()) return;
  registry_.unregister_element(it->second.seid, [](const Status&) {});
  ms_.unregister_element(it->second.seid);
  exported_.erase(it);
}

}  // namespace hcm::core
