#include "core/adapters/havi_adapter.hpp"

#include "obs/instrument.hpp"

namespace hcm::core {

HaviAdapter::HaviAdapter(havi::MessagingSystem& ms, havi::Seid registry)
    : ms_(ms),
      self_(ms.register_element([this](const std::string& op,
                                       const ValueList& args,
                                       InvokeResultFn done) {
        handle_self(op, args, std::move(done));
      })),
      registry_(ms, self_, registry),
      em_seid_(havi::Seid{registry.node, havi::kEventManagerHandle}) {}

HaviAdapter::~HaviAdapter() { ms_.unregister_element(self_); }

void HaviAdapter::handle_self(const std::string& op, const ValueList& args,
                              InvokeResultFn done) {
  // Event Manager notifications arrive as op "event" with
  // args ["<service>.<event>", payload].
  if (op == "event" && args.size() == 2 && args[0].is_string()) {
    const std::string& topic = args[0].as_string();
    auto dot = topic.find('.');
    if (dot != std::string::npos) {
      auto it = watches_.find(topic.substr(0, dot));
      if (it != watches_.end() && it->second.fn) {
        it->second.fn(topic.substr(0, dot), topic.substr(dot + 1), args[1]);
      }
    }
    done(Value());
    return;
  }
  done(unimplemented("PCM adapter SE takes no calls"));
}

void HaviAdapter::list_services(ServicesFn done) {
  registry_.get_elements(
      ValueMap{{havi::kAttrSeType, Value("FCM")}},
      [this, done = std::move(done)](
          Result<std::vector<havi::RegistryRecord>> records) {
        if (!records.is_ok()) {
          done(records.status());
          return;
        }
        std::vector<LocalService> services;
        for (auto& record : records.value()) {
          auto name_it = record.attributes.find(havi::kAttrName);
          auto iface_it = record.attributes.find(havi::kAttrInterface);
          if (name_it == record.attributes.end() ||
              iface_it == record.attributes.end() ||
              !name_it->second.is_string()) {
            continue;  // FCM without framework-usable description
          }
          auto iface = interface_from_value(iface_it->second);
          if (!iface.is_ok()) continue;
          const std::string name = name_it->second.as_string();
          known_[name] = record;
          auto imported = record.attributes.find("hcm.imported");
          if (imported != record.attributes.end() &&
              imported->second == Value(true)) {
            continue;
          }
          LocalService service;
          service.name = name;
          service.interface = std::move(iface).take();
          service.attributes = record.attributes;
          services.push_back(std::move(service));
        }
        done(std::move(services));
      });
}

void HaviAdapter::invoke(const std::string& service_name,
                         const std::string& method, const ValueList& args,
                         InvokeResultFn done) {
  obs::ScopedInvoke obs_invoke(ms_.network().scheduler(), "havi", service_name,
                               method);
  done = obs_invoke.wrap(std::move(done));
  // Server proxies exported by this adapter dispatch directly (their
  // registry record may still be in flight).
  if (auto exported = exported_.find(service_name);
      exported != exported_.end()) {
    exported->second.handler(method, args, std::move(done));
    return;
  }
  auto it = known_.find(service_name);
  if (it != known_.end()) {
    ms_.send_request(self_, it->second.seid, method, args, std::move(done));
    return;
  }
  // Refresh from the registry, then retry once.
  list_services([this, service_name, method, args, done = std::move(done)](
                    Result<std::vector<LocalService>> r) {
    if (!r.is_ok()) {
      done(r.status());
      return;
    }
    auto found = known_.find(service_name);
    if (found == known_.end()) {
      done(not_found("no HAVi FCM: " + service_name));
      return;
    }
    ms_.send_request(self_, found->second.seid, method, args, std::move(done));
  });
}

Status HaviAdapter::export_service(const LocalService& service,
                                   ServiceHandler handler) {
  if (exported_.count(service.name) != 0) {
    return already_exists("already exported to HAVi: " + service.name);
  }
  // The server proxy is a plain software element whose handler is the
  // generated forwarder.
  havi::Seid seid = ms_.register_element(handler);
  ValueMap attrs{
      {havi::kAttrSeType, Value("FCM")},
      {havi::kAttrDeviceClass, Value("REMOTE")},
      {havi::kAttrName, Value(service.name)},
      {havi::kAttrInterface, interface_to_value(service.interface)},
      {"hcm.imported", Value(true)},
  };
  registry_.register_element(seid, attrs, [](const Status&) {});
  exported_[service.name] = Exported{seid, std::move(handler)};
  return Status::ok();
}

void HaviAdapter::unexport_service(const std::string& name) {
  auto it = exported_.find(name);
  if (it == exported_.end()) return;
  registry_.unregister_element(it->second.seid, [](const Status&) {});
  ms_.unregister_element(it->second.seid);
  exported_.erase(it);
}

Status HaviAdapter::watch_events(const LocalService& service,
                                 AdapterEventFn on_event) {
  if (watches_.count(service.name) != 0) return Status::ok();
  if (service.interface.events.empty()) {
    return unimplemented("HAVi FCM " + service.name + " declares no events");
  }
  Watch watch;
  watch.fn = std::move(on_event);
  havi::EventClient events(ms_, self_, em_seid_);
  for (const auto& ev : service.interface.events) {
    const std::string topic = service.name + "." + ev.name;
    events.subscribe(topic, [](const Status&) {});
    watch.topics.push_back(topic);
  }
  watches_[service.name] = std::move(watch);
  return Status::ok();
}

void HaviAdapter::unwatch_events(const std::string& service_name) {
  auto it = watches_.find(service_name);
  if (it == watches_.end()) return;
  havi::EventClient events(ms_, self_, em_seid_);
  for (const auto& topic : it->second.topics) {
    events.unsubscribe(topic, [](const Status&) {});
  }
  watches_.erase(it);
}

void HaviAdapter::emit_event(const std::string& service_name,
                             const std::string& event, const Value& payload) {
  // Posting through the Event Manager lets native HAVi subscribers of
  // the exported server proxy receive the remote event.
  havi::EventClient events(ms_, self_, em_seid_);
  events.post(service_name + "." + event, payload);
}

}  // namespace hcm::core
