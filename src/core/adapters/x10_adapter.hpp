// X10 PCM adapter. X10 is the most asymmetric middleware in the paper's
// prototype: devices cannot describe themselves (no discovery — the
// adapter is configured with a device table), and the powerline is a
// one-way command medium. Conversions:
//   CP direction: each configured module becomes an "X10Switchable"
//     service (turnOn/turnOff/dim/bright) driven through the CM11A.
//   SP direction: a foreign service is bound to a virtual unit code on
//     the export house; ON/OFF commands observed on the powerline for
//     that unit (from remotes, sensors, other controllers) invoke the
//     service's mapped methods. This is exactly how the paper's
//     Universal Remote Controller drives Jini and HAVi devices.
#pragma once

#include <map>
#include <vector>

#include "core/adapter.hpp"
#include "x10/cm11a.hpp"

namespace hcm::core {

struct X10DeviceConfig {
  std::string name;        // deployed service name ("desk-lamp")
  x10::HouseCode house = x10::HouseCode::kA;
  int unit = 1;
  bool dimmable = false;   // lamp module vs appliance module
};

class X10Adapter : public MiddlewareAdapter {
 public:
  X10Adapter(net::Network& net, x10::Cm11aController& cm11a,
             std::vector<X10DeviceConfig> devices,
             x10::HouseCode export_house = x10::HouseCode::kP);
  ~X10Adapter() override;

  [[nodiscard]] std::string middleware_name() const override { return "x10"; }
  void list_services(ServicesFn done) override;
  void invoke(const std::string& service_name, const std::string& method,
              const ValueList& args, InvokeResultFn done) override;
  [[nodiscard]] Status export_service(const LocalService& service,
                                      ServiceHandler handler) override;
  void unexport_service(const std::string& name) override;

  // Event bridge: a module's stateChanged fires when an *external*
  // transmitter (remote, sensor, another controller) switches it on the
  // powerline; emit_event re-transmits stateChanged of an exported
  // foreign service as ON/OFF on its virtual unit.
  [[nodiscard]] Status watch_events(const LocalService& service,
                                    AdapterEventFn on_event) override;
  void unwatch_events(const std::string& service_name) override;
  void emit_event(const std::string& service_name, const std::string& event,
                  const Value& payload) override;

  // The virtual unit a foreign service was bound to (for remotes/UIs).
  [[nodiscard]] Result<int> unit_for(const std::string& service_name) const;
  [[nodiscard]] x10::HouseCode export_house() const { return export_house_; }

  // The native interface X10 modules are exposed under.
  static InterfaceDesc switchable_interface(bool dimmable);

 private:
  struct Binding {
    int unit = 0;
    std::string on_method;
    std::string off_method;
    ServiceHandler handler;
  };
  void on_observed(const x10::ObservedCommand& cmd);
  static std::string pick_method(const LocalService& service,
                                 const char* hint_attr, bool for_on);

  net::Network& net_;
  x10::Cm11aController& cm11a_;
  std::map<std::string, X10DeviceConfig> devices_;
  x10::HouseCode export_house_;
  std::map<std::string, Binding> bindings_;   // by service name
  std::map<int, std::string> unit_to_name_;
  std::map<std::string, AdapterEventFn> watched_;  // by module name
  int next_unit_ = 1;
};

}  // namespace hcm::core
