// Jini PCM adapter: converts between the framework's service model and
// the Jini-like middleware (lookup service, leases, RMI-like calls).
#pragma once

#include <map>
#include <memory>

#include "core/adapter.hpp"
#include "jini/exporter.hpp"
#include "jini/registrar.hpp"

namespace hcm::core {

class JiniAdapter : public MiddlewareAdapter {
 public:
  JiniAdapter(net::Network& net, net::NodeId gateway_node,
              net::Endpoint lookup, std::uint16_t export_port = 4170);
  ~JiniAdapter() override;

  [[nodiscard]] Status start();

  [[nodiscard]] std::string middleware_name() const override { return "jini"; }
  void list_services(ServicesFn done) override;
  void invoke(const std::string& service_name, const std::string& method,
              const ValueList& args, InvokeResultFn done) override;
  [[nodiscard]] Status export_service(const LocalService& service,
                                      ServiceHandler handler) override;
  void unexport_service(const std::string& name) override;

  // Event bridge: registers a remote-event listener with the native
  // service (its "notify" method, the Jini remote-event pattern);
  // emit_event fires serviceEvent at listeners local clients registered
  // on an exported server proxy.
  [[nodiscard]] Status watch_events(const LocalService& service,
                                    AdapterEventFn on_event) override;
  void unwatch_events(const std::string& service_name) override;
  void emit_event(const std::string& service_name, const std::string& event,
                  const Value& payload) override;

 private:
  jini::Proxy* proxy_for(const jini::ServiceItem& item);

  net::Network& net_;
  net::NodeId node_;
  jini::LookupClient lookup_;
  jini::Exporter exporter_;
  // Known local services by deployed name (refreshed on list_services).
  std::map<std::string, jini::ServiceItem> known_;
  std::map<std::string, std::unique_ptr<jini::Proxy>> proxies_;
  struct Exported {
    std::string service_id;
    ServiceHandler handler;  // direct dispatch while the join settles
    std::unique_ptr<jini::Registrar> registrar;
    // Listeners local Jini clients registered via the synthesized
    // notify/cancelNotify surface of the server proxy.
    std::map<std::int64_t, std::unique_ptr<jini::Proxy>> listeners;
    std::int64_t next_listener = 1;
  };
  std::map<std::string, Exported> exported_;
  std::uint64_t next_export_ = 1;
  struct Watch {
    std::string listener_id;        // exported listener object
    std::int64_t registration = 0;  // id the service's notify returned
  };
  std::map<std::string, Watch> watches_;  // by service name
  std::uint64_t next_watch_ = 1;
};

}  // namespace hcm::core
