// Jini PCM adapter: converts between the framework's service model and
// the Jini-like middleware (lookup service, leases, RMI-like calls).
#pragma once

#include <map>
#include <memory>

#include "core/adapter.hpp"
#include "jini/exporter.hpp"
#include "jini/registrar.hpp"

namespace hcm::core {

class JiniAdapter : public MiddlewareAdapter {
 public:
  JiniAdapter(net::Network& net, net::NodeId gateway_node,
              net::Endpoint lookup, std::uint16_t export_port = 4170);
  ~JiniAdapter() override;

  [[nodiscard]] Status start();

  [[nodiscard]] std::string middleware_name() const override { return "jini"; }
  void list_services(ServicesFn done) override;
  void invoke(const std::string& service_name, const std::string& method,
              const ValueList& args, InvokeResultFn done) override;
  [[nodiscard]] Status export_service(const LocalService& service,
                                      ServiceHandler handler) override;
  void unexport_service(const std::string& name) override;

 private:
  jini::Proxy* proxy_for(const jini::ServiceItem& item);

  net::Network& net_;
  net::NodeId node_;
  jini::LookupClient lookup_;
  jini::Exporter exporter_;
  // Known local services by deployed name (refreshed on list_services).
  std::map<std::string, jini::ServiceItem> known_;
  std::map<std::string, std::unique_ptr<jini::Proxy>> proxies_;
  struct Exported {
    std::string service_id;
    ServiceHandler handler;  // direct dispatch while the join settles
    std::unique_ptr<jini::Registrar> registrar;
  };
  std::map<std::string, Exported> exported_;
  std::uint64_t next_export_ = 1;
};

}  // namespace hcm::core
