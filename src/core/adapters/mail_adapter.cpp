#include "core/adapters/mail_adapter.hpp"

#include "obs/instrument.hpp"

#include <charconv>

#include "common/strings.hpp"

namespace hcm::core {

MailAdapter::MailAdapter(net::Network& net, net::NodeId gateway_node,
                         net::NodeId mail_server, std::string account,
                         sim::Duration poll_interval)
    : net_(net),
      node_(gateway_node),
      server_(mail_server),
      account_(std::move(account)),
      poll_interval_(poll_interval),
      sender_(net, gateway_node, mail_server) {}

MailAdapter::~MailAdapter() = default;

void MailAdapter::list_services(ServicesFn done) {
  std::vector<LocalService> services;
  LocalService service;
  service.name = "mail-" + account_;
  service.interface = InterfaceDesc{
      "MailService",
      {MethodDesc{"sendMail",
                  {{"to", ValueType::kString},
                   {"subject", ValueType::kString},
                   {"body", ValueType::kString}},
                  ValueType::kBool,
                  false}}};
  service.interface.events.push_back(
      MethodDesc{"messageArrived",
                 {{"from", ValueType::kString},
                  {"subject", ValueType::kString}},
                 ValueType::kNull,
                 true});
  services.push_back(std::move(service));
  net_.scheduler().after(0, [services = std::move(services),
                             done = std::move(done)]() mutable {
    done(std::move(services));
  });
}

void MailAdapter::invoke(const std::string& service_name,
                         const std::string& method, const ValueList& args,
                         InvokeResultFn done) {
  obs::ScopedInvoke obs_invoke(net_.scheduler(), "mail", service_name, method);
  done = obs_invoke.wrap(std::move(done));
  // Imported services dispatch through their server proxy directly
  // (programmatic equivalent of mailing the service mailbox, minus the
  // polling latency).
  if (auto exported = exported_.find(service_name);
      exported != exported_.end()) {
    exported->second.handler(method, args, std::move(done));
    return;
  }
  if (service_name != "mail-" + account_ || method != "sendMail") {
    net_.scheduler().after(0, [service_name, method, done = std::move(done)] {
      done(not_found("mail adapter: no " + service_name + "." + method));
    });
    return;
  }
  if (args.size() != 3 || !args[0].is_string() || !args[1].is_string() ||
      !args[2].is_string()) {
    net_.scheduler().after(0, [done = std::move(done)] {
      done(invalid_argument("sendMail(to, subject, body)"));
    });
    return;
  }
  mail::Message m;
  m.from = account_;
  m.to = args[0].as_string();
  m.subject = args[1].as_string();
  m.body = args[2].as_string();
  sender_.send(m, [done = std::move(done)](const Status& s) {
    if (s.is_ok()) {
      done(Value(true));
    } else {
      done(s);
    }
  });
}

Value MailAdapter::parse_arg(const std::string& line) {
  auto t = trim(line);
  if (t == "true") return Value(true);
  if (t == "false") return Value(false);
  std::int64_t i = 0;
  auto [ip, iec] = std::from_chars(t.data(), t.data() + t.size(), i);
  if (iec == std::errc{} && ip == t.data() + t.size()) return Value(i);
  double d = 0;
  auto [dp, dec] = std::from_chars(t.data(), t.data() + t.size(), d);
  if (dec == std::errc{} && dp == t.data() + t.size()) return Value(d);
  return Value(std::string(t));
}

Status MailAdapter::export_service(const LocalService& service,
                                   ServiceHandler handler) {
  if (exported_.count(service.name) != 0) {
    return already_exists("already exported to mail: " + service.name);
  }
  Exported exported;
  exported.handler = std::move(handler);
  exported.watcher =
      std::make_unique<mail::MailClient>(net_, node_, server_);
  exported.watcher->watch(
      "svc-" + service.name, poll_interval_,
      [this, name = service.name](const mail::Message& m) {
        on_service_mail(name, m);
      });
  exported_[service.name] = std::move(exported);
  return Status::ok();
}

void MailAdapter::unexport_service(const std::string& name) {
  exported_.erase(name);
}

Status MailAdapter::watch_events(const LocalService& service,
                                 AdapterEventFn on_event) {
  if (service.name != "mail-" + account_) {
    return not_found("mail adapter: no local service " + service.name);
  }
  if (account_watcher_ != nullptr) return Status::ok();
  account_watcher_ = std::make_unique<mail::MailClient>(net_, node_, server_);
  account_watcher_->watch(
      account_, poll_interval_,
      [name = service.name, on_event = std::move(on_event)](
          const mail::Message& m) {
        on_event(name, "messageArrived",
                 Value(ValueMap{{"from", Value(m.from)},
                                {"subject", Value(m.subject)}}));
      });
  return Status::ok();
}

void MailAdapter::unwatch_events(const std::string& service_name) {
  if (service_name != "mail-" + account_) return;
  account_watcher_.reset();
}

void MailAdapter::emit_event(const std::string& service_name,
                             const std::string& event, const Value& payload) {
  // Native re-emission: remote events become messages in the
  // "evt-<account>" mailbox, where any mail client can poll them.
  mail::Message m;
  m.from = service_name;
  m.to = "evt-" + account_;
  m.subject = service_name + "." + event;
  m.body = payload.to_string();
  sender_.send(m, [](const Status&) {});
}

void MailAdapter::on_service_mail(const std::string& service_name,
                                  const mail::Message& m) {
  auto it = exported_.find(service_name);
  if (it == exported_.end()) return;
  const std::string method = std::string(trim(m.subject));
  ValueList args;
  if (!m.body.empty()) {
    for (const auto& line : split(m.body, '\n')) {
      if (!trim(line).empty()) args.push_back(parse_arg(line));
    }
  }
  it->second.handler(
      method, args,
      [this, reply_to = m.from, method](Result<Value> result) {
        if (reply_to.empty()) return;
        mail::Message reply;
        reply.from = account_;
        reply.to = reply_to;
        reply.subject = "Re: " + method;
        reply.body = result.is_ok() ? result.value().to_string()
                                    : "ERROR " + result.status().to_string();
        sender_.send(reply, [](const Status&) {});
      });
}

}  // namespace hcm::core
