#include "core/adapters/x10_adapter.hpp"

#include "obs/instrument.hpp"

#include <span>

#include "common/logging.hpp"

namespace hcm::core {

InterfaceDesc X10Adapter::switchable_interface(bool dimmable) {
  InterfaceDesc iface{
      "X10Switchable",
      {
          MethodDesc{"turnOn", {}, ValueType::kBool, false},
          MethodDesc{"turnOff", {}, ValueType::kBool, false},
          MethodDesc{"getAddress", {}, ValueType::kString, false},
      }};
  if (dimmable) {
    iface.methods.push_back(MethodDesc{
        "dim", {{"steps", ValueType::kInt}}, ValueType::kBool, false});
    iface.methods.push_back(MethodDesc{
        "bright", {{"steps", ValueType::kInt}}, ValueType::kBool, false});
  }
  // Observed powerline state flips (from remotes/sensors/other
  // controllers) surface as a stateChanged event.
  iface.events.push_back(MethodDesc{
      "stateChanged", {{"on", ValueType::kBool}}, ValueType::kNull, true});
  return iface;
}

X10Adapter::X10Adapter(net::Network& net, x10::Cm11aController& cm11a,
                       std::vector<X10DeviceConfig> devices,
                       x10::HouseCode export_house)
    : net_(net), cm11a_(cm11a), export_house_(export_house) {
  for (auto& d : devices) devices_[d.name] = d;
  cm11a_.set_observer(
      [this](const x10::ObservedCommand& cmd) { on_observed(cmd); });
}

X10Adapter::~X10Adapter() { cm11a_.set_observer(nullptr); }

void X10Adapter::list_services(ServicesFn done) {
  // X10 has no discovery protocol: the device table is configuration,
  // so listing is synchronous — but completes via the scheduler to keep
  // the adapter contract uniformly asynchronous.
  std::vector<LocalService> services;
  for (const auto& [name, config] : devices_) {
    LocalService service;
    service.name = name;
    service.interface = switchable_interface(config.dimmable);
    service.attributes["x10.address"] =
        Value(x10::format_address(config.house, config.unit));
    services.push_back(std::move(service));
  }
  net_.scheduler().after(0, [services = std::move(services),
                             done = std::move(done)]() mutable {
    done(std::move(services));
  });
}

void X10Adapter::invoke(const std::string& service_name,
                        const std::string& method, const ValueList& args,
                        InvokeResultFn done) {
  obs::ScopedInvoke obs_invoke(net_.scheduler(), "x10", service_name, method);
  done = obs_invoke.wrap(std::move(done));
  // Imported services bound to virtual units dispatch through their
  // server-proxy handler (programmatic equivalent of the powerline
  // command path).
  if (auto binding = bindings_.find(service_name);
      binding != bindings_.end()) {
    binding->second.handler(method, args, std::move(done));
    return;
  }
  auto it = devices_.find(service_name);
  if (it == devices_.end()) {
    net_.scheduler().after(0, [service_name, done = std::move(done)] {
      done(not_found("no X10 module: " + service_name));
    });
    return;
  }
  const X10DeviceConfig& config = it->second;

  if (method == "getAddress") {
    net_.scheduler().after(0, [config, done = std::move(done)] {
      done(Value(x10::format_address(config.house, config.unit)));
    });
    return;
  }

  x10::FunctionCode function;
  int dims = 0;
  if (method == "turnOn") {
    function = x10::FunctionCode::kOn;
  } else if (method == "turnOff") {
    function = x10::FunctionCode::kOff;
  } else if (method == "dim" && config.dimmable) {
    function = x10::FunctionCode::kDim;
    dims = args.empty() ? 1 : static_cast<int>(args[0].to_int().value_or(1));
  } else if (method == "bright" && config.dimmable) {
    function = x10::FunctionCode::kBright;
    dims = args.empty() ? 1 : static_cast<int>(args[0].to_int().value_or(1));
  } else {
    net_.scheduler().after(0, [service_name, method, done = std::move(done)] {
      done(not_found(service_name + " does not support " + method));
    });
    return;
  }
  cm11a_.send_command(config.house, config.unit, function, dims,
                      [done = std::move(done)](const Status& s) {
                        if (s.is_ok()) {
                          done(Value(true));
                        } else {
                          done(s);
                        }
                      });
}

std::string X10Adapter::pick_method(const LocalService& service,
                                    const char* hint_attr,
                                    bool for_on) {
  auto hint = service.attributes.find(hint_attr);
  if (hint != service.attributes.end() && hint->second.is_string()) {
    return hint->second.as_string();
  }
  // Conversion policy: conventional zero-arg method names, in order of
  // preference. ON additionally falls back to the first zero-argument
  // method; OFF never guesses (an unmapped OFF is safer than a wrong
  // invocation).
  static constexpr const char* kOnNames[] = {"turnOn", "powerOn", "play",
                                             "startCapture", "start"};
  static constexpr const char* kOffNames[] = {"turnOff", "powerOff", "stop",
                                              "stopCapture"};
  const std::span<const char* const> candidates =
      for_on ? std::span<const char* const>(kOnNames)
             : std::span<const char* const>(kOffNames);
  for (const char* candidate : candidates) {
    const MethodDesc* m = service.interface.find_method(candidate);
    if (m != nullptr && m->params.empty()) return candidate;
  }
  if (for_on) {
    for (const auto& m : service.interface.methods) {
      if (m.params.empty()) return m.name;
    }
  }
  return "";
}

Status X10Adapter::export_service(const LocalService& service,
                                  ServiceHandler handler) {
  if (bindings_.count(service.name) != 0) {
    return already_exists("already bound to X10: " + service.name);
  }
  if (next_unit_ > 16) {
    return resource_exhausted("house " +
                              std::string(x10::to_string(export_house_)) +
                              " has no free unit codes");
  }
  Binding binding;
  binding.unit = next_unit_++;
  binding.on_method = pick_method(service, "x10.on", /*for_on=*/true);
  binding.off_method = pick_method(service, "x10.off", /*for_on=*/false);
  binding.handler = std::move(handler);
  if (binding.on_method.empty() && binding.off_method.empty()) {
    --next_unit_;
    return invalid_argument(service.name +
                            " has no methods mappable to X10 ON/OFF");
  }
  unit_to_name_[binding.unit] = service.name;
  log_info("x10.adapter", service.name, " bound to ",
           x10::format_address(export_house_, binding.unit));
  bindings_[service.name] = std::move(binding);
  return Status::ok();
}

void X10Adapter::unexport_service(const std::string& name) {
  auto it = bindings_.find(name);
  if (it == bindings_.end()) return;
  unit_to_name_.erase(it->second.unit);
  bindings_.erase(it);
}

Result<int> X10Adapter::unit_for(const std::string& service_name) const {
  auto it = bindings_.find(service_name);
  if (it == bindings_.end()) {
    return not_found("no X10 binding for " + service_name);
  }
  return it->second.unit;
}

void X10Adapter::on_observed(const x10::ObservedCommand& cmd) {
  if (cmd.unit == 0) return;
  // Watched configured modules: an external ON/OFF on their address is
  // the module's native "state changed" signal.
  if (cmd.function == x10::FunctionCode::kOn ||
      cmd.function == x10::FunctionCode::kOff) {
    for (const auto& [name, config] : devices_) {
      if (config.house != cmd.house || config.unit != cmd.unit) continue;
      auto watched = watched_.find(name);
      if (watched != watched_.end() && watched->second) {
        watched->second(name, "stateChanged",
                        Value(ValueMap{{"on", Value(cmd.function ==
                                                    x10::FunctionCode::kOn)}}));
      }
    }
  }
  if (cmd.house != export_house_) return;
  auto name_it = unit_to_name_.find(cmd.unit);
  if (name_it == unit_to_name_.end()) return;
  auto& binding = bindings_.at(name_it->second);

  std::string method;
  if (cmd.function == x10::FunctionCode::kOn) {
    method = binding.on_method;
  } else if (cmd.function == x10::FunctionCode::kOff) {
    method = binding.off_method;
  } else {
    return;  // other functions have no generic mapping
  }
  if (method.empty()) return;
  log_debug("x10.adapter", "observed ", x10::to_string(cmd.function), " on ",
            x10::format_address(cmd.house, cmd.unit), " -> ",
            name_it->second, ".", method);
  binding.handler(method, {}, [](Result<Value>) {
    // One-way from the powerline's perspective: X10 cannot carry a
    // reply, so results are dropped (the §4.2 asymmetry).
  });
}

Status X10Adapter::watch_events(const LocalService& service,
                                AdapterEventFn on_event) {
  if (devices_.count(service.name) == 0) {
    return not_found("no X10 module to watch: " + service.name);
  }
  watched_[service.name] = std::move(on_event);
  return Status::ok();
}

void X10Adapter::unwatch_events(const std::string& service_name) {
  watched_.erase(service_name);
}

void X10Adapter::emit_event(const std::string& service_name,
                            const std::string& event, const Value& payload) {
  // The only event X10 can natively express is an ON/OFF flip on the
  // exported service's virtual unit; richer payloads cannot ride the
  // powerline (the same §4.2 asymmetry as replies).
  if (event != "stateChanged") return;
  auto it = bindings_.find(service_name);
  if (it == bindings_.end()) return;
  const bool on = payload.is_map() && payload.at("on").is_bool() &&
                  payload.at("on").as_bool();
  cm11a_.send_command(
      export_house_, it->second.unit,
      on ? x10::FunctionCode::kOn : x10::FunctionCode::kOff, 0,
      [](const Status&) {});
}

}  // namespace hcm::core
