#include "core/adapters/jini_adapter.hpp"

#include "obs/instrument.hpp"

namespace hcm::core {

namespace {
// The remote-event listener surface (mirrors jini/lookup.cpp).
InterfaceDesc listener_interface() {
  return InterfaceDesc{
      "RemoteEventListener",
      {MethodDesc{"serviceEvent",
                  {{"type", ValueType::kString}, {"item", ValueType::kMap}},
                  ValueType::kNull,
                  true}}};
}

// serviceEvent carries the payload as a map; wrap scalars.
Value event_item(const Value& payload) {
  if (payload.is_map()) return payload;
  return Value(ValueMap{{"value", payload}});
}
}  // namespace

JiniAdapter::JiniAdapter(net::Network& net, net::NodeId gateway_node,
                         net::Endpoint lookup, std::uint16_t export_port)
    : net_(net),
      node_(gateway_node),
      lookup_(net, gateway_node, lookup),
      exporter_(net, gateway_node, export_port) {}

JiniAdapter::~JiniAdapter() = default;

Status JiniAdapter::start() { return exporter_.start(); }

void JiniAdapter::list_services(ServicesFn done) {
  lookup_.lookup("", {}, [this, done = std::move(done)](
                             Result<std::vector<jini::ServiceItem>> items) {
    if (!items.is_ok()) {
      done(items.status());
      return;
    }
    std::vector<LocalService> services;
    for (auto& item : items.value()) {
      // Skip server proxies this adapter exported: they are foreign.
      auto imported = item.attributes.find("hcm.imported");
      const bool is_imported =
          imported != item.attributes.end() && imported->second == Value(true);
      const std::string name = item.name.empty() ? item.service_id : item.name;
      known_[name] = item;
      if (is_imported) continue;
      LocalService service;
      service.name = name;
      service.interface = item.interface;
      service.attributes = item.attributes;
      services.push_back(std::move(service));
    }
    done(std::move(services));
  });
}

jini::Proxy* JiniAdapter::proxy_for(const jini::ServiceItem& item) {
  auto it = proxies_.find(item.service_id);
  if (it != proxies_.end()) return it->second.get();
  auto proxy = std::make_unique<jini::Proxy>(net_, node_, item);
  auto* raw = proxy.get();
  proxies_[item.service_id] = std::move(proxy);
  return raw;
}

void JiniAdapter::invoke(const std::string& service_name,
                         const std::string& method, const ValueList& args,
                         InvokeResultFn done) {
  obs::ScopedInvoke obs_invoke(net_.scheduler(), "jini", service_name, method);
  done = obs_invoke.wrap(std::move(done));
  // Server proxies exported by this adapter dispatch directly: lookup
  // registration is asynchronous (lease join in flight), but the proxy
  // is usable the moment export_service returns.
  if (auto exported = exported_.find(service_name);
      exported != exported_.end()) {
    exported->second.handler(method, args, std::move(done));
    return;
  }
  auto it = known_.find(service_name);
  if (it != known_.end()) {
    proxy_for(it->second)->invoke(method, args, std::move(done));
    return;
  }
  // Unknown: refresh the cache once, then retry.
  lookup_.lookup(
      "", {},
      [this, service_name, method, args, done = std::move(done)](
          Result<std::vector<jini::ServiceItem>> items) {
        if (!items.is_ok()) {
          done(items.status());
          return;
        }
        for (auto& item : items.value()) {
          const std::string name =
              item.name.empty() ? item.service_id : item.name;
          known_[name] = item;
        }
        auto found = known_.find(service_name);
        if (found == known_.end()) {
          done(not_found("no Jini service: " + service_name));
          return;
        }
        proxy_for(found->second)->invoke(method, args, std::move(done));
      });
}

Status JiniAdapter::export_service(const LocalService& service,
                                   ServiceHandler handler) {
  if (exported_.count(service.name) != 0) {
    return already_exists("already exported to Jini: " + service.name);
  }
  Exported exported;
  exported.service_id = "sp-" + std::to_string(next_export_++);

  InterfaceDesc iface = service.interface;
  if (!service.interface.events.empty()) {
    // The server proxy speaks the Jini remote-event pattern for the
    // events its origin declares: local clients register listeners via
    // notify/cancelNotify, and emit_event fires serviceEvent at them.
    iface.methods.push_back({"notify",
                             {{"node", ValueType::kInt},
                              {"port", ValueType::kInt},
                              {"listener", ValueType::kString}},
                             ValueType::kInt});
    iface.methods.push_back(
        {"cancelNotify", {{"id", ValueType::kInt}}, ValueType::kBool});
    handler = [this, name = service.name, inner = std::move(handler)](
                  const std::string& method, const ValueList& args,
                  InvokeResultFn done) {
      auto it = exported_.find(name);
      if (it != exported_.end() && method == "notify") {
        if (args.size() != 3 || !args[0].is_int() || !args[1].is_int() ||
            !args[2].is_string()) {
          done(invalid_argument("notify(node, port, listener_id)"));
          return;
        }
        jini::ServiceItem listener;
        listener.service_id = args[2].as_string();
        listener.name = "listener";
        listener.interface = listener_interface();
        listener.endpoint = {static_cast<net::NodeId>(args[0].as_int()),
                             static_cast<std::uint16_t>(args[1].as_int())};
        auto id = it->second.next_listener++;
        it->second.listeners[id] =
            std::make_unique<jini::Proxy>(net_, node_, std::move(listener));
        done(Value(id));
        return;
      }
      if (it != exported_.end() && method == "cancelNotify") {
        if (args.size() != 1 || !args[0].is_int()) {
          done(invalid_argument("cancelNotify(id)"));
          return;
        }
        done(Value(it->second.listeners.erase(args[0].as_int()) > 0));
        return;
      }
      inner(method, args, std::move(done));
    };
  }
  exported.handler = handler;
  exporter_.export_object(exported.service_id, std::move(handler));

  jini::ServiceItem item;
  item.service_id = exported.service_id;
  item.name = service.name;
  item.interface = std::move(iface);
  item.endpoint = exporter_.endpoint();
  item.attributes = service.attributes;
  item.attributes["hcm.imported"] = Value(true);
  exported.registrar = std::make_unique<jini::Registrar>(
      net_, node_, lookup_.proxy().item().endpoint, std::move(item));
  exported.registrar->join([](const Status&) {});
  exported_[service.name] = std::move(exported);
  return Status::ok();
}

void JiniAdapter::unexport_service(const std::string& name) {
  auto it = exported_.find(name);
  if (it == exported_.end()) return;
  exporter_.unexport_object(it->second.service_id);
  // Cancel the lease so the lookup service drops the item promptly.
  auto registrar = std::shared_ptr<jini::Registrar>(std::move(it->second.registrar));
  registrar->cancel([registrar](const Status&) {});
  exported_.erase(it);
}

Status JiniAdapter::watch_events(const LocalService& service,
                                 AdapterEventFn on_event) {
  if (watches_.count(service.name) != 0) return Status::ok();
  auto it = known_.find(service.name);
  if (it == known_.end()) {
    return not_found("no Jini service to watch: " + service.name);
  }
  if (it->second.interface.find_method("notify") == nullptr) {
    return unimplemented("Jini service " + service.name +
                         " has no notify method");
  }
  Watch watch;
  watch.listener_id = "evtl-" + std::to_string(next_watch_++);
  exporter_.export_object(
      watch.listener_id,
      [name = service.name, on_event = std::move(on_event)](
          const std::string& method, const ValueList& args,
          InvokeResultFn done) {
        if (method != "serviceEvent" || args.size() != 2 ||
            !args[0].is_string()) {
          done(invalid_argument("expected serviceEvent(type, item)"));
          return;
        }
        on_event(name, args[0].as_string(), args[1]);
        done(Value());
      });
  proxy_for(it->second)
      ->invoke("notify",
               {Value(static_cast<std::int64_t>(node_)),
                Value(static_cast<std::int64_t>(exporter_.endpoint().port)),
                Value(watch.listener_id)},
               [this, name = service.name](Result<Value> r) {
                 auto watch = watches_.find(name);
                 if (watch == watches_.end()) return;
                 if (r.is_ok() && r.value().is_int()) {
                   watch->second.registration = r.value().as_int();
                 }
               });
  watches_[service.name] = std::move(watch);
  return Status::ok();
}

void JiniAdapter::unwatch_events(const std::string& service_name) {
  auto it = watches_.find(service_name);
  if (it == watches_.end()) return;
  exporter_.unexport_object(it->second.listener_id);
  auto known = known_.find(service_name);
  if (known != known_.end() &&
      known->second.interface.find_method("cancelNotify") != nullptr) {
    proxy_for(known->second)
        ->invoke("cancelNotify", {Value(it->second.registration)},
                 [](Result<Value>) {});
  }
  watches_.erase(it);
}

void JiniAdapter::emit_event(const std::string& service_name,
                             const std::string& event, const Value& payload) {
  auto it = exported_.find(service_name);
  if (it == exported_.end()) return;
  for (auto& [id, listener] : it->second.listeners) {
    listener->invoke_one_way("serviceEvent",
                             {Value(event), event_item(payload)});
  }
}

}  // namespace hcm::core
