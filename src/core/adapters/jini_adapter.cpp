#include "core/adapters/jini_adapter.hpp"

namespace hcm::core {

JiniAdapter::JiniAdapter(net::Network& net, net::NodeId gateway_node,
                         net::Endpoint lookup, std::uint16_t export_port)
    : net_(net),
      node_(gateway_node),
      lookup_(net, gateway_node, lookup),
      exporter_(net, gateway_node, export_port) {}

JiniAdapter::~JiniAdapter() = default;

Status JiniAdapter::start() { return exporter_.start(); }

void JiniAdapter::list_services(ServicesFn done) {
  lookup_.lookup("", {}, [this, done = std::move(done)](
                             Result<std::vector<jini::ServiceItem>> items) {
    if (!items.is_ok()) {
      done(items.status());
      return;
    }
    std::vector<LocalService> services;
    for (auto& item : items.value()) {
      // Skip server proxies this adapter exported: they are foreign.
      auto imported = item.attributes.find("hcm.imported");
      const bool is_imported =
          imported != item.attributes.end() && imported->second == Value(true);
      const std::string name = item.name.empty() ? item.service_id : item.name;
      known_[name] = item;
      if (is_imported) continue;
      LocalService service;
      service.name = name;
      service.interface = item.interface;
      service.attributes = item.attributes;
      services.push_back(std::move(service));
    }
    done(std::move(services));
  });
}

jini::Proxy* JiniAdapter::proxy_for(const jini::ServiceItem& item) {
  auto it = proxies_.find(item.service_id);
  if (it != proxies_.end()) return it->second.get();
  auto proxy = std::make_unique<jini::Proxy>(net_, node_, item);
  auto* raw = proxy.get();
  proxies_[item.service_id] = std::move(proxy);
  return raw;
}

void JiniAdapter::invoke(const std::string& service_name,
                         const std::string& method, const ValueList& args,
                         InvokeResultFn done) {
  // Server proxies exported by this adapter dispatch directly: lookup
  // registration is asynchronous (lease join in flight), but the proxy
  // is usable the moment export_service returns.
  if (auto exported = exported_.find(service_name);
      exported != exported_.end()) {
    exported->second.handler(method, args, std::move(done));
    return;
  }
  auto it = known_.find(service_name);
  if (it != known_.end()) {
    proxy_for(it->second)->invoke(method, args, std::move(done));
    return;
  }
  // Unknown: refresh the cache once, then retry.
  lookup_.lookup(
      "", {},
      [this, service_name, method, args, done = std::move(done)](
          Result<std::vector<jini::ServiceItem>> items) {
        if (!items.is_ok()) {
          done(items.status());
          return;
        }
        for (auto& item : items.value()) {
          const std::string name =
              item.name.empty() ? item.service_id : item.name;
          known_[name] = item;
        }
        auto found = known_.find(service_name);
        if (found == known_.end()) {
          done(not_found("no Jini service: " + service_name));
          return;
        }
        proxy_for(found->second)->invoke(method, args, std::move(done));
      });
}

Status JiniAdapter::export_service(const LocalService& service,
                                   ServiceHandler handler) {
  if (exported_.count(service.name) != 0) {
    return already_exists("already exported to Jini: " + service.name);
  }
  Exported exported;
  exported.service_id = "sp-" + std::to_string(next_export_++);
  exported.handler = handler;
  exporter_.export_object(exported.service_id, std::move(handler));

  jini::ServiceItem item;
  item.service_id = exported.service_id;
  item.name = service.name;
  item.interface = service.interface;
  item.endpoint = exporter_.endpoint();
  item.attributes = service.attributes;
  item.attributes["hcm.imported"] = Value(true);
  exported.registrar = std::make_unique<jini::Registrar>(
      net_, node_, lookup_.proxy().item().endpoint, std::move(item));
  exported.registrar->join([](const Status&) {});
  exported_[service.name] = std::move(exported);
  return Status::ok();
}

void JiniAdapter::unexport_service(const std::string& name) {
  auto it = exported_.find(name);
  if (it == exported_.end()) return;
  exporter_.unexport_object(it->second.service_id);
  // Cancel the lease so the lookup service drops the item promptly.
  auto registrar = std::shared_ptr<jini::Registrar>(std::move(it->second.registrar));
  registrar->cancel([registrar](const Status&) {});
  exported_.erase(it);
}

}  // namespace hcm::core
