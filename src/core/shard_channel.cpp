#include "core/shard_channel.hpp"

#include <utility>

namespace hcm::core {

sim::ShardId ShardChannel::current_shard(net::Network& net) {
  auto* kernel = net.kernel();
  const auto* ctx = sim::ShardedKernel::current();
  if (kernel == nullptr || ctx == nullptr || ctx->kernel != kernel) return 0;
  return ctx->shard;
}

void ShardChannel::run_on_shard(net::Network& net, sim::ShardId shard,
                                std::function<void()> fn) {
  auto* kernel = net.kernel();
  if (kernel == nullptr) {
    fn();
    return;
  }
  const auto* ctx = sim::ShardedKernel::current();
  const bool bound = ctx != nullptr && ctx->kernel == kernel;
  if (bound && ctx->shard == shard) {
    fn();
    return;
  }
  if (!kernel->running()) {
    // Parked: only the coordinator executes, so binding the target
    // context and running inline is race-free and keeps setup-time
    // calls synchronous.
    kernel->run_as(shard, [&fn] { fn(); });
    return;
  }
  // Running worker on another shard: marshal through the kernel's
  // channels. post() applies the conservative >= now + lookahead clamp.
  const sim::ShardId src = bound ? ctx->shard : 0;
  kernel->post(shard, kernel->shard(src).now() + kernel->lookahead(),
               std::move(fn));
}

void ShardChannel::run_on_node(net::Network& net, net::NodeId node,
                               std::function<void()> fn) {
  run_on_shard(net, net.shard_of(node), std::move(fn));
}

}  // namespace hcm::core
