#include "core/proxygen.hpp"

namespace hcm::core {

Result<std::string> ProxyGenerator::generate_client_proxy(
    const LocalService& service, MiddlewareAdapter& adapter) {
  // The CP is the VSG exposure itself: each interface method becomes a
  // VSG-callable operation forwarding to the native invoke path.
  auto uri = vsg_.expose(
      service.name, service.interface,
      [&adapter, name = service.name](const std::string& method,
                                      const ValueList& args,
                                      InvokeResultFn done) {
        adapter.invoke(name, method, args, std::move(done));
      });
  if (!uri.is_ok()) return uri.status();
  client_proxies_.inc();
  return soap::emit_wsdl(service.interface, service.name, uri.value());
}

ServiceHandler ProxyGenerator::generate_server_proxy(
    const soap::WsdlDocument& remote) {
  server_proxies_.inc();
  VirtualServiceGateway* vsg = &vsg_;
  return [vsg, &invokes = sp_invokes_, endpoint = remote.endpoint,
          name = remote.service_name,
          iface = remote.interface](const std::string& method,
                                    const ValueList& args,
                                    InvokeResultFn done) {
    invokes.inc();
    vsg->call_remote(endpoint, name, iface, method, args, std::move(done));
  };
}

}  // namespace hcm::core
