#include "core/av_relay.hpp"

namespace hcm::core {

namespace {
// Relay datagram: [stream_id u32][seq u64][payload...].
Bytes pack(std::uint32_t stream_id, std::uint64_t seq, const Bytes& frame) {
  BufWriter w;
  w.put_u32(stream_id);
  w.put_u64(seq);
  w.put_raw(frame);
  return w.take();
}
}  // namespace

AvRelayReceiver::AvRelayReceiver(net::Network& net, net::NodeId node)
    : net_(net), node_(node) {}

AvRelayReceiver::~AvRelayReceiver() {
  if (started_) {
    if (net::Node* n = net_.node(node_)) n->unbind(kAvRelayPort);
  }
}

Status AvRelayReceiver::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("av relay: no such node");
  auto status =
      n->bind(kAvRelayPort, [this](net::Endpoint, const Bytes& data) {
        BufReader r(data);
        auto stream_id = r.u32();
        auto seq = r.u64();
        if (!stream_id.is_ok() || !seq.is_ok()) return;
        auto it = streams_.find(stream_id.value());
        if (it == streams_.end()) return;
        ++frames_received_;
        if (seq.value() > it->second.next_seq) {
          frames_lost_ += seq.value() - it->second.next_seq;
        }
        it->second.next_seq = seq.value() + 1;
        Bytes frame(data.begin() + static_cast<std::ptrdiff_t>(r.pos()),
                    data.end());
        it->second.sink(seq.value(), frame);
      });
  if (!status.is_ok()) return status;
  started_ = true;
  return Status::ok();
}

void AvRelayReceiver::open_stream(std::uint32_t stream_id, FrameSink sink) {
  streams_[stream_id] = Stream{std::move(sink), 0};
}

void AvRelayReceiver::close_stream(std::uint32_t stream_id) {
  streams_.erase(stream_id);
}

AvRelaySender::~AvRelaySender() {
  for (const auto& [id, relay] : relays_) {
    bus_.unlisten_channel(relay.channel, relay.listener);
  }
}

Status AvRelaySender::relay(net::IsoChannel channel, net::Endpoint receiver,
                            std::uint32_t stream_id) {
  if (relays_.count(stream_id) != 0) {
    return already_exists("stream id in use: " + std::to_string(stream_id));
  }
  relays_[stream_id] = Relay{channel, receiver, 0, 0};
  relays_[stream_id].listener = bus_.listen_channel(
      channel, [this, stream_id](net::IsoChannel, const Bytes& payload) {
        auto it = relays_.find(stream_id);
        if (it == relays_.end()) return;
        ++frames_relayed_;
        net_.send_datagram({node_, kAvRelayPort}, it->second.receiver,
                           pack(stream_id, it->second.next_seq++, payload));
      });
  return Status::ok();
}

void AvRelaySender::stop(std::uint32_t stream_id) {
  auto it = relays_.find(stream_id);
  if (it == relays_.end()) return;
  bus_.unlisten_channel(it->second.channel, it->second.listener);
  relays_.erase(it);
}

}  // namespace hcm::core
