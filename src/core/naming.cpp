#include "core/naming.hpp"

#include "common/strings.hpp"

namespace hcm::core {

Result<net::Endpoint> resolve_endpoint(net::Network& net, const Uri& uri) {
  if (net::Node* n = net.find_node(uri.host)) {
    return net::Endpoint{n->id(), uri.port};
  }
  if (starts_with(uri.host, "node-")) {
    auto id = parse_uint(uri.host.substr(5));
    if (id > 0 && net.node(static_cast<net::NodeId>(id)) != nullptr) {
      return net::Endpoint{static_cast<net::NodeId>(id), uri.port};
    }
  }
  return not_found("cannot resolve host: " + uri.host);
}

Uri endpoint_uri(net::Network& net, const std::string& scheme,
                 net::Endpoint endpoint, const std::string& path) {
  net::Node* n = net.node(endpoint.node);
  return Uri{scheme,
             n != nullptr ? n->name() : "node-" + std::to_string(endpoint.node),
             endpoint.port, path};
}

}  // namespace hcm::core
