// MiddlewareAdapter: the single abstraction a middleware must implement
// to join the framework (the paper's §3 goal — "new middleware can be
// participated in our framework effortlessly"). The PCM drives one
// adapter per island:
//   - list_services/invoke feed the Client Proxy direction (local
//     services become VSG services remote clients can call);
//   - export_service is the Server Proxy direction (remote services
//     appear as native services local clients can call).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/service.hpp"

namespace hcm::core {

struct LocalService {
  std::string name;          // globally unique deployed name ("laserdisc-1")
  InterfaceDesc interface;
  ValueMap attributes;       // middleware-specific hints (e.g. x10.on)
};

class MiddlewareAdapter {
 public:
  virtual ~MiddlewareAdapter() = default;

  // Short middleware identifier: "jini", "havi", "x10", "mail", "upnp".
  [[nodiscard]] virtual std::string middleware_name() const = 0;

  using ServicesFn = std::function<void(Result<std::vector<LocalService>>)>;
  // Enumerates services currently deployed on the local middleware.
  virtual void list_services(ServicesFn done) = 0;

  // Invokes a *local* service natively (used by generated client
  // proxies when a remote VSG call arrives).
  virtual void invoke(const std::string& service_name,
                      const std::string& method, const ValueList& args,
                      InvokeResultFn done) = 0;

  // Makes a *remote* service appear as a native local service whose
  // implementation is `handler` (a generated server proxy). Local
  // clients then use it with zero changes.
  [[nodiscard]] virtual Status export_service(const LocalService& service,
                                              ServiceHandler handler) = 0;
  virtual void unexport_service(const std::string& name) = 0;

  // --- Event bridge hooks (core/event_router) ---------------------------
  // All three default to no-ops so adapters predating the event bridge
  // (and third-party ones) keep working; islands whose middleware has a
  // native event mechanism override them.

  using AdapterEventFn =
      std::function<void(const std::string& service_name,
                         const std::string& event, const Value& payload)>;
  // Client Proxy direction: hooks the native event source of a *local*
  // service so its events reach `on_event` (which forwards them to the
  // local VSG's event router).
  [[nodiscard]] virtual Status watch_events(const LocalService& service,
                                            AdapterEventFn on_event) {
    (void)service;
    (void)on_event;
    return unimplemented(middleware_name() +
                         " adapter does not support event watch");
  }
  virtual void unwatch_events(const std::string& service_name) {
    (void)service_name;
  }

  // Server Proxy direction: re-emits an event arriving from a remote
  // island as a native event of the exported service on this island.
  virtual void emit_event(const std::string& service_name,
                          const std::string& event, const Value& payload) {
    (void)service_name;
    (void)event;
    (void)payload;
  }
};

}  // namespace hcm::core
