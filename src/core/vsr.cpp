#include "core/vsr.hpp"

namespace hcm::core {

VsrServer::VsrServer(net::Network& net, net::NodeId node, std::uint16_t port,
                     std::size_t journal_capacity)
    : net_(net),
      http_(net, node, port),
      registry_(http_, net.scheduler(), "/uddi", journal_capacity) {}

}  // namespace hcm::core
