#include "core/vsr.hpp"

namespace hcm::core {

namespace {

std::unique_ptr<store::VsrStore> open_store(const std::string& dir,
                                            bool& failed) {
  if (dir.empty()) return nullptr;
  store::VsrStoreOptions options;
  options.dir = dir;
  auto s = std::make_unique<store::VsrStore>(std::move(options));
  if (!s->open().is_ok()) {
    failed = true;
    return nullptr;
  }
  return s;
}

}  // namespace

VsrServer::VsrServer(net::Network& net, net::NodeId node, std::uint16_t port,
                     std::size_t journal_capacity, std::string store_dir)
    : net_(net),
      http_(net, node, port),
      store_(open_store(store_dir, store_open_failed_)),
      registry_(http_, net.scheduler(), "/uddi", journal_capacity,
                store_.get()) {}

}  // namespace hcm::core
