#include "core/stream_gateway.hpp"

namespace hcm::core {

EventGateway::EventGateway(net::Network& net, net::NodeId node)
    : net_(net), node_(node) {}

EventGateway::~EventGateway() {
  if (started_) {
    if (net::Node* n = net_.node(node_)) n->unbind(kEventGatewayPort);
  }
}

Status EventGateway::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("event gateway: no such node");
  auto status =
      n->bind(kEventGatewayPort, [this](net::Endpoint, const Bytes& data) {
        auto msg = decode_value(data);
        if (!msg.is_ok() || !msg.value().is_map()) return;
        const Value& m = msg.value();
        if (!m.at("topic").is_string()) return;
        deliver(m.at("topic").as_string(), m.at("payload"));
      });
  if (!status.is_ok()) return status;
  started_ = true;
  return Status::ok();
}

void EventGateway::add_peer(net::Endpoint peer) { peers_.push_back(peer); }

std::int64_t EventGateway::subscribe(const std::string& topic, EventFn fn) {
  auto id = next_sub_++;
  subs_[id] = Sub{topic, std::move(fn)};
  return id;
}

void EventGateway::unsubscribe(std::int64_t id) { subs_.erase(id); }

void EventGateway::publish(const std::string& topic, const Value& payload) {
  ++events_published_;
  deliver(topic, payload);
  Bytes wire = encode_value(Value(ValueMap{
      {"topic", Value(topic)},
      {"payload", payload},
  }));
  for (const auto& peer : peers_) {
    net_.send_datagram({node_, kEventGatewayPort}, peer, wire);
  }
}

void EventGateway::deliver(const std::string& topic, const Value& payload) {
  auto subs = subs_;  // subscribers may mutate during delivery
  for (const auto& [id, sub] : subs) {
    if (sub.topic == topic || sub.topic == "*") {
      ++events_delivered_;
      sub.fn(topic, payload);
    }
  }
}

}  // namespace hcm::core
