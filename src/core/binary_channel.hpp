// Compact binary RPC channel: the alternative VSG wire protocol for the
// §3.1 ablation ("a simple protocol is enough to integrate simple
// services ... which protocol depends on the purpose"). Length-framed
// binary Values over a stream instead of SOAP/XML over HTTP.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "common/service.hpp"
#include "common/value_codec.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/slab.hpp"

namespace hcm::core {

// Serves named services over the binary protocol.
class BinaryRpcServer {
 public:
  BinaryRpcServer(net::Network& net, net::NodeId node, std::uint16_t port);
  ~BinaryRpcServer();
  BinaryRpcServer(const BinaryRpcServer&) = delete;
  BinaryRpcServer& operator=(const BinaryRpcServer&) = delete;

  [[nodiscard]] Status start();
  void stop();

  void register_service(const std::string& name, ServiceHandler handler);
  void unregister_service(const std::string& name);

  [[nodiscard]] net::Endpoint endpoint() const { return {node_, port_}; }
  [[nodiscard]] std::uint64_t calls_served() const {
    return calls_served_.value();
  }

 private:
  struct Conn;
  void on_accept(net::StreamPtr stream);

  net::Network& net_;
  net::NodeId node_;
  std::uint16_t port_;
  bool listening_ = false;
  // Live connections, detached on stop() (their callbacks capture this).
  std::vector<std::weak_ptr<Conn>> connections_;
  std::map<std::string, ServiceHandler> services_;
  std::string obs_scope_;
  obs::Counter& calls_served_;
  obs::Histogram& dispatch_latency_us_;
};

// Client: one lazy connection per destination endpoint.
class BinaryRpcClient {
 public:
  BinaryRpcClient(net::Network& net, net::NodeId node)
      : net_(net), node_(node) {}
  ~BinaryRpcClient();
  BinaryRpcClient(const BinaryRpcClient&) = delete;
  BinaryRpcClient& operator=(const BinaryRpcClient&) = delete;

  void call(net::Endpoint dest, const std::string& service,
            const std::string& method, const ValueList& args,
            InvokeResultFn done);

 private:
  struct Conn;
  std::shared_ptr<Conn> conn_for(net::Endpoint dest);

  net::Network& net_;
  net::NodeId node_;
  std::map<net::Endpoint, std::shared_ptr<Conn>> conns_;
  // Registry handles bound per instance (clients are per-island, so no
  // shard ever reaches another island's client); the metrics are still
  // the shared global names and the counters themselves are atomic.
  obs::Counter& calls_ = obs::shard_registry().counter("binary.client.calls");
  obs::Counter& errors_ =
      obs::shard_registry().counter("binary.client.errors");
  obs::Histogram& latency_ =
      obs::shard_registry().histogram("binary.client.latency_us");
};

}  // namespace hcm::core
