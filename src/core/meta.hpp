// MetaMiddleware: the orchestration facade over the whole framework —
// "a kind of Meta middleware" (paper §6). Owns the VSG + PCM pair for
// every middleware island and drives synchronization, so an application
// adds an island in one call and services flow everywhere.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/event_router.hpp"
#include "core/pcm.hpp"
#include "core/vsg.hpp"
#include "core/vsr.hpp"
#include "obs/health.hpp"
#include "obs/service.hpp"
#include "obs/timeseries.hpp"

namespace hcm::core {

class MetaMiddleware {
 public:
  MetaMiddleware(net::Network& net, net::Endpoint vsr)
      : net_(net), vsr_(vsr) {}
  MetaMiddleware(const MetaMiddleware&) = delete;
  MetaMiddleware& operator=(const MetaMiddleware&) = delete;

  struct Island {
    std::string name;
    std::unique_ptr<VirtualServiceGateway> vsg;
    std::unique_ptr<Pcm> pcm;
    // Declared after pcm: the router is destroyed first, so the
    // adapter it watches events through always outlives it.
    std::unique_ptr<EventRouter> events;
  };

  // Connects a middleware island: creates its VSG on `gateway_node` and
  // a PCM driving `adapter`. New middleware participates by providing
  // only the adapter — the §3 "effortlessly" property.
  [[nodiscard]] Result<Island*> add_island(
      const std::string& name, net::NodeId gateway_node,
      std::unique_ptr<MiddlewareAdapter> adapter,
      VsgProtocol protocol = VsgProtocol::kSoap, std::uint16_t port = 8080);

  [[nodiscard]] Island* island(const std::string& name);
  [[nodiscard]] std::size_t island_count() const { return islands_.size(); }

  // Synchronization strategy for every PCM, current and future. Delta
  // (the default) makes refresh_all O(changes); snapshot is the
  // original full-transfer behaviour, kept as the bench baseline.
  void set_sync_mode(Pcm::SyncMode mode);
  [[nodiscard]] Pcm::SyncMode sync_mode() const { return sync_mode_; }

  using DoneFn = std::function<void(const Status&)>;
  // Two-phase synchronization across all islands: every PCM publishes
  // its locals, then every PCM imports, so ordering between islands
  // doesn't matter.
  void refresh_all(DoneFn done);

  // Starts periodic refresh (service dynamism: arrivals/departures
  // propagate within one period).
  void start_auto_refresh(sim::Duration period);
  void stop_auto_refresh();

  // Mounts the introspection service ("observability-<island>") on the
  // island's VSG and publishes its WSDL to the VSR, so any connected
  // middleware can call getMetrics/getTrace through the framework
  // itself. Opt-in: it adds a VSR entry, which applications counting
  // deployed services would otherwise see. refresh_all renews the
  // publication's lease alongside the PCMs'.
  [[nodiscard]] Status enable_observability(const std::string& island_name);
  [[nodiscard]] bool observability_enabled(
      const std::string& island_name) const {
    return obs_exports_.count(island_name) != 0;
  }

  // Wires the fleet telemetry backends (owned by the scenario) into the
  // framework: getSeries/getHealth on every observability exposure are
  // served from `recorder`/`health`, and health-state transitions are
  // re-injected as healthChanged events on each obs-enabled island's
  // event bridge, so any island can subscribe to them like any other
  // cross-middleware event. Either pointer may be null; applies to
  // islands enabled before and after the call.
  void attach_telemetry(obs::TimeSeriesRecorder* recorder,
                        obs::HealthMonitor* health);

 private:
  struct ObsExport {
    std::string service_name;  // "observability-<island>"
    std::string wsdl;
    net::NodeId node = 0;  // the island gateway — the export's home shard
    std::unique_ptr<VsrClient> vsr;
  };

  void republish_observability(DoneFn done);

  net::Network& net_;
  net::Endpoint vsr_;
  Pcm::SyncMode sync_mode_ = Pcm::SyncMode::kDelta;
  std::map<std::string, Island> islands_;
  std::map<std::string, ObsExport> obs_exports_;
  std::unique_ptr<obs::ObservabilityService> obs_service_;
  obs::TimeSeriesRecorder* recorder_ = nullptr;
  obs::HealthMonitor* health_ = nullptr;
  sim::EventId refresh_event_ = 0;
  bool auto_refresh_ = false;
};

}  // namespace hcm::core
