// Endpoint naming: the VSR stores endpoints as URIs whose host is a
// simulated node name ("jini-gw") or the canonical "node-<id>" form;
// this resolves them back to network endpoints.
#pragma once

#include "common/status.hpp"
#include "common/uri.hpp"
#include "net/network.hpp"

namespace hcm::core {

[[nodiscard]] Result<net::Endpoint> resolve_endpoint(net::Network& net,
                                                     const Uri& uri);

// Canonical URI for an endpoint (uses the node's name).
[[nodiscard]] Uri endpoint_uri(net::Network& net, const std::string& scheme,
                               net::Endpoint endpoint, const std::string& path);

}  // namespace hcm::core
