// Cross-island AV stream relay — the second §6 future-work item:
// "conversion of multimedia streams for multimedia application". The
// HTTP-based VSG cannot carry an isochronous stream; this extension
// taps an IEEE1394 isochronous channel at the HAVi gateway, relays the
// frames over the backbone as datagrams (with per-frame sequence
// numbers), and hands them to a sink callback on the consuming island.
// Loss is possible (datagram semantics) and is reported — the relay
// trades reliability for rate, like real AV transports.
#pragma once

#include <functional>
#include <map>

#include "common/bytes.hpp"
#include "net/ieee1394.hpp"
#include "net/network.hpp"

namespace hcm::core {

constexpr std::uint16_t kAvRelayPort = 8300;

// Receiving side: accepts relayed frames and delivers them to a sink.
class AvRelayReceiver {
 public:
  AvRelayReceiver(net::Network& net, net::NodeId node);
  ~AvRelayReceiver();
  AvRelayReceiver(const AvRelayReceiver&) = delete;
  AvRelayReceiver& operator=(const AvRelayReceiver&) = delete;

  [[nodiscard]] Status start();

  using FrameSink = std::function<void(std::uint64_t seq, const Bytes& frame)>;
  // One sink per stream id.
  void open_stream(std::uint32_t stream_id, FrameSink sink);
  void close_stream(std::uint32_t stream_id);

  [[nodiscard]] std::uint64_t frames_received() const {
    return frames_received_;
  }
  // Gaps observed in sequence numbers (lost or reordered frames).
  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }
  [[nodiscard]] net::Endpoint endpoint() const {
    return {node_, kAvRelayPort};
  }

 private:
  struct Stream {
    FrameSink sink;
    std::uint64_t next_seq = 0;
  };

  net::Network& net_;
  net::NodeId node_;
  bool started_ = false;
  std::map<std::uint32_t, Stream> streams_;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_lost_ = 0;
};

// Sending side: taps a 1394 isochronous channel on the local bus and
// forwards every packet to a remote receiver.
class AvRelaySender {
 public:
  AvRelaySender(net::Network& net, net::NodeId gateway_node,
                net::Ieee1394Bus& bus)
      : net_(net), node_(gateway_node), bus_(bus) {}
  ~AvRelaySender();
  AvRelaySender(const AvRelaySender&) = delete;
  AvRelaySender& operator=(const AvRelaySender&) = delete;

  // Starts relaying `channel` to `receiver` under `stream_id`.
  [[nodiscard]] Status relay(net::IsoChannel channel, net::Endpoint receiver,
                             std::uint32_t stream_id);
  void stop(std::uint32_t stream_id);

  [[nodiscard]] std::uint64_t frames_relayed() const {
    return frames_relayed_;
  }

 private:
  struct Relay {
    net::IsoChannel channel;
    net::Endpoint receiver;
    net::IsoListenerId listener = 0;
    std::uint64_t next_seq = 0;
  };

  net::Network& net_;
  net::NodeId node_;
  net::Ieee1394Bus& bus_;
  std::map<std::uint32_t, Relay> relays_;
  std::uint64_t frames_relayed_ = 0;
};

}  // namespace hcm::core
