#include "core/event_router.hpp"

#include <algorithm>
#include <utility>

#include "obs/slab.hpp"
#include "soap/wsdl.hpp"

namespace hcm::core {

const InterfaceDesc& EventRouter::bridge_interface() {
  static const InterfaceDesc iface{
      "HcmEventBridge",
      {
          {"subscribe",
           {{"service", ValueType::kString},
            {"event", ValueType::kString},
            {"subscriber", ValueType::kString},
            {"sink", ValueType::kString},
            {"lease", ValueType::kInt}},
           ValueType::kMap},
          {"renew",
           {{"lease", ValueType::kString}, {"duration", ValueType::kInt}},
           ValueType::kInt},
          {"unsubscribe", {{"lease", ValueType::kString}}, ValueType::kBool},
          {"deliver", {{"batch", ValueType::kList}}, ValueType::kInt},
      },
  };
  return iface;
}

EventRouter::EventRouter(net::Network& net, VirtualServiceGateway& vsg,
                         MiddlewareAdapter& adapter, net::Endpoint vsr,
                         EventRouterOptions options)
    : net_(net),
      vsg_(vsg),
      adapter_(adapter),
      vsr_(net, vsg.node(), vsr),
      options_(options),
      obs_scope_(obs::shard_registry().unique_scope("events." +
                                                      vsg.island_name())),
      events_routed_(
          obs::shard_registry().counter(obs_scope_ + ".routed")),
      events_dropped_(
          obs::shard_registry().counter(obs_scope_ + ".dropped")),
      events_delivered_(
          obs::shard_registry().counter(obs_scope_ + ".delivered")),
      batches_sent_(obs::shard_registry().counter(obs_scope_ + ".batches")),
      leases_expired_(
          obs::shard_registry().counter(obs_scope_ + ".leases_expired")),
      delivery_retries_(
          obs::shard_registry().counter(obs_scope_ + ".retries")),
      duplicates_dropped_(
          obs::shard_registry().counter(obs_scope_ + ".duplicates")),
      delivery_latency_us_(obs::shard_registry().histogram(
          obs_scope_ + ".delivery_latency_us")) {}

EventRouter::~EventRouter() {
  auto& sched = net_.scheduler();
  for (auto& [id, sub] : subs_) {
    if (sub.expiry_event != 0) sched.cancel(sub.expiry_event);
    if (sub.flush_event != 0) sched.cancel(sub.flush_event);
    if (sub.retry_event != 0) sched.cancel(sub.retry_event);
  }
  for (auto& [id, ls] : local_subs_) {
    if (ls.renew_event != 0) sched.cancel(ls.renew_event);
  }
}

Status EventRouter::start() {
  auto uri = vsg_.expose(
      kBridgeService, bridge_interface(),
      [this](const std::string& method, const ValueList& args,
             InvokeResultFn done) {
        if (method == "subscribe") {
          handle_subscribe(args, std::move(done));
        } else if (method == "renew") {
          handle_renew(args, std::move(done));
        } else if (method == "unsubscribe") {
          handle_unsubscribe(args, std::move(done));
        } else if (method == "deliver") {
          handle_deliver(args, std::move(done));
        } else {
          done(unimplemented("bridge method: " + method));
        }
      });
  if (!uri.is_ok()) return uri.status();
  return Status::ok();
}

// --- Subscriber side -------------------------------------------------------

void EventRouter::subscribe(const std::string& service,
                            const std::string& event, EventFn handler,
                            SubscribeDoneFn done) {
  subscribe(service, event, SubscribeOptions{}, std::move(handler),
            std::move(done));
}

void EventRouter::subscribe(const std::string& service,
                            const std::string& event,
                            const SubscribeOptions& opts, EventFn handler,
                            SubscribeDoneFn done) {
  vsr_.lookup(service, [this, service, event, opts,
                        handler = std::move(handler),
                        done = std::move(done)](Result<VsrEntry> r) mutable {
    if (!r.is_ok()) {
      done(r.status());
      return;
    }
    auto doc = soap::parse_wsdl(r.value().wsdl);
    if (!doc.is_ok()) {
      done(doc.status());
      return;
    }
    if (doc.value().interface.find_event(event) == nullptr) {
      done(not_found("service " + service + " declares no event " + event));
      return;
    }
    const Uri origin = bridge_uri_for(doc.value().endpoint);
    const sim::Duration lease = clamp_lease(opts.lease);
    const ValueList args{
        Value(service), Value(event), Value(vsg_.island_name()),
        Value(vsg_.exposure_uri(kBridgeService).to_string()),
        Value(static_cast<std::int64_t>(lease))};
    vsg_.call_remote(
        origin, kBridgeService, bridge_interface(), "subscribe", args,
        [this, service, event, origin, opts, handler = std::move(handler),
         done = std::move(done)](Result<Value> reply) mutable {
          if (!reply.is_ok()) {
            done(reply.status());
            return;
          }
          const Value& v = reply.value();
          if (!v.is_map() || !v.at("lease").is_string() ||
              !v.at("duration").is_int()) {
            done(protocol_error("bad subscribe reply from origin bridge"));
            return;
          }
          LocalSub ls;
          ls.id = v.at("lease").as_string();
          ls.service = service;
          ls.event = event;
          ls.handler = std::move(handler);
          ls.origin = origin;
          ls.lease = v.at("duration").as_int();
          ls.auto_renew = opts.auto_renew;
          const std::string id = ls.id;
          local_subs_[id] = std::move(ls);
          if (opts.auto_renew) arm_renew(id);
          done(id);
        });
  });
}

void EventRouter::unsubscribe(const std::string& lease_id, DoneFn done) {
  auto it = local_subs_.find(lease_id);
  if (it == local_subs_.end()) {
    // Idempotent: the lease may have expired or already been cancelled;
    // either way the goal state — no subscription — holds.
    done(Status::ok());
    return;
  }
  if (it->second.renew_event != 0) {
    net_.scheduler().cancel(it->second.renew_event);
  }
  const Uri origin = it->second.origin;
  local_subs_.erase(it);
  vsg_.call_remote(origin, kBridgeService, bridge_interface(), "unsubscribe",
                   {Value(lease_id)},
                   [done = std::move(done)](Result<Value> r) {
                     // A remote "false" (unknown lease) is still success.
                     done(r.is_ok() ? Status::ok() : r.status());
                   });
}

void EventRouter::arm_renew(const std::string& id) {
  auto it = local_subs_.find(id);
  if (it == local_subs_.end()) return;
  it->second.renew_event =
      net_.scheduler().after(it->second.lease / 2, [this, id] {
        auto it = local_subs_.find(id);
        if (it == local_subs_.end()) return;
        it->second.renew_event = 0;
        const ValueList args{
            Value(id), Value(static_cast<std::int64_t>(it->second.lease))};
        vsg_.call_remote(
            it->second.origin, kBridgeService, bridge_interface(), "renew",
            args, [this, id](Result<Value> r) {
              auto it = local_subs_.find(id);
              if (it == local_subs_.end()) return;
              if (!r.is_ok() || !r.value().is_int()) {
                // The origin no longer knows the lease (expired or the
                // island restarted): drop the local record so handler
                // dispatch and dedupe bookkeeping stop.
                local_subs_.erase(it);
                return;
              }
              it->second.lease = r.value().as_int();
              arm_renew(id);
            });
      });
}

// --- Origin side -----------------------------------------------------------

void EventRouter::handle_subscribe(const ValueList& args,
                                   InvokeResultFn done) {
  if (args.size() != 5 || !args[0].is_string() || !args[1].is_string() ||
      !args[2].is_string() || !args[3].is_string() || !args[4].is_int()) {
    done(invalid_argument(
        "subscribe(service, event, subscriber, sink, lease)"));
    return;
  }
  auto sink = parse_uri(args[3].as_string());
  if (!sink.is_ok()) {
    done(sink.status());
    return;
  }
  adapter_.list_services(
      [this, service = args[0].as_string(), event = args[1].as_string(),
       subscriber = args[2].as_string(), sink = std::move(sink).take(),
       lease = clamp_lease(args[4].as_int()),
       done = std::move(done)](Result<std::vector<LocalService>> r) mutable {
        if (!r.is_ok()) {
          done(r.status());
          return;
        }
        const LocalService* found = nullptr;
        for (const auto& s : r.value()) {
          if (s.name == service) {
            found = &s;
            break;
          }
        }
        if (found == nullptr) {
          // Framework-origin services (observability and friends) are
          // exposed straight on the VSG without a native adapter entry;
          // their events are injected via on_native_event, so the
          // subscription needs no adapter watch.
          const InterfaceDesc* exposed = vsg_.exposed_interface(service);
          if (exposed == nullptr) {
            done(not_found("no local service: " + service));
            return;
          }
          if (exposed->find_event(event) == nullptr) {
            done(not_found("service " + service + " declares no event " +
                           event));
            return;
          }
          finish_subscribe(service, event, subscriber, sink, lease, nullptr,
                           std::move(done));
          return;
        }
        if (found->interface.find_event(event) == nullptr) {
          done(not_found("service " + service + " declares no event " +
                         event));
          return;
        }
        finish_subscribe(service, event, subscriber, sink, lease, found,
                         std::move(done));
      });
}

void EventRouter::finish_subscribe(const std::string& service,
                                   const std::string& event,
                                   const std::string& subscriber,
                                   const Uri& sink, sim::Duration lease,
                                   const LocalService* native,
                                   InvokeResultFn done) {
  if (native != nullptr) {
    auto watch = ensure_watch(*native);
    if (!watch.is_ok()) {
      done(watch);
      return;
    }
  }
  Subscription sub;
  sub.id = vsg_.island_name() + "/esub-" + std::to_string(next_sub_++);
  sub.service = service;
  sub.event = event;
  sub.subscriber = subscriber;
  sub.sink = sink;
  sub.lease = lease;
  const std::string id = sub.id;
  auto [it, inserted] = subs_.emplace(id, std::move(sub));
  arm_expiry(it->second);
  // Record the lease in the VSR (system of record; delivery state
  // stays here). Best-effort: routing works even if the VSR is
  // briefly unreachable.
  vsr_.put_subscription({id, service, event, subscriber, 0}, lease,
                        [](const Status&) {});
  done(Value(ValueMap{
      {"lease", Value(id)},
      {"duration", Value(static_cast<std::int64_t>(lease))},
  }));
}

void EventRouter::handle_renew(const ValueList& args, InvokeResultFn done) {
  if (args.size() != 2 || !args[0].is_string() || !args[1].is_int()) {
    done(invalid_argument("renew(lease, duration)"));
    return;
  }
  auto it = subs_.find(args[0].as_string());
  if (it == subs_.end()) {
    done(not_found("no such lease: " + args[0].as_string()));
    return;
  }
  it->second.lease = clamp_lease(args[1].as_int());
  arm_expiry(it->second);
  vsr_.renew_subscription(it->first, it->second.lease, [](const Status&) {});
  done(Value(static_cast<std::int64_t>(it->second.lease)));
}

void EventRouter::handle_unsubscribe(const ValueList& args,
                                     InvokeResultFn done) {
  if (args.size() != 1 || !args[0].is_string()) {
    done(invalid_argument("unsubscribe(lease)"));
    return;
  }
  const std::string id = args[0].as_string();
  const bool existed = subs_.count(id) != 0;
  if (existed) drop_subscription(id);
  done(Value(existed));
}

void EventRouter::handle_deliver(const ValueList& args, InvokeResultFn done) {
  if (args.size() != 1 || !args[0].is_list()) {
    done(invalid_argument("deliver requires a batch list"));
    return;
  }
  std::int64_t acked = 0;
  for (const auto& item : args[0].as_list()) {
    if (!item.is_map()) continue;
    ++acked;  // ack = received; unknown leases still count as received
    const std::string sub_id =
        item.at("sub").is_string() ? item.at("sub").as_string() : "";
    auto it = local_subs_.find(sub_id);
    if (it == local_subs_.end()) continue;
    const auto seq = item.at("seq").is_int()
                         ? static_cast<std::uint64_t>(item.at("seq").as_int())
                         : 0;
    if (seq != 0 && seq <= it->second.last_seq) {
      // Batch re-sent after a lost ack (at-least-once): suppress the
      // duplicate so local handlers fire once per event.
      duplicates_dropped_.inc();
      continue;
    }
    if (seq != 0) it->second.last_seq = seq;
    const std::string service = item.at("service").is_string()
                                    ? item.at("service").as_string()
                                    : it->second.service;
    const std::string event = item.at("event").is_string()
                                  ? item.at("event").as_string()
                                  : it->second.event;
    const Value payload = item.at("payload");
    events_delivered_.inc();
    // Copy the handler: it may unsubscribe and invalidate `it`.
    auto handler = it->second.handler;
    adapter_.emit_event(service, event, payload);
    if (handler) handler(service, event, payload);
  }
  done(Value(acked));
}

void EventRouter::on_native_event(const std::string& service,
                                  const std::string& event,
                                  const Value& payload) {
  for (auto& [id, sub] : subs_) {
    if (sub.service != service || sub.event != event) continue;
    sub.queue.push_back({sub.next_seq++, service, event, payload});
    if (sub.queue.size() > options_.max_queue &&
        sub.queue.size() > sub.inflight) {
      // Bounded queue: drop the oldest *unsent* event. Entries before
      // `inflight` are on the wire awaiting ack and must survive for
      // at-least-once delivery.
      sub.queue.erase(sub.queue.begin() +
                      static_cast<std::ptrdiff_t>(sub.inflight));
      events_dropped_.inc();
    }
    schedule_flush(sub);
  }
}

void EventRouter::arm_expiry(Subscription& sub) {
  auto& sched = net_.scheduler();
  if (sub.expiry_event != 0) sched.cancel(sub.expiry_event);
  sub.expiry_event =
      sched.after(sub.lease, [this, id = sub.id] { expire(id); });
}

void EventRouter::expire(const std::string& id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return;
  it->second.expiry_event = 0;
  leases_expired_.inc();
  drop_subscription(id);
}

void EventRouter::drop_subscription(const std::string& id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return;
  auto& sched = net_.scheduler();
  auto& sub = it->second;
  if (sub.expiry_event != 0) sched.cancel(sub.expiry_event);
  if (sub.flush_event != 0) sched.cancel(sub.flush_event);
  if (sub.retry_event != 0) sched.cancel(sub.retry_event);
  const std::string service = sub.service;
  subs_.erase(it);
  release_watch(service);
  vsr_.remove_subscription(id, [](const Status&) {});
}

Status EventRouter::ensure_watch(const LocalService& service) {
  auto& watch = watches_[service.name];
  if (!watch.active) {
    auto status = adapter_.watch_events(
        service, [this](const std::string& svc, const std::string& ev,
                        const Value& payload) {
          on_native_event(svc, ev, payload);
        });
    if (!status.is_ok()) {
      if (watch.refs == 0) watches_.erase(service.name);
      return status;
    }
    watch.active = true;
  }
  ++watch.refs;
  return Status::ok();
}

void EventRouter::release_watch(const std::string& service) {
  auto it = watches_.find(service);
  if (it == watches_.end()) return;
  if (it->second.refs > 0) --it->second.refs;
  if (it->second.refs == 0) {
    if (it->second.active) adapter_.unwatch_events(service);
    watches_.erase(it);
  }
}

void EventRouter::schedule_flush(Subscription& sub) {
  // While a batch is on the wire or a retry timer is pending, new
  // events just queue; the ack/retry path continues the drain.
  if (sub.sending || sub.retry_event != 0) return;
  if (sub.queue.size() >= options_.max_batch) {
    if (sub.flush_event != 0) {
      net_.scheduler().cancel(sub.flush_event);
      sub.flush_event = 0;
    }
    flush(sub.id);
    return;
  }
  if (sub.flush_event == 0) {
    // Batch window: coalesce a burst into one deliver() call.
    sub.flush_event =
        net_.scheduler().after(options_.batch_window, [this, id = sub.id] {
          auto it = subs_.find(id);
          if (it == subs_.end()) return;
          it->second.flush_event = 0;
          flush(id);
        });
  }
}

void EventRouter::flush(const std::string& id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return;
  auto& sub = it->second;
  if (sub.sending || sub.queue.empty()) return;
  const std::size_t n = std::min(sub.queue.size(), options_.max_batch);
  sub.inflight = n;
  sub.sending = true;
  ValueList batch;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& q = sub.queue[i];
    batch.push_back(Value(ValueMap{
        {"sub", Value(sub.id)},
        {"seq", Value(static_cast<std::int64_t>(q.seq))},
        {"service", Value(q.service)},
        {"event", Value(q.event)},
        {"payload", q.payload},
    }));
  }
  vsg_.call_remote(
      sub.sink, kBridgeService, bridge_interface(), "deliver",
      {Value(std::move(batch))},
      [this, id, n, start = net_.scheduler().now()](Result<Value> r) {
        delivery_latency_us_.observe(net_.scheduler().now() - start);
        auto it = subs_.find(id);
        if (it == subs_.end()) return;  // lease expired while in flight
        auto& sub = it->second;
        sub.sending = false;
        sub.inflight = 0;
        if (r.is_ok()) {
          for (std::size_t i = 0; i < n && !sub.queue.empty(); ++i) {
            sub.queue.pop_front();
          }
          events_routed_.inc(n);
          batches_sent_.inc();
          sub.backoff = 0;
          if (!sub.queue.empty()) flush(id);
          return;
        }
        // Transient transport failure: the batch stays queued
        // (at-least-once) and is retried with exponential backoff.
        delivery_retries_.inc();
        sub.backoff = sub.backoff == 0
                          ? options_.retry_base
                          : std::min(sub.backoff * 2, options_.retry_max);
        sub.retry_event = net_.scheduler().after(sub.backoff, [this, id] {
          auto it = subs_.find(id);
          if (it == subs_.end()) return;
          it->second.retry_event = 0;
          flush(id);
        });
      });
}

sim::Duration EventRouter::clamp_lease(sim::Duration lease) const {
  if (lease <= 0) return options_.default_lease;
  return std::min(lease, options_.max_lease);
}

Uri EventRouter::bridge_uri_for(const Uri& service_endpoint) {
  Uri bridge = service_endpoint;
  bridge.path = service_endpoint.scheme == "hcmb"
                    ? std::string("/") + kBridgeService
                    : std::string("/vsg/") + kBridgeService;
  return bridge;
}

}  // namespace hcm::core
