// Stream/Event Gateway — the paper's §4.2/§6 future-work extension.
// HTTP "does not map well to asynchronous notification scenarios", so
// event-driven integrations (motion sensors triggering AV streams) are
// poorly served by the SOAP VSG. This gateway gives islands a direct
// datagram-based publish/subscribe channel that bypasses HTTP entirely;
// bench_sec42_async_limits quantifies the difference against polling.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/service.hpp"
#include "common/value_codec.hpp"
#include "net/network.hpp"

namespace hcm::core {

constexpr std::uint16_t kEventGatewayPort = 8200;

class EventGateway {
 public:
  EventGateway(net::Network& net, net::NodeId node);
  ~EventGateway();
  EventGateway(const EventGateway&) = delete;
  EventGateway& operator=(const EventGateway&) = delete;

  [[nodiscard]] Status start();

  // Meshes this gateway with a peer (events published here are pushed
  // there; call on both sides for bidirectional flow).
  void add_peer(net::Endpoint peer);

  using EventFn = std::function<void(const std::string& topic,
                                     const Value& payload)>;
  // Local subscription.
  std::int64_t subscribe(const std::string& topic, EventFn fn);
  void unsubscribe(std::int64_t id);

  // Publishes locally and pushes to all peers (one datagram each).
  void publish(const std::string& topic, const Value& payload);

  [[nodiscard]] std::uint64_t events_published() const {
    return events_published_;
  }
  [[nodiscard]] std::uint64_t events_delivered() const {
    return events_delivered_;
  }

 private:
  void deliver(const std::string& topic, const Value& payload);

  net::Network& net_;
  net::NodeId node_;
  bool started_ = false;
  std::vector<net::Endpoint> peers_;
  struct Sub {
    std::string topic;
    EventFn fn;
  };
  std::map<std::int64_t, Sub> subs_;
  std::int64_t next_sub_ = 1;
  std::uint64_t events_published_ = 0;
  std::uint64_t events_delivered_ = 0;
};

}  // namespace hcm::core
