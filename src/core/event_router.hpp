// EventRouter: the cross-middleware event bridge. One router per
// island, riding the island's VSG. A client on any island subscribes
// to an event a service on any other island declares in its interface
// descriptor; the origin island hooks the native event source through
// its adapter and forwards events VSG-to-VSG with leases, bounded
// per-subscriber queues, burst batching, drop-oldest backpressure and
// at-least-once delivery (retry with exponential backoff on transient
// transport failure). The VSR keeps the subscription table as the
// system of record; delivery state lives at the origin.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "core/adapter.hpp"
#include "core/vsg.hpp"
#include "core/vsr.hpp"
#include "obs/metrics.hpp"

namespace hcm::core {

struct EventRouterOptions {
  std::size_t max_queue = 64;   // bounded per-subscriber queue (backpressure)
  std::size_t max_batch = 16;   // events coalesced into one deliver() call
  sim::Duration batch_window = sim::milliseconds(10);
  sim::Duration default_lease = sim::seconds(60);
  sim::Duration max_lease = sim::seconds(300);
  sim::Duration retry_base = sim::milliseconds(100);  // first backoff step
  sim::Duration retry_max = sim::seconds(5);          // backoff ceiling
};

class EventRouter {
 public:
  // The bridge is exposed as a VSG service under this name. It is
  // deliberately NOT published to the VSR and NOT exported into any
  // native middleware — it is framework plumbing, not a home service.
  static constexpr const char* kBridgeService = "__events__";

  EventRouter(net::Network& net, VirtualServiceGateway& vsg,
              MiddlewareAdapter& adapter, net::Endpoint vsr,
              EventRouterOptions options = {});
  ~EventRouter();
  EventRouter(const EventRouter&) = delete;
  EventRouter& operator=(const EventRouter&) = delete;

  // Exposes the bridge service on the island's VSG.
  [[nodiscard]] Status start();

  // --- Subscriber side ---------------------------------------------------
  using EventFn = std::function<void(const std::string& service,
                                     const std::string& event,
                                     const Value& payload)>;
  using SubscribeDoneFn = std::function<void(Result<std::string>)>;
  using DoneFn = std::function<void(const Status&)>;

  struct SubscribeOptions {
    sim::Duration lease = 0;  // 0 -> router default
    bool auto_renew = true;   // renew at half-lease until unsubscribed
  };

  // Subscribes this island to `event` of remote service `service`
  // (looked up in the VSR). On success `done` receives the lease id;
  // events then reach `handler` and are re-emitted natively through
  // the adapter's emit_event.
  void subscribe(const std::string& service, const std::string& event,
                 EventFn handler, SubscribeDoneFn done);
  void subscribe(const std::string& service, const std::string& event,
                 const SubscribeOptions& opts, EventFn handler,
                 SubscribeDoneFn done);
  // Cancels a subscription by lease id. Idempotent: unknown ids
  // succeed (the lease may simply have expired already).
  void unsubscribe(const std::string& lease_id, DoneFn done);

  // --- Origin side -------------------------------------------------------
  // Injects a native event from this island's middleware into the
  // bridge (adapters call this through the watch_events callback).
  void on_native_event(const std::string& service, const std::string& event,
                       const Value& payload);

  // --- Introspection / counters ------------------------------------------
  [[nodiscard]] std::size_t active_subscriptions() const {
    return subs_.size();
  }
  [[nodiscard]] std::size_t local_subscriptions() const {
    return local_subs_.size();
  }
  [[nodiscard]] std::uint64_t events_routed() const {
    return events_routed_.value();
  }
  [[nodiscard]] std::uint64_t events_dropped() const {
    return events_dropped_.value();
  }
  [[nodiscard]] std::uint64_t events_delivered() const {
    return events_delivered_.value();
  }
  [[nodiscard]] std::uint64_t batches_sent() const {
    return batches_sent_.value();
  }
  [[nodiscard]] std::uint64_t leases_expired() const {
    return leases_expired_.value();
  }
  [[nodiscard]] std::uint64_t delivery_retries() const {
    return delivery_retries_.value();
  }
  [[nodiscard]] std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_.value();
  }

  [[nodiscard]] const EventRouterOptions& options() const { return options_; }

  // Wire interface of the bridge (subscribe/renew/unsubscribe/deliver).
  [[nodiscard]] static const InterfaceDesc& bridge_interface();

 private:
  struct QueuedEvent {
    std::uint64_t seq = 0;
    std::string service;
    std::string event;
    Value payload;
  };

  // Origin-side record of one remote subscriber's lease.
  struct Subscription {
    std::string id;
    std::string service;
    std::string event;
    std::string subscriber;  // island name (diagnostics / VSR record)
    Uri sink;                // subscriber's bridge exposure
    sim::Duration lease = 0;
    sim::EventId expiry_event = 0;
    std::deque<QueuedEvent> queue;  // front [0, inflight) is on the wire
    std::size_t inflight = 0;
    std::uint64_t next_seq = 1;
    sim::EventId flush_event = 0;
    sim::EventId retry_event = 0;
    sim::Duration backoff = 0;
    bool sending = false;
  };

  // Subscriber-side record of a lease we hold on a remote service.
  struct LocalSub {
    std::string id;
    std::string service;
    std::string event;
    EventFn handler;
    Uri origin;  // origin island's bridge exposure
    sim::Duration lease = 0;
    bool auto_renew = true;
    sim::EventId renew_event = 0;
    std::uint64_t last_seq = 0;  // at-least-once: dedupe re-sent batches
  };

  struct Watch {
    std::size_t refs = 0;
    bool active = false;
  };

  // Wire handlers (origin side unless noted).
  void handle_subscribe(const ValueList& args, InvokeResultFn done);
  // Tail of handle_subscribe once the event's origin is validated:
  // registers the lease, arms expiry, records it in the VSR. `native`
  // is the adapter-side service to hook a watch on, or nullptr for
  // framework-origin services (VSG exposures like observability) whose
  // events are injected via on_native_event directly.
  void finish_subscribe(const std::string& service, const std::string& event,
                        const std::string& subscriber, const Uri& sink,
                        sim::Duration lease, const LocalService* native,
                        InvokeResultFn done);
  void handle_renew(const ValueList& args, InvokeResultFn done);
  void handle_unsubscribe(const ValueList& args, InvokeResultFn done);
  void handle_deliver(const ValueList& args, InvokeResultFn done);  // sub side

  void arm_expiry(Subscription& sub);
  void expire(const std::string& id);
  void drop_subscription(const std::string& id);
  [[nodiscard]] Status ensure_watch(const LocalService& service);
  void release_watch(const std::string& service);

  void schedule_flush(Subscription& sub);
  void flush(const std::string& id);

  void arm_renew(const std::string& id);
  [[nodiscard]] sim::Duration clamp_lease(sim::Duration lease) const;
  [[nodiscard]] static Uri bridge_uri_for(const Uri& service_endpoint);

  net::Network& net_;
  VirtualServiceGateway& vsg_;
  MiddlewareAdapter& adapter_;
  VsrClient vsr_;
  EventRouterOptions options_;

  std::map<std::string, Subscription> subs_;     // origin side, by lease id
  std::map<std::string, LocalSub> local_subs_;   // subscriber side, by id
  std::map<std::string, Watch> watches_;         // origin, by service name
  std::uint64_t next_sub_ = 1;

  std::string obs_scope_;
  obs::Counter& events_routed_;
  obs::Counter& events_dropped_;
  obs::Counter& events_delivered_;
  obs::Counter& batches_sent_;
  obs::Counter& leases_expired_;
  obs::Counter& delivery_retries_;
  obs::Counter& duplicates_dropped_;
  obs::Histogram& delivery_latency_us_;
};

}  // namespace hcm::core
