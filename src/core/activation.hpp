// Dynamic service activation — the first §6 future-work item: "we
// can't integrate ... dynamic service activation [with the HTTP-based
// prototype]". This extension adds it at the framework layer: a
// service can be registered dormant with a factory; the first call
// through its VSG exposure activates it (paying a simulated activation
// delay), and an idle timeout deactivates it again. Clients never see
// any of this — calls during activation are queued, not failed.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/service.hpp"
#include "core/vsg.hpp"

namespace hcm::core {

// Creates the live service object. Called on activation; the returned
// handler serves calls until deactivation destroys it.
using ServiceFactory = std::function<ServiceHandler()>;

class ActivationManager {
 public:
  struct Options {
    // Simulated cost of bringing the implementation up (process spawn,
    // device power-up, JVM start, ...).
    sim::Duration activation_delay = sim::milliseconds(500);
    // Dormant again after this much idle time; 0 = never deactivate.
    sim::Duration idle_timeout = sim::seconds(60);
  };

  ActivationManager(net::Network& net, VirtualServiceGateway& vsg)
      : net_(net), vsg_(vsg) {}
  ~ActivationManager();
  ActivationManager(const ActivationManager&) = delete;
  ActivationManager& operator=(const ActivationManager&) = delete;

  // Registers a dormant, activatable service and exposes it through
  // the VSG. Returns the exposure URI (publishable in the VSR like any
  // other service).
  [[nodiscard]] Result<Uri> register_activatable(const std::string& name,
                                                 const InterfaceDesc& iface,
                                                 ServiceFactory factory,
                                                 Options options);
  void unregister(const std::string& name);

  [[nodiscard]] bool is_active(const std::string& name) const;
  [[nodiscard]] std::uint64_t activations(const std::string& name) const;
  [[nodiscard]] std::uint64_t deactivations(const std::string& name) const;

 private:
  struct Entry {
    ServiceFactory factory;
    Options options;
    ServiceHandler live;  // empty when dormant
    bool activating = false;
    std::deque<std::function<void()>> queued;  // calls awaiting activation
    sim::EventId idle_event = 0;
    std::uint64_t activations = 0;
    std::uint64_t deactivations = 0;
  };

  void dispatch(const std::string& name, const std::string& method,
                const ValueList& args, InvokeResultFn done);
  void activate(const std::string& name);
  void touch(Entry& entry, const std::string& name);
  void deactivate(const std::string& name);

  net::Network& net_;
  VirtualServiceGateway& vsg_;
  std::map<std::string, Entry> entries_;
};

}  // namespace hcm::core
