#include "core/vsg.hpp"

#include "common/logging.hpp"

namespace hcm::core {

const char* to_string(VsgProtocol p) {
  switch (p) {
    case VsgProtocol::kSoap: return "soap";
    case VsgProtocol::kBinary: return "hcmb";
  }
  return "?";
}

VirtualServiceGateway::VirtualServiceGateway(net::Network& net,
                                             net::NodeId gateway_node,
                                             std::string island_name,
                                             std::uint16_t port,
                                             VsgProtocol protocol)
    : net_(net),
      node_(gateway_node),
      island_name_(std::move(island_name)),
      port_(port),
      protocol_(protocol),
      http_(net, gateway_node, port),
      soap_client_(net, gateway_node),
      binary_server_(net, gateway_node, static_cast<std::uint16_t>(port + 1)),
      binary_client_(net, gateway_node) {}

VirtualServiceGateway::~VirtualServiceGateway() = default;

Status VirtualServiceGateway::start() {
  if (protocol_ == VsgProtocol::kSoap) return http_.start();
  return binary_server_.start();
}

Result<Uri> VirtualServiceGateway::expose(const std::string& name,
                                          const InterfaceDesc& iface,
                                          ServiceHandler local_invoke) {
  if (exposed_.count(name) != 0) {
    return already_exists("already exposed through VSG: " + name);
  }
  Exposed exposed;
  exposed.iface = iface;
  exposed.handler = local_invoke;

  const std::string path = "/vsg/" + name;
  if (protocol_ == VsgProtocol::kSoap) {
    exposed.soap_service = std::make_unique<soap::SoapService>(http_, path);
    // One SOAP method per interface method; generated client proxy.
    for (const auto& m : iface.methods) {
      exposed.soap_service->register_method(
          m.name,
          [this, handler = exposed.handler, method = m.name](
              const soap::NamedValues& params, soap::CallResultFn done) {
            ++local_dispatches_;
            ValueList args;
            args.reserve(params.size());
            for (const auto& [k, v] : params) args.push_back(v);
            handler(method, args, std::move(done));
          });
    }
    Uri uri = endpoint_uri(net_, "http", {node_, port_}, path);
    exposed_[name] = std::move(exposed);
    return uri;
  }

  // Binary protocol: register under the service name directly.
  binary_server_.register_service(
      name, [this, handler = exposed.handler](const std::string& method,
                                              const ValueList& args,
                                              InvokeResultFn done) {
        ++local_dispatches_;
        handler(method, args, std::move(done));
      });
  Uri uri = endpoint_uri(net_, "hcmb",
                         {node_, static_cast<std::uint16_t>(port_ + 1)}, "/" + name);
  exposed_[name] = std::move(exposed);
  return uri;
}

Uri VirtualServiceGateway::exposure_uri(const std::string& name) {
  if (protocol_ == VsgProtocol::kSoap) {
    return endpoint_uri(net_, "http", {node_, port_}, "/vsg/" + name);
  }
  return endpoint_uri(net_, "hcmb",
                      {node_, static_cast<std::uint16_t>(port_ + 1)},
                      "/" + name);
}

void VirtualServiceGateway::unexpose(const std::string& name) {
  auto it = exposed_.find(name);
  if (it == exposed_.end()) return;
  if (protocol_ == VsgProtocol::kSoap) {
    // SoapService unregisters its route when destroyed with the entry.
  } else {
    binary_server_.unregister_service(name);
  }
  exposed_.erase(it);
}

void VirtualServiceGateway::call_remote(const Uri& endpoint,
                                        const std::string& service_name,
                                        const InterfaceDesc& iface,
                                        const std::string& method,
                                        const ValueList& args,
                                        InvokeResultFn done) {
  const MethodDesc* desc = iface.find_method(method);
  if (desc == nullptr) {
    done(not_found("interface " + iface.name + " has no method " + method));
    return;
  }
  if (auto status = check_args(*desc, args); !status.is_ok()) {
    done(status);
    return;
  }
  auto resolved = resolve_endpoint(net_, endpoint);
  if (!resolved.is_ok()) {
    done(resolved.status());
    return;
  }
  ++remote_calls_;
  if (endpoint.scheme == "hcmb") {
    binary_client_.call(resolved.value(), service_name, method, args,
                        std::move(done));
    return;
  }
  soap::NamedValues params;
  for (std::size_t i = 0; i < args.size(); ++i) {
    params.emplace_back(i < desc->params.size() ? desc->params[i].name
                                                : "arg" + std::to_string(i),
                        args[i]);
  }
  soap_client_.call(resolved.value(), endpoint.path, "urn:hcm:" + iface.name,
                    method, params, std::move(done));
}

}  // namespace hcm::core
