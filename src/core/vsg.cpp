#include "core/vsg.hpp"

#include "common/logging.hpp"
#include "obs/instrument.hpp"
#include "obs/slab.hpp"
#include "obs/trace.hpp"

namespace hcm::core {

const char* to_string(VsgProtocol p) {
  switch (p) {
    case VsgProtocol::kSoap: return "soap";
    case VsgProtocol::kBinary: return "hcmb";
  }
  return "?";
}

VirtualServiceGateway::VirtualServiceGateway(net::Network& net,
                                             net::NodeId gateway_node,
                                             std::string island_name,
                                             std::uint16_t port,
                                             VsgProtocol protocol)
    : net_(net),
      node_(gateway_node),
      island_name_(std::move(island_name)),
      port_(port),
      protocol_(protocol),
      http_(net, gateway_node, port),
      // The VSG backbone reuses one connection per peer gateway: the
      // cross-island call rate makes per-call TCP setup the dominant
      // latency term otherwise.
      soap_client_(net, gateway_node,
                   http::HttpClient::Options{.keep_alive = true}),
      binary_server_(net, gateway_node, static_cast<std::uint16_t>(port + 1)),
      binary_client_(net, gateway_node),
      obs_scope_(
          obs::shard_registry().unique_scope("vsg." + island_name_)),
      remote_calls_(
          obs::shard_registry().counter(obs_scope_ + ".remote_calls")),
      local_dispatches_(
          obs::shard_registry().counter(obs_scope_ + ".local_dispatches")),
      remote_errors_(
          obs::shard_registry().counter(obs_scope_ + ".remote_errors")),
      remote_latency_us_(obs::shard_registry().histogram(
          obs_scope_ + ".remote_latency_us")) {}

VirtualServiceGateway::~VirtualServiceGateway() = default;

Status VirtualServiceGateway::start() {
  if (protocol_ == VsgProtocol::kSoap) return http_.start();
  return binary_server_.start();
}

Result<Uri> VirtualServiceGateway::expose(const std::string& name,
                                          const InterfaceDesc& iface,
                                          ServiceHandler local_invoke) {
  if (exposed_.count(name) != 0) {
    return already_exists("already exposed through VSG: " + name);
  }
  Exposed exposed;
  exposed.iface = iface;
  exposed.handler = local_invoke;

  // Per-op metrics, created eagerly so every mounted wire op has a
  // registered latency histogram even before its first call (hcm_lint's
  // vsg-op-latency rule checks exactly this). Resolved once here — the
  // dispatch path must not rebuild metric names or look them up by
  // string per call.
  struct OpMetrics {
    obs::Counter* calls;
    obs::Histogram* latency_us;
    std::string span_label;
  };
  auto& reg = obs::Registry::global();
  auto ops = std::make_shared<std::map<std::string, OpMetrics, std::less<>>>();
  for (const auto& m : iface.methods) {
    const std::string op = obs_scope_ + ".op." + name + "." + m.name;
    (*ops)[m.name] = OpMetrics{&reg.counter(op + ".calls"),
                               &reg.histogram(op + "_us"),
                               "vsg.dispatch:" + name + "." + m.name};
  }
  // Dispatch glue shared by both protocols: count the op, open a span
  // (child of whatever wire context the channel made current), and
  // observe latency + close the span when the handler completes.
  auto dispatch = [this, name, ops](const ServiceHandler& handler,
                                    const std::string& method,
                                    const ValueList& args,
                                    InvokeResultFn done) {
    local_dispatches_.inc();
    auto& sched = net_.scheduler();
    auto it = ops->find(method);
    if (it == ops->end()) {
      // Off-interface method straight off the wire (a client-side
      // check rejects these before sending); keep the old lazy-metric
      // behaviour for it.
      auto& r = obs::Registry::global();
      const std::string op = obs_scope_ + ".op." + name + "." + method;
      it = ops->emplace(method, OpMetrics{&r.counter(op + ".calls"),
                                          &r.histogram(op + "_us"),
                                          "vsg.dispatch:" + name + "." +
                                              method})
               .first;
    }
    const OpMetrics& om = it->second;
    om.calls->inc();
    auto& tracer = obs::Tracer::global();
    const std::uint64_t span_id =
        tracer.begin_span(om.span_label, obs_scope_, sched.now());
    obs::Tracer::Scope scope(tracer, tracer.context_of(span_id));
    handler(method, args,
            obs::observe_completion(sched, *om.latency_us, nullptr, span_id,
                                    std::move(done)));
  };

  const std::string path = "/vsg/" + name;
  if (protocol_ == VsgProtocol::kSoap) {
    exposed.soap_service = std::make_unique<soap::SoapService>(http_, path);
    // One SOAP method per interface method; generated client proxy.
    for (const auto& m : iface.methods) {
      exposed.soap_service->register_method(
          m.name,
          // args lives in the (mutable) closure so its capacity is
          // reused call over call; dispatch consumes it synchronously
          // and nested re-entry is impossible within a frame (loopback
          // delivery is scheduled, never inline).
          [dispatch, handler = exposed.handler, method = m.name,
           args = ValueList{}](const soap::NamedValues& params,
                               soap::CallResultFn done) mutable {
            args.clear();
            args.reserve(params.size());
            for (const auto& [k, v] : params) args.push_back(v);
            dispatch(handler, method, args, std::move(done));
          });
    }
    Uri uri = endpoint_uri(net_, "http", {node_, port_}, path);
    exposed_[name] = std::move(exposed);
    return uri;
  }

  // Binary protocol: register under the service name directly.
  binary_server_.register_service(
      name, [dispatch, handler = exposed.handler](const std::string& method,
                                                  const ValueList& args,
                                                  InvokeResultFn done) {
        dispatch(handler, method, args, std::move(done));
      });
  Uri uri = endpoint_uri(net_, "hcmb",
                         {node_, static_cast<std::uint16_t>(port_ + 1)}, "/" + name);
  exposed_[name] = std::move(exposed);
  return uri;
}

std::vector<std::pair<std::string, std::string>>
VirtualServiceGateway::exposed_ops() const {
  std::vector<std::pair<std::string, std::string>> ops;
  for (const auto& [name, exposed] : exposed_) {
    for (const auto& m : exposed.iface.methods) ops.emplace_back(name, m.name);
  }
  return ops;
}

Uri VirtualServiceGateway::exposure_uri(const std::string& name) {
  if (protocol_ == VsgProtocol::kSoap) {
    return endpoint_uri(net_, "http", {node_, port_}, "/vsg/" + name);
  }
  return endpoint_uri(net_, "hcmb",
                      {node_, static_cast<std::uint16_t>(port_ + 1)},
                      "/" + name);
}

void VirtualServiceGateway::unexpose(const std::string& name) {
  auto it = exposed_.find(name);
  if (it == exposed_.end()) return;
  if (protocol_ == VsgProtocol::kSoap) {
    // SoapService unregisters its route when destroyed with the entry.
  } else {
    binary_server_.unregister_service(name);
  }
  exposed_.erase(it);
}

void VirtualServiceGateway::call_remote(const Uri& endpoint,
                                        const std::string& service_name,
                                        const InterfaceDesc& iface,
                                        const std::string& method,
                                        const ValueList& args,
                                        InvokeResultFn done) {
  const MethodDesc* desc = iface.find_method(method);
  if (desc == nullptr) {
    done(not_found("interface " + iface.name + " has no method " + method));
    return;
  }
  if (auto status = check_args(*desc, args); !status.is_ok()) {
    done(status);
    return;
  }
  auto resolved = resolve_endpoint(net_, endpoint);
  if (!resolved.is_ok()) {
    done(resolved.status());
    return;
  }
  remote_calls_.inc();
  auto& tracer = obs::Tracer::global();
  auto& sched = net_.scheduler();
  // Label built only when a trace is being recorded — begin_span is a
  // no-op when disabled, but the concatenation wouldn't be.
  const std::uint64_t span_id =
      tracer.enabled()
          ? tracer.begin_span("vsg.call:" + service_name + "." + method,
                              obs_scope_, sched.now())
          : 0;
  // Current while the wire client starts, so its span nests under ours.
  obs::Tracer::Scope scope(tracer, tracer.context_of(span_id));
  done = obs::observe_completion(sched, remote_latency_us_, &remote_errors_,
                                 span_id, std::move(done));
  if (endpoint.scheme == "hcmb") {
    binary_client_.call(resolved.value(), service_name, method, args,
                        std::move(done));
    return;
  }
  // Scratch reuse: entry names assign into retained capacity, values
  // copy-assign (no allocation for scalars), and the namespace string
  // rebuilds in place. Both are done with by the time soap_client_.call
  // returns (the call body renders synchronously).
  auto& params = params_scratch_;
  params.resize(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i < desc->params.size()) {
      params[i].first.assign(desc->params[i].name);
    } else {
      params[i].first.assign("arg");
      params[i].first += std::to_string(i);
    }
    params[i].second = args[i];
  }
  ns_scratch_.assign("urn:hcm:");
  ns_scratch_ += iface.name;
  soap_client_.call(resolved.value(), endpoint.path, ns_scratch_, method,
                    params, std::move(done));
}

}  // namespace hcm::core
