// ShardChannel: routes framework-level closures to the shard that owns
// a node. The Network layer marshals *protocol* events (datagrams,
// stream deliveries) across shards; this is the same discipline one
// level up, for orchestration code (MetaMiddleware fan-out, VSR
// republication) that must run component methods on the component's
// home shard rather than wherever the caller happens to be bound.
//
// Semantics (docs/SHARDING.md):
//   - no kernel attached          -> direct call (legacy, byte-identical)
//   - caller bound to same shard  -> direct call
//   - kernel parked (setup, or a coordinator between windows) -> run
//     inline under the target shard's context, so scheduler() resolves
//     to that shard's slab
//   - running worker, other shard -> conservative cross-shard post
//     (never earlier than one lookahead out)
#pragma once

#include <functional>

#include "net/network.hpp"
#include "sim/sharded_kernel.hpp"

namespace hcm::core {

class ShardChannel {
 public:
  // Shard the calling context is bound to (0 when unbound / no kernel).
  [[nodiscard]] static sim::ShardId current_shard(net::Network& net);

  // Run `fn` in the context of `shard` / the shard owning `node`.
  static void run_on_shard(net::Network& net, sim::ShardId shard,
                           std::function<void()> fn);
  static void run_on_node(net::Network& net, net::NodeId node,
                          std::function<void()> fn);
};

}  // namespace hcm::core
