#include "core/pcm.hpp"

#include "common/logging.hpp"
#include "obs/slab.hpp"

namespace hcm::core {

Pcm::Pcm(net::Network& net, VirtualServiceGateway& vsg, net::Endpoint vsr,
         std::unique_ptr<MiddlewareAdapter> adapter)
    : net_(net),
      vsg_(vsg),
      vsr_(net, vsg.node(), vsr),
      adapter_(std::move(adapter)),
      proxygen_(vsg),
      obs_scope_(obs::shard_registry().unique_scope("pcm." +
                                                      vsg.island_name())),
      wsdl_generations_(
          obs::shard_registry().counter(obs_scope_ + ".wsdl_generations")),
      renew_fallbacks_(
          obs::shard_registry().counter(obs_scope_ + ".renew_fallbacks")),
      refreshes_(obs::shard_registry().counter(obs_scope_ + ".refreshes")),
      refresh_latency_us_(obs::shard_registry().histogram(
          obs_scope_ + ".refresh_latency_us")) {}

void Pcm::refresh(DoneFn done) {
  refreshes_.inc();
  done = [done = std::move(done), &sched = net_.scheduler(),
          &latency = refresh_latency_us_,
          start = net_.scheduler().now()](const Status& s) {
    latency.observe(sched.now() - start);
    done(s);
  };
  publish_locals(
      [this, done = std::move(done)](const Status& publish_status) mutable {
        if (!publish_status.is_ok()) {
          done(publish_status);
          return;
        }
        import_remotes(std::move(done));
      });
}

void Pcm::publish_locals(DoneFn done) {
  adapter_->list_services([this, done = std::move(done)](
                              Result<std::vector<LocalService>> services) {
    if (!services.is_ok()) {
      done(services.status());
      return;
    }
    auto first_error = std::make_shared<Status>();
    // When every set change has been acknowledged by the VSR, renew the
    // leases of the unchanged remainder — in delta mode one
    // fingerprint-guarded call covers them all; in snapshot mode they
    // were just republished wholesale, so leases are already fresh.
    auto after_changes = [this, first_error,
                          done = std::move(done)]() mutable {
      if (!first_error->is_ok() || sync_mode_ == SyncMode::kSnapshot ||
          published_.empty()) {
        done(*first_error);
        return;
      }
      renew_origin_lease(std::move(done));
    };
    auto remaining = std::make_shared<std::size_t>(1);
    auto after_shared =
        std::make_shared<decltype(after_changes)>(std::move(after_changes));
    auto step = [remaining, first_error, after_shared](const Status& s) {
      if (!s.is_ok() && first_error->is_ok()) *first_error = s;
      if (--*remaining == 0) (*after_shared)();
    };

    // Retire client proxies for services that left the middleware, so
    // the VSR never advertises a dead endpoint.
    std::set<std::string> current;
    for (const auto& service : services.value()) current.insert(service.name);
    for (auto it = published_.begin(); it != published_.end();) {
      if (current.count(it->first) == 0) {
        vsg_.unexpose(it->first);
        ++*remaining;
        vsr_.unpublish(it->first, step);
        it = published_.erase(it);
      } else {
        ++it;
      }
    }

    for (const auto& service : services.value()) {
      // Never republish a service this PCM itself imported — that would
      // bounce services between islands forever.
      if (imported_.count(service.name) != 0) continue;

      auto pub = published_.find(service.name);
      if (pub == published_.end()) {
        auto generated = proxygen_.generate_client_proxy(service, *adapter_);
        if (!generated.is_ok()) {
          if (first_error->is_ok()) *first_error = generated.status();
          continue;
        }
        PublishedRecord rec;
        rec.wsdl = std::move(generated).take();
        rec.digest = soap::wsdl_digest(rec.wsdl);
        wsdl_generations_.inc();
        pub = published_.emplace(service.name, std::move(rec)).first;
      } else if (sync_mode_ == SyncMode::kDelta) {
        // Already exposed and the document is cached; its lease rides
        // the single renewOrigin call after the set changes land.
        continue;
      }
      // New service (either mode), or snapshot mode's per-refresh
      // republish of everything — the cached document means no
      // re-emission either way.
      VsrEntry entry;
      entry.name = service.name;
      entry.category = service.interface.name;
      entry.origin = vsg_.island_name();
      entry.wsdl = pub->second.wsdl;
      ++*remaining;
      vsr_.publish(entry, kPublishTtl, step);
    }
    step(Status::ok());  // releases the initial hold
  });
}

void Pcm::renew_origin_lease(DoneFn done) {
  std::map<std::string, std::string> digest_by_name;
  for (const auto& [name, rec] : published_) digest_by_name[name] = rec.digest;
  vsr_.renew_origin(
      vsg_.island_name(), soap::registry_fingerprint(digest_by_name),
      kPublishTtl, [this, done = std::move(done)](const Status& s) mutable {
        if (s.is_ok()) {
          done(Status::ok());
          return;
        }
        // The registry's view of our set diverged (restart wiped it, a
        // lease lapsed mid-period, ...). Re-upload everything once; the
        // next refresh is back on the O(1) path.
        renew_fallbacks_.inc();
        log_debug("pcm", "renewOrigin refused for ", vsg_.island_name(), " (",
                  s.to_string(), "); republishing ", published_.size(),
                  " entries");
        republish_all(std::move(done));
      });
}

void Pcm::republish_all(DoneFn done) {
  adapter_->list_services([this, done = std::move(done)](
                              Result<std::vector<LocalService>> services) {
    if (!services.is_ok()) {
      done(services.status());
      return;
    }
    auto remaining = std::make_shared<std::size_t>(1);
    auto first_error = std::make_shared<Status>();
    auto done_shared = std::make_shared<DoneFn>(std::move(done));
    auto step = [remaining, first_error, done_shared](const Status& s) {
      if (!s.is_ok() && first_error->is_ok()) *first_error = s;
      if (--*remaining == 0) (*done_shared)(*first_error);
    };
    for (const auto& service : services.value()) {
      auto pub = published_.find(service.name);
      if (pub == published_.end()) continue;
      VsrEntry entry;
      entry.name = service.name;
      entry.category = service.interface.name;
      entry.origin = vsg_.island_name();
      entry.wsdl = pub->second.wsdl;
      ++*remaining;
      vsr_.publish(entry, kPublishTtl, step);
    }
    step(Status::ok());
  });
}

void Pcm::import_remotes(DoneFn done) {
  if (sync_mode_ == SyncMode::kSnapshot) {
    import_snapshot(std::move(done));
  } else {
    import_delta(std::move(done));
  }
}

bool Pcm::apply_upsert(const std::string& name, const std::string& origin,
                       const std::string& digest, const std::string& wsdl) {
  auto it = imported_.find(name);
  if (it != imported_.end()) {
    if (it->second == digest) return true;  // unchanged — nothing to do
    // Description changed under the same name: regenerate the server
    // proxy from the new document.
    adapter_->unexport_service(name);
    imported_.erase(it);
  }
  auto doc = soap::parse_wsdl(wsdl);
  if (!doc.is_ok()) {
    // Non-fatal: one island publishing a malformed description must
    // not block the rest of the mesh.
    log_warn("pcm", "bad WSDL for ", name, ": ", doc.status().to_string());
    return false;
  }
  LocalService service;
  service.name = name;
  service.interface = doc.value().interface;
  service.attributes["hcm.origin"] = Value(origin);
  service.attributes["hcm.imported"] = Value(true);
  auto handler = proxygen_.generate_server_proxy(doc.value());
  auto status = adapter_->export_service(service, std::move(handler));
  if (!status.is_ok()) {
    // Also non-fatal: some conversions are inherently impossible
    // (e.g. a 3-argument mail method has no X10 ON/OFF mapping —
    // the asymmetry §4.2 of the paper runs into).
    log_debug("pcm", "cannot export ", name, " into ",
              adapter_->middleware_name(), ": ", status.to_string());
    return false;
  }
  imported_[name] = digest;
  return true;
}

void Pcm::retire_import(const std::string& name) {
  auto it = imported_.find(name);
  if (it == imported_.end()) return;
  adapter_->unexport_service(name);
  imported_.erase(it);
}

void Pcm::import_snapshot(DoneFn done) {
  vsr_.list_all([this, done = std::move(done)](
                    Result<std::vector<VsrEntry>> entries) {
    if (!entries.is_ok()) {
      done(entries.status());
      return;
    }
    std::set<std::string> seen_foreign;
    for (const auto& entry : entries.value()) {
      if (entry.origin == vsg_.island_name()) continue;
      seen_foreign.insert(entry.name);
      apply_upsert(entry.name, entry.origin, entry.digest, entry.wsdl);
    }
    // Retire server proxies whose VSR entry is gone (stale services
    // must not linger — the VSR lookup invariant).
    for (auto it = imported_.begin(); it != imported_.end();) {
      if (seen_foreign.count(it->first) == 0) {
        adapter_->unexport_service(it->first);
        it = imported_.erase(it);
      } else {
        ++it;
      }
    }
    done(Status::ok());
  });
}

void Pcm::import_delta(DoneFn done) {
  vsr_.changes_since([this, done = std::move(done)](Result<VsrDelta> r) {
    if (!r.is_ok()) {
      done(r.status());
      return;
    }
    const VsrDelta& delta = r.value();
    if (delta.full) {
      // Authoritative snapshot (first sync, or resync after journal
      // compaction / registry restart): converge to exactly this set.
      std::set<std::string> seen_foreign;
      for (const auto& c : delta.changes) {
        if (c.kind != VsrChange::Kind::kUpsert) continue;
        if (c.origin == vsg_.island_name()) continue;
        seen_foreign.insert(c.name);
        apply_upsert(c.name, c.origin, c.digest, c.wsdl);
      }
      for (auto it = imported_.begin(); it != imported_.end();) {
        if (seen_foreign.count(it->first) == 0) {
          adapter_->unexport_service(it->first);
          it = imported_.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      // O(Δ): only the touched names are parsed / (un)exported.
      for (const auto& c : delta.changes) {
        if (c.kind == VsrChange::Kind::kRemove) {
          retire_import(c.name);  // no-op for our own unpublish echoes
          continue;
        }
        if (c.origin == vsg_.island_name()) continue;
        apply_upsert(c.name, c.origin, c.digest, c.wsdl);
      }
    }
    done(Status::ok());
  });
}

}  // namespace hcm::core
