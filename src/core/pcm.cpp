#include "core/pcm.hpp"

#include "common/logging.hpp"

namespace hcm::core {

Pcm::Pcm(net::Network& net, VirtualServiceGateway& vsg, net::Endpoint vsr,
         std::unique_ptr<MiddlewareAdapter> adapter)
    : net_(net),
      vsg_(vsg),
      vsr_(net, vsg.node(), vsr),
      adapter_(std::move(adapter)),
      proxygen_(vsg) {}

void Pcm::refresh(DoneFn done) {
  publish_locals(
      [this, done = std::move(done)](const Status& publish_status) mutable {
        if (!publish_status.is_ok()) {
          done(publish_status);
          return;
        }
        import_remotes(std::move(done));
      });
}

void Pcm::publish_locals(DoneFn done) {
  adapter_->list_services([this, done = std::move(done)](
                              Result<std::vector<LocalService>> services) {
    if (!services.is_ok()) {
      done(services.status());
      return;
    }
    auto remaining = std::make_shared<std::size_t>(1);
    auto first_error = std::make_shared<Status>();
    auto done_shared = std::make_shared<DoneFn>(std::move(done));
    auto step = [remaining, first_error, done_shared](const Status& s) {
      if (!s.is_ok() && first_error->is_ok()) *first_error = s;
      if (--*remaining == 0) (*done_shared)(*first_error);
    };

    // Retire client proxies for services that left the middleware, so
    // the VSR never advertises a dead endpoint.
    std::set<std::string> current;
    for (const auto& service : services.value()) current.insert(service.name);
    for (auto it = published_.begin(); it != published_.end();) {
      if (current.count(*it) == 0) {
        vsg_.unexpose(*it);
        ++*remaining;
        vsr_.unpublish(*it, step);
        it = published_.erase(it);
      } else {
        ++it;
      }
    }

    for (const auto& service : services.value()) {
      // Never republish a service this PCM itself imported — that would
      // bounce services between islands forever.
      if (imported_.count(service.name) != 0) continue;

      std::string wsdl;
      if (published_.count(service.name) == 0) {
        auto generated = proxygen_.generate_client_proxy(service, *adapter_);
        if (!generated.is_ok()) {
          if (first_error->is_ok()) *first_error = generated.status();
          continue;
        }
        wsdl = std::move(generated).take();
        published_.insert(service.name);
      } else {
        // Already exposed: regenerate the (identical) WSDL for lease
        // renewal without re-exposing.
        wsdl = soap::emit_wsdl(service.interface, service.name,
                               vsg_.exposure_uri(service.name));
      }

      VsrEntry entry;
      entry.name = service.name;
      entry.category = service.interface.name;
      entry.origin = vsg_.island_name();
      entry.wsdl = wsdl;
      ++*remaining;
      vsr_.publish(entry, kPublishTtl, step);
    }
    step(Status::ok());  // releases the initial hold
  });
}

void Pcm::import_remotes(DoneFn done) {
  vsr_.list_all([this, done = std::move(done)](
                    Result<std::vector<VsrEntry>> entries) {
    if (!entries.is_ok()) {
      done(entries.status());
      return;
    }
    Status first_error;
    std::set<std::string> seen_foreign;
    for (const auto& entry : entries.value()) {
      if (entry.origin == vsg_.island_name()) continue;
      seen_foreign.insert(entry.name);
      if (imported_.count(entry.name) != 0) continue;

      auto doc = soap::parse_wsdl(entry.wsdl);
      if (!doc.is_ok()) {
        // Non-fatal: one island publishing a malformed description must
        // not block the rest of the mesh.
        log_warn("pcm", "bad WSDL for ", entry.name, ": ",
                 doc.status().to_string());
        continue;
      }
      LocalService service;
      service.name = entry.name;
      service.interface = doc.value().interface;
      service.attributes["hcm.origin"] = Value(entry.origin);
      service.attributes["hcm.imported"] = Value(true);
      auto handler = proxygen_.generate_server_proxy(doc.value());
      auto status = adapter_->export_service(service, std::move(handler));
      if (!status.is_ok()) {
        // Also non-fatal: some conversions are inherently impossible
        // (e.g. a 3-argument mail method has no X10 ON/OFF mapping —
        // the asymmetry §4.2 of the paper runs into).
        log_debug("pcm", "cannot export ", entry.name, " into ",
                  adapter_->middleware_name(), ": ", status.to_string());
        continue;
      }
      imported_.insert(entry.name);
    }
    // Retire server proxies whose VSR entry is gone (stale services
    // must not linger — the VSR lookup invariant).
    for (auto it = imported_.begin(); it != imported_.end();) {
      if (seen_foreign.count(*it) == 0) {
        adapter_->unexport_service(*it);
        it = imported_.erase(it);
      } else {
        ++it;
      }
    }
    done(first_error);
  });
}

}  // namespace hcm::core
