// Automatic proxy generation — the framework's answer to hand-written
// bridges. The paper's prototype generates proxy classes at JVM load
// time with Javassist; here proxies are generated at runtime from
// interface descriptors. Either way the property that matters holds:
// adding a service requires zero per-service glue code.
#pragma once

#include <cstdint>

#include "core/adapter.hpp"
#include "core/vsg.hpp"
#include "obs/metrics.hpp"
#include "obs/slab.hpp"
#include "soap/wsdl.hpp"

namespace hcm::core {

class ProxyGenerator {
 public:
  explicit ProxyGenerator(VirtualServiceGateway& vsg)
      : vsg_(vsg),
        obs_scope_(obs::shard_registry().unique_scope("proxygen")),
        client_proxies_(
            obs::shard_registry().counter(obs_scope_ + ".client_proxies")),
        server_proxies_(
            obs::shard_registry().counter(obs_scope_ + ".server_proxies")),
        sp_invokes_(
            obs::shard_registry().counter(obs_scope_ + ".sp_invokes")) {}

  // Client Proxy (paper Fig. 2, CP): converts the local service's
  // native interface into a VSG service. Exposes the service through
  // the VSG (calls land on adapter.invoke) and returns the WSDL that
  // describes the resulting VSG endpoint, ready for VSR publication.
  [[nodiscard]] Result<std::string> generate_client_proxy(
      const LocalService& service, MiddlewareAdapter& adapter);

  // Server Proxy (paper Fig. 2, SP): converts a remote VSG service
  // (described by its WSDL) into a native service handler, which the
  // adapter then exports into the local middleware.
  [[nodiscard]] ServiceHandler generate_server_proxy(
      const soap::WsdlDocument& remote);

  [[nodiscard]] std::uint64_t client_proxies_generated() const {
    return client_proxies_.value();
  }
  [[nodiscard]] std::uint64_t server_proxies_generated() const {
    return server_proxies_.value();
  }

 private:
  VirtualServiceGateway& vsg_;
  std::string obs_scope_;
  obs::Counter& client_proxies_;
  obs::Counter& server_proxies_;
  obs::Counter& sp_invokes_;
};

}  // namespace hcm::core
