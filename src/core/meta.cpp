#include "core/meta.hpp"

namespace hcm::core {

Result<MetaMiddleware::Island*> MetaMiddleware::add_island(
    const std::string& name, net::NodeId gateway_node,
    std::unique_ptr<MiddlewareAdapter> adapter, VsgProtocol protocol,
    std::uint16_t port) {
  if (islands_.count(name) != 0) {
    return already_exists("island already connected: " + name);
  }
  Island island;
  island.name = name;
  island.vsg = std::make_unique<VirtualServiceGateway>(net_, gateway_node,
                                                       name, port, protocol);
  auto status = island.vsg->start();
  if (!status.is_ok()) return status;
  island.pcm =
      std::make_unique<Pcm>(net_, *island.vsg, vsr_, std::move(adapter));
  island.pcm->set_sync_mode(sync_mode_);
  island.events = std::make_unique<EventRouter>(
      net_, *island.vsg, island.pcm->adapter(), vsr_);
  status = island.events->start();
  if (!status.is_ok()) return status;
  auto [it, inserted] = islands_.emplace(name, std::move(island));
  return &it->second;
}

void MetaMiddleware::set_sync_mode(Pcm::SyncMode mode) {
  sync_mode_ = mode;
  for (auto& [name, island] : islands_) island.pcm->set_sync_mode(mode);
}

MetaMiddleware::Island* MetaMiddleware::island(const std::string& name) {
  auto it = islands_.find(name);
  return it == islands_.end() ? nullptr : &it->second;
}

void MetaMiddleware::refresh_all(DoneFn done) {
  // Two passes: refresh() itself is publish-then-import, so running a
  // second round guarantees each island sees services published by
  // islands that refreshed after it in the first round.
  auto run_round = [this](DoneFn next) {
    auto remaining = std::make_shared<std::size_t>(islands_.size());
    auto first_error = std::make_shared<Status>();
    if (*remaining == 0) {
      next(Status::ok());
      return;
    }
    auto next_shared = std::make_shared<DoneFn>(std::move(next));
    for (auto& [name, island] : islands_) {
      island.pcm->refresh([remaining, first_error,
                           next_shared](const Status& s) {
        if (!s.is_ok() && first_error->is_ok()) *first_error = s;
        if (--*remaining == 0) (*next_shared)(*first_error);
      });
    }
  };
  run_round([run_round, done = std::move(done)](const Status& s) mutable {
    if (!s.is_ok()) {
      done(s);
      return;
    }
    run_round(std::move(done));
  });
}

void MetaMiddleware::start_auto_refresh(sim::Duration period) {
  stop_auto_refresh();
  auto_refresh_ = true;
  refresh_event_ = net_.scheduler().after(period, [this, period] {
    refresh_event_ = 0;
    refresh_all([this, period](const Status&) {
      if (auto_refresh_) start_auto_refresh(period);
    });
  });
}

void MetaMiddleware::stop_auto_refresh() {
  auto_refresh_ = false;
  if (refresh_event_ != 0) {
    net_.scheduler().cancel(refresh_event_);
    refresh_event_ = 0;
  }
}

}  // namespace hcm::core
