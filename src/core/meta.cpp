#include "core/meta.hpp"

#include "core/shard_channel.hpp"
#include "soap/wsdl.hpp"

namespace hcm::core {

Result<MetaMiddleware::Island*> MetaMiddleware::add_island(
    const std::string& name, net::NodeId gateway_node,
    std::unique_ptr<MiddlewareAdapter> adapter, VsgProtocol protocol,
    std::uint16_t port) {
  if (islands_.count(name) != 0) {
    return already_exists("island already connected: " + name);
  }
  Island island;
  island.name = name;
  island.vsg = std::make_unique<VirtualServiceGateway>(net_, gateway_node,
                                                       name, port, protocol);
  auto status = island.vsg->start();
  if (!status.is_ok()) return status;
  island.pcm =
      std::make_unique<Pcm>(net_, *island.vsg, vsr_, std::move(adapter));
  island.pcm->set_sync_mode(sync_mode_);
  island.events = std::make_unique<EventRouter>(
      net_, *island.vsg, island.pcm->adapter(), vsr_);
  status = island.events->start();
  if (!status.is_ok()) return status;
  auto [it, inserted] = islands_.emplace(name, std::move(island));
  return &it->second;
}

void MetaMiddleware::set_sync_mode(Pcm::SyncMode mode) {
  sync_mode_ = mode;
  for (auto& [name, island] : islands_) island.pcm->set_sync_mode(mode);
}

MetaMiddleware::Island* MetaMiddleware::island(const std::string& name) {
  auto it = islands_.find(name);
  return it == islands_.end() ? nullptr : &it->second;
}

void MetaMiddleware::refresh_all(DoneFn done) {
  // Two passes: refresh() itself is publish-then-import, so running a
  // second round guarantees each island sees services published by
  // islands that refreshed after it in the first round.
  // Each island's PCM runs on the shard owning its gateway node; its
  // refresh must be initiated there, and the per-island completions
  // marshaled back to the caller's shard, where the shared round
  // bookkeeping lives (single-writer, so no atomics needed).
  const sim::ShardId origin = ShardChannel::current_shard(net_);
  auto run_round = [this, origin](DoneFn next) {
    auto remaining = std::make_shared<std::size_t>(islands_.size());
    auto first_error = std::make_shared<Status>();
    if (*remaining == 0) {
      next(Status::ok());
      return;
    }
    auto next_shared = std::make_shared<DoneFn>(std::move(next));
    for (auto& [name, island] : islands_) {
      ShardChannel::run_on_node(
          net_, island.vsg->node(),
          [this, origin, pcm = island.pcm.get(), remaining, first_error,
           next_shared] {
            pcm->refresh([this, origin, remaining, first_error,
                          next_shared](const Status& s) {
              ShardChannel::run_on_shard(
                  net_, origin, [s, remaining, first_error, next_shared] {
                    if (!s.is_ok() && first_error->is_ok()) *first_error = s;
                    if (--*remaining == 0) (*next_shared)(*first_error);
                  });
            });
          });
    }
  };
  // After both rounds, renew the observability publications so an
  // enabled island's introspection entry keeps its lease exactly like
  // the PCM-published services.
  auto finish = [this, done = std::move(done)](const Status& s) mutable {
    if (!s.is_ok()) {
      done(s);
      return;
    }
    republish_observability(std::move(done));
  };
  run_round([run_round, finish = std::move(finish)](const Status& s) mutable {
    if (!s.is_ok()) {
      finish(s);
      return;
    }
    run_round(std::move(finish));
  });
}

Status MetaMiddleware::enable_observability(const std::string& island_name) {
  Island* isl = island(island_name);
  if (isl == nullptr) {
    return not_found("no such island: " + island_name);
  }
  if (obs_exports_.count(island_name) != 0) return Status::ok();
  if (obs_service_ == nullptr) {
    obs_service_ = std::make_unique<obs::ObservabilityService>(
        obs::Registry::global(), obs::Tracer::global());
    obs_service_->set_recorder(recorder_);
    obs_service_->set_health(health_);
  }
  ObsExport exp;
  exp.service_name =
      std::string(obs::ObservabilityService::kServiceName) + "-" + island_name;
  const InterfaceDesc iface = obs::ObservabilityService::describe_interface();
  auto uri = isl->vsg->expose(exp.service_name, iface, obs_service_->handler());
  if (!uri.is_ok()) return uri.status();
  exp.wsdl = soap::emit_wsdl(iface, exp.service_name, uri.value());
  exp.node = isl->vsg->node();
  exp.vsr = std::make_unique<VsrClient>(net_, exp.node, vsr_);

  VsrEntry entry;
  entry.name = exp.service_name;
  entry.category = iface.name;
  entry.origin = island_name;
  entry.wsdl = exp.wsdl;
  // Initiate from the gateway's shard so the client's events live
  // where its node does.
  ShardChannel::run_on_node(
      net_, exp.node, [vsr = exp.vsr.get(), entry = std::move(entry)] {
        vsr->publish(entry, Pcm::kPublishTtl, [](const Status&) {});
      });
  obs_exports_.emplace(island_name, std::move(exp));
  return Status::ok();
}

void MetaMiddleware::attach_telemetry(obs::TimeSeriesRecorder* recorder,
                                      obs::HealthMonitor* health) {
  recorder_ = recorder;
  health_ = health;
  if (obs_service_ != nullptr) {
    obs_service_->set_recorder(recorder_);
    obs_service_->set_health(health_);
  }
  if (health_ == nullptr) return;
  health_->set_transition_fn([this](const obs::HealthTransition& tr) {
    // Health transitions fire from the recorder's quiesced sampling
    // points (window barriers / sampling events). Re-inject them as
    // native events of every obs-enabled island's observability
    // exposure, from that island's own shard, so cross-island
    // subscribers receive healthChanged like any adapter event.
    const Value payload = tr.to_value();
    for (const auto& [island_name, exp] : obs_exports_) {
      Island* isl = island(island_name);
      if (isl == nullptr || isl->events == nullptr) continue;
      ShardChannel::run_on_node(
          net_, exp.node,
          [events = isl->events.get(), service = exp.service_name, payload] {
            events->on_native_event(service, "healthChanged", payload);
          });
    }
  });
}

void MetaMiddleware::republish_observability(DoneFn done) {
  auto remaining = std::make_shared<std::size_t>(obs_exports_.size());
  if (*remaining == 0) {
    done(Status::ok());
    return;
  }
  const sim::ShardId origin = ShardChannel::current_shard(net_);
  auto first_error = std::make_shared<Status>();
  auto done_shared = std::make_shared<DoneFn>(std::move(done));
  for (auto& [island_name, exp] : obs_exports_) {
    VsrEntry entry;
    entry.name = exp.service_name;
    entry.category = "Observability";
    entry.origin = island_name;
    entry.wsdl = exp.wsdl;
    // Same shard discipline as refresh_all: publish from the gateway's
    // shard, collect on the caller's.
    ShardChannel::run_on_node(
        net_, exp.node,
        [this, origin, vsr = exp.vsr.get(), entry = std::move(entry),
         remaining, first_error, done_shared] {
          vsr->publish(entry, Pcm::kPublishTtl,
                       [this, origin, remaining, first_error,
                        done_shared](const Status& s) {
                         ShardChannel::run_on_shard(
                             net_, origin,
                             [s, remaining, first_error, done_shared] {
                               if (!s.is_ok() && first_error->is_ok())
                                 *first_error = s;
                               if (--*remaining == 0)
                                 (*done_shared)(*first_error);
                             });
                       });
        });
  }
}

void MetaMiddleware::start_auto_refresh(sim::Duration period) {
  stop_auto_refresh();
  auto_refresh_ = true;
  refresh_event_ = net_.scheduler().after(period, [this, period] {
    refresh_event_ = 0;
    refresh_all([this, period](const Status&) {
      if (auto_refresh_) start_auto_refresh(period);
    });
  });
}

void MetaMiddleware::stop_auto_refresh() {
  auto_refresh_ = false;
  if (refresh_event_ != 0) {
    net_.scheduler().cancel(refresh_event_);
    refresh_event_ = 0;
  }
}

}  // namespace hcm::core
