#include "core/activation.hpp"

#include "common/logging.hpp"

namespace hcm::core {

ActivationManager::~ActivationManager() {
  for (auto& [name, entry] : entries_) {
    if (entry.idle_event != 0) net_.scheduler().cancel(entry.idle_event);
  }
}

Result<Uri> ActivationManager::register_activatable(const std::string& name,
                                                    const InterfaceDesc& iface,
                                                    ServiceFactory factory,
                                                    Options options) {
  if (entries_.count(name) != 0) {
    return already_exists("already activatable: " + name);
  }
  auto uri = vsg_.expose(
      name, iface,
      [this, name](const std::string& method, const ValueList& args,
                   InvokeResultFn done) {
        dispatch(name, method, args, std::move(done));
      });
  if (!uri.is_ok()) return uri;
  Entry entry;
  entry.factory = std::move(factory);
  entry.options = options;
  entries_[name] = std::move(entry);
  return uri;
}

void ActivationManager::unregister(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  if (it->second.idle_event != 0) {
    net_.scheduler().cancel(it->second.idle_event);
  }
  vsg_.unexpose(name);
  entries_.erase(it);
}

bool ActivationManager::is_active(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && static_cast<bool>(it->second.live);
}

std::uint64_t ActivationManager::activations(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.activations;
}

std::uint64_t ActivationManager::deactivations(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.deactivations;
}

void ActivationManager::dispatch(const std::string& name,
                                 const std::string& method,
                                 const ValueList& args, InvokeResultFn done) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    done(not_found("activatable service gone: " + name));
    return;
  }
  Entry& entry = it->second;
  if (entry.live) {
    touch(entry, name);
    entry.live(method, args, std::move(done));
    return;
  }
  // Dormant: queue the call and kick activation.
  entry.queued.push_back(
      [this, name, method, args, done = std::move(done)]() mutable {
        dispatch(name, method, args, std::move(done));
      });
  if (!entry.activating) {
    entry.activating = true;
    log_debug("activation", "activating ", name);
    net_.scheduler().after(entry.options.activation_delay,
                           [this, name] { activate(name); });
  }
}

void ActivationManager::activate(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;  // unregistered while activating
  Entry& entry = it->second;
  entry.activating = false;
  entry.live = entry.factory();
  ++entry.activations;
  touch(entry, name);
  // Drain calls that arrived while dormant/activating.
  auto queued = std::move(entry.queued);
  entry.queued.clear();
  for (auto& call : queued) call();
}

void ActivationManager::touch(Entry& entry, const std::string& name) {
  if (entry.options.idle_timeout <= 0) return;
  if (entry.idle_event != 0) net_.scheduler().cancel(entry.idle_event);
  entry.idle_event = net_.scheduler().after(
      entry.options.idle_timeout, [this, name] { deactivate(name); });
}

void ActivationManager::deactivate(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  entry.idle_event = 0;
  if (!entry.live) return;
  log_debug("activation", "deactivating idle ", name);
  entry.live = nullptr;  // destroys the live implementation
  ++entry.deactivations;
}

}  // namespace hcm::core
