// Virtual Service Gateway (paper §3.1): the per-island gateway that
// connects one middleware network to the others over a common wire
// protocol — SOAP in the paper's prototype, with a compact binary
// protocol as the ablation alternative.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/service.hpp"
#include "common/uri.hpp"
#include "core/binary_channel.hpp"
#include "core/naming.hpp"
#include "http/server.hpp"
#include "obs/metrics.hpp"
#include "soap/rpc.hpp"

namespace hcm::core {

enum class VsgProtocol { kSoap, kBinary };
const char* to_string(VsgProtocol p);

class VirtualServiceGateway {
 public:
  VirtualServiceGateway(net::Network& net, net::NodeId gateway_node,
                        std::string island_name,
                        std::uint16_t port = 8080,
                        VsgProtocol protocol = VsgProtocol::kSoap);
  ~VirtualServiceGateway();
  VirtualServiceGateway(const VirtualServiceGateway&) = delete;
  VirtualServiceGateway& operator=(const VirtualServiceGateway&) = delete;

  [[nodiscard]] Status start();

  [[nodiscard]] const std::string& island_name() const { return island_name_; }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] VsgProtocol protocol() const { return protocol_; }

  // --- Client Proxy direction ------------------------------------------
  // Exposes a local service through this gateway. Remote islands call
  // the returned endpoint URI; calls are forwarded to `local_invoke`.
  [[nodiscard]] Result<Uri> expose(const std::string& name,
                                   const InterfaceDesc& iface,
                                   ServiceHandler local_invoke);
  void unexpose(const std::string& name);
  [[nodiscard]] bool is_exposed(const std::string& name) const {
    return exposed_.count(name) != 0;
  }
  [[nodiscard]] std::size_t exposed_count() const { return exposed_.size(); }
  // Interface of an exposed service, or nullptr. Lets framework-origin
  // services (e.g. observability, which no native adapter lists) still
  // declare events the bridge can validate subscriptions against.
  [[nodiscard]] const InterfaceDesc* exposed_interface(
      const std::string& name) const {
    auto it = exposed_.find(name);
    return it == exposed_.end() ? nullptr : &it->second.iface;
  }
  // The endpoint URI an exposure is (or would be) reachable at.
  [[nodiscard]] Uri exposure_uri(const std::string& name);

  // --- Server Proxy direction --------------------------------------------
  // Calls a service exposed by a (remote) gateway at `endpoint`.
  void call_remote(const Uri& endpoint, const std::string& service_name,
                   const InterfaceDesc& iface, const std::string& method,
                   const ValueList& args, InvokeResultFn done);

  [[nodiscard]] std::uint64_t remote_calls() const {
    return remote_calls_.value();
  }
  [[nodiscard]] std::uint64_t local_dispatches() const {
    return local_dispatches_.value();
  }
  // Transport connections accepted by this gateway's SOAP listener.
  // With the keep-alive backbone client a caller gateway holds one
  // connection per destination, so this stays flat as call volume grows.
  [[nodiscard]] std::uint64_t backbone_connections_accepted() const {
    return http_.connections_accepted();
  }

  // Metric namespace of this gateway ("vsg.<island>", uniquified per
  // instance). Per-op metrics live at "<scope>.op.<service>.<method>_us"
  // (latency histogram) and ".calls" — created eagerly at expose() so
  // hcm_lint can check coverage before any traffic flows.
  [[nodiscard]] const std::string& obs_scope() const { return obs_scope_; }
  // Every (service, method) pair currently mounted on the wire.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> exposed_ops()
      const;

 private:
  struct Exposed {
    InterfaceDesc iface;
    ServiceHandler handler;
    std::unique_ptr<soap::SoapService> soap_service;  // SOAP mode only
  };

  net::Network& net_;
  net::NodeId node_;
  std::string island_name_;
  std::uint16_t port_;
  VsgProtocol protocol_;
  http::HttpServer http_;
  soap::SoapClient soap_client_;
  BinaryRpcServer binary_server_;
  BinaryRpcClient binary_client_;
  std::map<std::string, Exposed> exposed_;
  // call_remote scratch, consumed synchronously by the wire client
  // before the frame returns (completions fire on later scheduler
  // events, so a nested call never observes a live borrow). Entry
  // capacities persist call over call.
  soap::NamedValues params_scratch_;
  std::string ns_scratch_;
  std::string obs_scope_;
  obs::Counter& remote_calls_;
  obs::Counter& local_dispatches_;
  obs::Counter& remote_errors_;
  obs::Histogram& remote_latency_us_;
};

}  // namespace hcm::core
