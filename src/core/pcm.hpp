// Protocol Conversion Manager (paper §3.2): per-island component that
// keeps the two proxy populations in sync with reality:
//   refresh() publishes every local service through a generated Client
//   Proxy (VSG exposure + WSDL in the VSR), and imports every foreign
//   VSR entry as a generated Server Proxy exported into the local
//   middleware. Services that disappear from the VSR are unexported.
//
// Synchronization is incremental by default (SyncMode::kDelta): the PCM
// keeps a per-registry cursor and only parses / generates proxies for
// entries that actually changed, and steady-state lease renewal is one
// fingerprint-guarded renewOrigin call instead of S republications.
// SyncMode::kSnapshot preserves the original full-transfer behaviour
// (every refresh lists everything and republishes everything) — kept as
// the baseline arm for bench_ext_vsr_sync.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/adapter.hpp"
#include "core/proxygen.hpp"
#include "core/vsr.hpp"

namespace hcm::core {

class Pcm {
 public:
  enum class SyncMode { kSnapshot, kDelta };

  Pcm(net::Network& net, VirtualServiceGateway& vsg, net::Endpoint vsr,
      std::unique_ptr<MiddlewareAdapter> adapter);

  using DoneFn = std::function<void(const Status&)>;

  // Full synchronization pass (publish CPs, then import/retire SPs).
  void refresh(DoneFn done);

  void set_sync_mode(SyncMode mode) { sync_mode_ = mode; }
  [[nodiscard]] SyncMode sync_mode() const { return sync_mode_; }

  [[nodiscard]] MiddlewareAdapter& adapter() { return *adapter_; }
  [[nodiscard]] VirtualServiceGateway& vsg() { return vsg_; }
  [[nodiscard]] ProxyGenerator& proxygen() { return proxygen_; }
  // Sync cursor / digest-cache observability (tests, benches).
  [[nodiscard]] const VsrClient& vsr_client() const { return vsr_; }

  [[nodiscard]] std::size_t published_count() const {
    return published_.size();
  }
  [[nodiscard]] std::size_t imported_count() const { return imported_.size(); }
  [[nodiscard]] bool has_imported(const std::string& name) const {
    return imported_.count(name) != 0;
  }
  // Digest of an imported entry ("" when not imported) — lets tests
  // assert convergence by diffing (name, digest) maps across PCMs.
  [[nodiscard]] std::string imported_digest(const std::string& name) const {
    auto it = imported_.find(name);
    return it == imported_.end() ? "" : it->second;
  }

  // How many times a WSDL document was generated for a local service.
  // Stays at published_count() across steady-state refreshes: emitted
  // documents are cached per service, not regenerated every lease.
  [[nodiscard]] std::uint64_t wsdl_generations() const {
    return wsdl_generations_.value();
  }
  // Times the O(1) renewOrigin fast path was refused and the PCM fell
  // back to republishing its full set (registry restart, lapsed lease).
  [[nodiscard]] std::uint64_t renew_fallbacks() const {
    return renew_fallbacks_.value();
  }

  // Lease used for VSR publications; refresh() renews them.
  static constexpr sim::Duration kPublishTtl = sim::seconds(120);

 private:
  struct PublishedRecord {
    std::string wsdl;    // document as last emitted (cached)
    std::string digest;  // soap::wsdl_digest(wsdl)
  };

  void publish_locals(DoneFn done);
  void renew_origin_lease(DoneFn done);  // delta steady state: one call
  void republish_all(DoneFn done);       // fallback when renewal refused
  void import_remotes(DoneFn done);
  void import_snapshot(DoneFn done);
  void import_delta(DoneFn done);
  // Imports/updates one foreign entry; returns false on the non-fatal
  // conversion failures (bad WSDL, impossible export).
  bool apply_upsert(const std::string& name, const std::string& origin,
                    const std::string& digest, const std::string& wsdl);
  void retire_import(const std::string& name);

  net::Network& net_;
  VirtualServiceGateway& vsg_;
  VsrClient vsr_;
  std::unique_ptr<MiddlewareAdapter> adapter_;
  ProxyGenerator proxygen_;
  SyncMode sync_mode_ = SyncMode::kDelta;
  // Names this island put in the VSR, with their cached documents.
  std::map<std::string, PublishedRecord> published_;
  // Foreign names exported locally -> digest of the imported document.
  std::map<std::string, std::string> imported_;
  std::string obs_scope_;
  obs::Counter& wsdl_generations_;
  obs::Counter& renew_fallbacks_;
  obs::Counter& refreshes_;
  obs::Histogram& refresh_latency_us_;
};

}  // namespace hcm::core
