// Protocol Conversion Manager (paper §3.2): per-island component that
// keeps the two proxy populations in sync with reality:
//   refresh() publishes every local service through a generated Client
//   Proxy (VSG exposure + WSDL in the VSR), and imports every foreign
//   VSR entry as a generated Server Proxy exported into the local
//   middleware. Services that disappear from the VSR are unexported.
#pragma once

#include <memory>
#include <set>

#include "core/adapter.hpp"
#include "core/proxygen.hpp"
#include "core/vsr.hpp"

namespace hcm::core {

class Pcm {
 public:
  Pcm(net::Network& net, VirtualServiceGateway& vsg, net::Endpoint vsr,
      std::unique_ptr<MiddlewareAdapter> adapter);

  using DoneFn = std::function<void(const Status&)>;

  // Full synchronization pass (publish CPs, then import/retire SPs).
  void refresh(DoneFn done);

  [[nodiscard]] MiddlewareAdapter& adapter() { return *adapter_; }
  [[nodiscard]] VirtualServiceGateway& vsg() { return vsg_; }
  [[nodiscard]] ProxyGenerator& proxygen() { return proxygen_; }

  [[nodiscard]] std::size_t published_count() const {
    return published_.size();
  }
  [[nodiscard]] std::size_t imported_count() const { return imported_.size(); }
  [[nodiscard]] bool has_imported(const std::string& name) const {
    return imported_.count(name) != 0;
  }

  // Lease used for VSR publications; refresh() renews them.
  static constexpr sim::Duration kPublishTtl = sim::seconds(120);

 private:
  void publish_locals(DoneFn done);
  void import_remotes(DoneFn done);

  net::Network& net_;
  VirtualServiceGateway& vsg_;
  VsrClient vsr_;
  std::unique_ptr<MiddlewareAdapter> adapter_;
  ProxyGenerator proxygen_;
  std::set<std::string> published_;  // names this island put in the VSR
  std::set<std::string> imported_;   // foreign names exported locally
};

}  // namespace hcm::core
