#include "core/binary_channel.hpp"

#include "common/bytes.hpp"
#include "obs/slab.hpp"
#include "obs/trace.hpp"

namespace hcm::core {

namespace {

Bytes frame(const Bytes& payload) {
  BufWriter w;
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_raw(payload);
  return w.take();
}

// Incremental length-prefix deframer (shared shape with jini's, but the
// binary VSG channel is its own protocol). Accumulates in pooled
// blocks: deliveries splice in, drained frames release their blocks.
class Deframer {
 public:
  Status feed(BlockStream&& data, std::vector<Bytes>& out) {
    buf_.splice(std::move(data));
    while (buf_.size() >= 4) {
      std::uint8_t hdr[4];
      buf_.copy_to(hdr, 0, 4);
      std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                          (static_cast<std::uint32_t>(hdr[1]) << 16) |
                          (static_cast<std::uint32_t>(hdr[2]) << 8) |
                          static_cast<std::uint32_t>(hdr[3]);
      if (len > 16 * 1024 * 1024) return protocol_error("frame too large");
      if (buf_.size() < 4u + len) return Status::ok();
      Bytes frame(len);
      buf_.copy_to(frame.data(), 4, len);
      buf_.consume(4u + len);
      out.push_back(std::move(frame));
    }
    return Status::ok();
  }

 private:
  BlockStream buf_;
};

}  // namespace

struct BinaryRpcServer::Conn {
  net::StreamPtr stream;
  Deframer deframer;
};

BinaryRpcServer::BinaryRpcServer(net::Network& net, net::NodeId node,
                                 std::uint16_t port)
    : net_(net),
      node_(node),
      port_(port),
      obs_scope_(obs::shard_registry().unique_scope("binary.server")),
      calls_served_(obs::shard_registry().counter(obs_scope_ + ".calls")),
      dispatch_latency_us_(
          obs::shard_registry().histogram(obs_scope_ + ".latency_us")) {}

BinaryRpcServer::~BinaryRpcServer() { stop(); }

Status BinaryRpcServer::start() {
  net::Node* n = net_.node(node_);
  if (n == nullptr) return not_found("binary rpc: no such node");
  auto status =
      n->listen(port_, [this](net::StreamPtr s) { on_accept(s); });
  if (!status.is_ok()) return status;
  listening_ = true;
  return Status::ok();
}

void BinaryRpcServer::stop() {
  if (!listening_) return;
  if (net::Node* n = net_.node(node_)) n->stop_listening(port_);
  listening_ = false;
  for (auto& weak : connections_) {
    if (auto conn = weak.lock(); conn && conn->stream) {
      conn->stream->set_on_data(nullptr);
      conn->stream->close();
      conn->stream = nullptr;
    }
  }
  connections_.clear();
}

void BinaryRpcServer::register_service(const std::string& name,
                                       ServiceHandler handler) {
  services_[name] = std::move(handler);
}

void BinaryRpcServer::unregister_service(const std::string& name) {
  services_.erase(name);
}

void BinaryRpcServer::on_accept(net::StreamPtr stream) {
  auto conn = std::make_shared<Conn>();
  conn->stream = stream;
  std::erase_if(connections_,
                [](const std::weak_ptr<Conn>& w) { return w.expired(); });
  connections_.push_back(conn);
  stream->set_on_close([conn] { conn->stream = nullptr; });
  stream->set_on_data([this, conn](BlockStream&& data) {
    std::vector<Bytes> frames;
    if (!conn->deframer.feed(std::move(data), frames).is_ok()) {
      if (conn->stream) conn->stream->close();
      return;
    }
    for (const auto& f : frames) {
      auto msg = decode_value(f);
      if (!msg.is_ok() || !msg.value().is_map()) continue;
      const Value& m = msg.value();
      auto id = m.at("id").to_int().value_or(0);
      const std::string svc =
          m.at("svc").is_string() ? m.at("svc").as_string() : "";
      const std::string method =
          m.at("method").is_string() ? m.at("method").as_string() : "";
      ValueList args =
          m.at("args").is_list() ? m.at("args").as_list() : ValueList{};
      calls_served_.inc();

      // "tr" frame field = [trace_id, span_id] of the caller's span;
      // rejoin that trace for the duration of the dispatch.
      obs::TraceContext wire_ctx;
      if (m.at("tr").is_list() && m.at("tr").as_list().size() == 2) {
        const auto& tr = m.at("tr").as_list();
        wire_ctx.trace_id =
            static_cast<std::uint64_t>(tr[0].to_int().value_or(0));
        wire_ctx.span_id =
            static_cast<std::uint64_t>(tr[1].to_int().value_or(0));
      }
      auto& tracer = obs::Tracer::global();
      auto& sched = net_.scheduler();
      obs::Tracer::Scope wire_scope(tracer, wire_ctx);
      const std::uint64_t span_id = tracer.begin_span(
          "binary.server:" + method, "binary.server", sched.now());
      obs::Tracer::Scope span_scope(tracer, tracer.context_of(span_id));

      auto reply = [conn, id, &tracer, &sched, span_id,
                    &latency = dispatch_latency_us_,
                    start = sched.now()](Result<Value> result) {
        latency.observe(sched.now() - start);
        tracer.end_span(span_id, sched.now(), result.is_ok());
        if (!conn->stream || !conn->stream->is_open()) return;
        ValueMap r{{"id", Value(id)}, {"ok", Value(result.is_ok())}};
        if (result.is_ok()) {
          r["value"] = std::move(result).take();
        } else {
          r["code"] =
              Value(static_cast<std::int64_t>(result.status().code()));
          r["msg"] = Value(result.status().message());
        }
        conn->stream->send(frame(encode_value(Value(std::move(r)))));
      };

      auto it = services_.find(svc);
      if (it == services_.end()) {
        reply(not_found("no binary service: " + svc));
        continue;
      }
      it->second(method, args, reply);
    }
  });
}

struct BinaryRpcClient::Conn {
  net::StreamPtr stream;
  Deframer deframer;
  bool connecting = false;
  std::vector<std::function<void(const Status&)>> waiters;
  std::uint64_t next_id = 1;
  std::map<std::uint64_t, InvokeResultFn> pending;

  void fail_all(const Status& s) {
    auto p = std::move(pending);
    pending.clear();
    for (auto& [id, done] : p) done(s);
    auto w = std::move(waiters);
    waiters.clear();
    for (auto& fn : w) fn(s);
  }
};

BinaryRpcClient::~BinaryRpcClient() {
  for (auto& [dest, conn] : conns_) {
    if (conn->stream) conn->stream->close();
    conn->fail_all(cancelled("client destroyed"));
  }
}

std::shared_ptr<BinaryRpcClient::Conn> BinaryRpcClient::conn_for(
    net::Endpoint dest) {
  auto it = conns_.find(dest);
  if (it != conns_.end()) return it->second;
  auto conn = std::make_shared<Conn>();
  conns_[dest] = conn;
  return conn;
}

void BinaryRpcClient::call(net::Endpoint dest, const std::string& service,
                           const std::string& method, const ValueList& args,
                           InvokeResultFn done) {
  calls_.inc();
  auto& tracer = obs::Tracer::global();
  auto& sched = net_.scheduler();
  const std::uint64_t span_id = tracer.begin_span(
      "binary.call:" + method, "binary.client", sched.now());
  done = [this, done = std::move(done), &tracer, &sched, span_id,
          start = sched.now()](Result<Value> r) {
    latency_.observe(sched.now() - start);
    if (!r.is_ok()) errors_.inc();
    tracer.end_span(span_id, sched.now(), r.is_ok());
    done(std::move(r));
  };
  const obs::TraceContext trace = tracer.context_of(span_id);
  auto conn = conn_for(dest);
  auto send = [conn, service, method, args, trace,
               done = std::move(done)](const Status& s) mutable {
    if (!s.is_ok()) {
      done(s);
      return;
    }
    auto id = conn->next_id++;
    conn->pending[id] = std::move(done);
    ValueMap req{
        {"id", Value(static_cast<std::int64_t>(id))},
        {"svc", Value(service)},
        {"method", Value(method)},
        {"args", Value(args)},
    };
    if (trace.valid()) {
      req["tr"] = Value(ValueList{
          Value(static_cast<std::int64_t>(trace.trace_id)),
          Value(static_cast<std::int64_t>(trace.span_id))});
    }
    conn->stream->send(frame(encode_value(Value(std::move(req)))));
  };
  if (conn->stream && conn->stream->is_open()) {
    send(Status::ok());
    return;
  }
  conn->waiters.push_back(std::move(send));
  if (conn->connecting) return;
  conn->connecting = true;
  net_.connect(node_, dest, [conn](Result<net::StreamPtr> r) {
    conn->connecting = false;
    if (!r.is_ok()) {
      auto waiters = std::move(conn->waiters);
      conn->waiters.clear();
      for (auto& w : waiters) w(r.status());
      return;
    }
    conn->stream = r.value();
    // Weak captures: conn owns the stream, and the client's conns_ map
    // owns conn — a strong capture here would be a Conn<->Stream cycle
    // that outlives the client.
    std::weak_ptr<Conn> wconn = conn;
    conn->stream->set_on_close([wconn] {
      if (auto c = wconn.lock()) {
        c->fail_all(unavailable("binary peer closed"));
      }
    });
    conn->stream->set_on_data([wconn](BlockStream&& data) {
      auto conn = wconn.lock();
      if (!conn) return;
      std::vector<Bytes> frames;
      if (!conn->deframer.feed(std::move(data), frames).is_ok()) {
        conn->stream->close();
        return;
      }
      for (const auto& f : frames) {
        auto msg = decode_value(f);
        if (!msg.is_ok() || !msg.value().is_map()) continue;
        const Value& m = msg.value();
        auto id = static_cast<std::uint64_t>(m.at("id").to_int().value_or(0));
        auto it = conn->pending.find(id);
        if (it == conn->pending.end()) continue;
        auto done = std::move(it->second);
        conn->pending.erase(it);
        if (m.at("ok").is_bool() && m.at("ok").as_bool()) {
          done(m.at("value"));
        } else {
          auto code = m.at("code").to_int().value_or(
              static_cast<std::int64_t>(StatusCode::kInternal));
          done(Status(static_cast<StatusCode>(code),
                      m.at("msg").is_string() ? m.at("msg").as_string() : ""));
        }
      }
    });
    auto waiters = std::move(conn->waiters);
    conn->waiters.clear();
    for (auto& w : waiters) w(Status::ok());
  });
}

}  // namespace hcm::core
