// X10 codes and powerline frame codec, following the CM11A programming
// protocol document the paper cites (ftp.x10.com/pub/manuals/cm11a).
// House and unit codes use X10's non-monotonic nibble encoding; frames
// on the powerline are [header, code] pairs where the header
// distinguishes address frames from function frames.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace hcm::x10 {

enum class HouseCode : std::uint8_t {
  kA, kB, kC, kD, kE, kF, kG, kH, kI, kJ, kK, kL, kM, kN, kO, kP
};

enum class FunctionCode : std::uint8_t {
  kAllUnitsOff = 0x0,
  kAllLightsOn = 0x1,
  kOn = 0x2,
  kOff = 0x3,
  kDim = 0x4,
  kBright = 0x5,
  kAllLightsOff = 0x6,
  kExtendedCode = 0x7,
  kHailRequest = 0x8,
  kHailAck = 0x9,
  kPresetDim1 = 0xA,
  kPresetDim2 = 0xB,
  kExtendedData = 0xC,
  kStatusOn = 0xD,
  kStatusOff = 0xE,
  kStatusRequest = 0xF,
};

const char* to_string(HouseCode h);
const char* to_string(FunctionCode f);

// X10's table-driven nibble encodings (house A -> 0110 etc).
[[nodiscard]] std::uint8_t encode_house(HouseCode h);
[[nodiscard]] Result<HouseCode> decode_house(std::uint8_t nibble);
// Unit codes 1..16 use the same table as houses A..P.
[[nodiscard]] std::uint8_t encode_unit(int unit);  // unit in 1..16
[[nodiscard]] Result<int> decode_unit(std::uint8_t nibble);

// CM11A serial header bytes.
constexpr std::uint8_t kHeaderAddress = 0x04;
// Function header also carries the dim amount in bits 3..7.
[[nodiscard]] std::uint8_t header_function(int dims);  // dims in 0..22
[[nodiscard]] bool is_function_header(std::uint8_t header);
[[nodiscard]] int dims_from_header(std::uint8_t header);

// Powerline frames (2 bytes each).
struct AddressFrame {
  HouseCode house = HouseCode::kA;
  int unit = 1;
};
struct FunctionFrame {
  HouseCode house = HouseCode::kA;
  FunctionCode function = FunctionCode::kOn;
  int dims = 0;
};

[[nodiscard]] Bytes encode(const AddressFrame& f);
[[nodiscard]] Bytes encode(const FunctionFrame& f);

// A decoded powerline frame: exactly one of the two kinds.
struct DecodedFrame {
  bool is_address = false;
  AddressFrame address;
  FunctionFrame function;
};
[[nodiscard]] Result<DecodedFrame> decode_frame(const Bytes& frame);

// Serial-link checksum used in the PC<->CM11A handshake.
[[nodiscard]] std::uint8_t serial_checksum(std::uint8_t header,
                                           std::uint8_t code);

// "A3" style address rendering for logs/UIs.
[[nodiscard]] std::string format_address(HouseCode h, int unit);

}  // namespace hcm::x10
