#include "x10/codec.hpp"

#include <array>

namespace hcm::x10 {

namespace {
// X10 house/unit nibble table: index = house A..P (or unit-1), value =
// the 4-bit code actually transmitted.
constexpr std::array<std::uint8_t, 16> kCodeTable = {
    0x6, 0xE, 0x2, 0xA, 0x1, 0x9, 0x5, 0xD,
    0x7, 0xF, 0x3, 0xB, 0x0, 0x8, 0x4, 0xC};
}  // namespace

const char* to_string(HouseCode h) {
  static constexpr const char* kNames[] = {"A", "B", "C", "D", "E", "F",
                                           "G", "H", "I", "J", "K", "L",
                                           "M", "N", "O", "P"};
  return kNames[static_cast<int>(h)];
}

const char* to_string(FunctionCode f) {
  switch (f) {
    case FunctionCode::kAllUnitsOff: return "ALL_UNITS_OFF";
    case FunctionCode::kAllLightsOn: return "ALL_LIGHTS_ON";
    case FunctionCode::kOn: return "ON";
    case FunctionCode::kOff: return "OFF";
    case FunctionCode::kDim: return "DIM";
    case FunctionCode::kBright: return "BRIGHT";
    case FunctionCode::kAllLightsOff: return "ALL_LIGHTS_OFF";
    case FunctionCode::kExtendedCode: return "EXTENDED_CODE";
    case FunctionCode::kHailRequest: return "HAIL_REQUEST";
    case FunctionCode::kHailAck: return "HAIL_ACK";
    case FunctionCode::kPresetDim1: return "PRESET_DIM_1";
    case FunctionCode::kPresetDim2: return "PRESET_DIM_2";
    case FunctionCode::kExtendedData: return "EXTENDED_DATA";
    case FunctionCode::kStatusOn: return "STATUS_ON";
    case FunctionCode::kStatusOff: return "STATUS_OFF";
    case FunctionCode::kStatusRequest: return "STATUS_REQUEST";
  }
  return "?";
}

std::uint8_t encode_house(HouseCode h) {
  return kCodeTable[static_cast<int>(h)];
}

Result<HouseCode> decode_house(std::uint8_t nibble) {
  for (int i = 0; i < 16; ++i) {
    if (kCodeTable[i] == (nibble & 0xF)) return static_cast<HouseCode>(i);
  }
  return protocol_error("bad house nibble");
}

std::uint8_t encode_unit(int unit) { return kCodeTable[(unit - 1) & 0xF]; }

Result<int> decode_unit(std::uint8_t nibble) {
  for (int i = 0; i < 16; ++i) {
    if (kCodeTable[i] == (nibble & 0xF)) return i + 1;
  }
  return protocol_error("bad unit nibble");
}

std::uint8_t header_function(int dims) {
  // Header layout per CM11A doc: bits 7..3 dims, bit 2 = 1 (always),
  // bit 1 = 1 (function), bit 0 = 0 (standard transmission).
  return static_cast<std::uint8_t>(((dims & 0x1F) << 3) | 0x06);
}

bool is_function_header(std::uint8_t header) { return (header & 0x02) != 0; }

int dims_from_header(std::uint8_t header) { return (header >> 3) & 0x1F; }

Bytes encode(const AddressFrame& f) {
  return Bytes{kHeaderAddress, static_cast<std::uint8_t>(
                                   (encode_house(f.house) << 4) |
                                   encode_unit(f.unit))};
}

Bytes encode(const FunctionFrame& f) {
  return Bytes{header_function(f.dims),
               static_cast<std::uint8_t>(
                   (encode_house(f.house) << 4) |
                   static_cast<std::uint8_t>(f.function))};
}

Result<DecodedFrame> decode_frame(const Bytes& frame) {
  if (frame.size() != 2) return protocol_error("X10 frame must be 2 bytes");
  DecodedFrame out;
  auto house = decode_house(static_cast<std::uint8_t>(frame[1] >> 4));
  if (!house.is_ok()) return house.status();
  if (is_function_header(frame[0])) {
    out.is_address = false;
    out.function.house = house.value();
    out.function.function = static_cast<FunctionCode>(frame[1] & 0xF);
    out.function.dims = dims_from_header(frame[0]);
  } else {
    if (frame[0] != kHeaderAddress) {
      return protocol_error("bad X10 header byte");
    }
    out.is_address = true;
    out.address.house = house.value();
    auto unit = decode_unit(static_cast<std::uint8_t>(frame[1] & 0xF));
    if (!unit.is_ok()) return unit.status();
    out.address.unit = unit.value();
  }
  return out;
}

std::uint8_t serial_checksum(std::uint8_t header, std::uint8_t code) {
  return static_cast<std::uint8_t>(header + code);
}

std::string format_address(HouseCode h, int unit) {
  return std::string(to_string(h)) + std::to_string(unit);
}

}  // namespace hcm::x10
