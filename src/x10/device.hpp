// X10 receiver modules: appliance modules (relay on/off) and lamp
// modules (on/off/dim/bright), plus the transmitting devices the
// paper's applications use: motion sensors and hand-held remotes.
#pragma once

#include <functional>

#include "net/network.hpp"
#include "net/powerline.hpp"
#include "x10/codec.hpp"

namespace hcm::x10 {

// Base receiver: decodes address/function frames and maintains the X10
// selection discipline (an address frame selects the unit; a matching
// function frame executes on selected units).
class ReceiverModule {
 public:
  ReceiverModule(net::Network& net, net::NodeId node,
                 net::PowerlineSegment& powerline, HouseCode house, int unit);
  virtual ~ReceiverModule();
  ReceiverModule(const ReceiverModule&) = delete;
  ReceiverModule& operator=(const ReceiverModule&) = delete;

  [[nodiscard]] HouseCode house() const { return house_; }
  [[nodiscard]] int unit() const { return unit_; }
  [[nodiscard]] std::string address() const {
    return format_address(house_, unit_);
  }

 protected:
  virtual void on_function(FunctionCode function, int dims) = 0;
  [[nodiscard]] net::Network& network() { return net_; }

 private:
  void on_powerline(const Bytes& frame);

  net::Network& net_;
  net::NodeId node_;
  net::PowerlineSegment& powerline_;
  HouseCode house_;
  int unit_;
  bool selected_ = false;
};

// Relay module: on/off only (e.g. a fan or coffee maker).
class ApplianceModule : public ReceiverModule {
 public:
  using ReceiverModule::ReceiverModule;

  [[nodiscard]] bool is_on() const { return on_; }
  using ChangeFn = std::function<void(bool on)>;
  void set_on_change(ChangeFn fn) { on_change_ = std::move(fn); }

 protected:
  void on_function(FunctionCode function, int dims) override;

 private:
  bool on_ = false;
  ChangeFn on_change_;
};

// Lamp module: on/off plus 22-step dimming.
class LampModule : public ReceiverModule {
 public:
  using ReceiverModule::ReceiverModule;

  [[nodiscard]] bool is_on() const { return level_ > 0; }
  // Brightness 0..100.
  [[nodiscard]] int level() const { return level_; }
  using ChangeFn = std::function<void(int level)>;
  void set_on_change(ChangeFn fn) { on_change_ = std::move(fn); }

  static constexpr int kDimStepPercent = 100 / 22 + 1;  // ~5% per dim step

 protected:
  void on_function(FunctionCode function, int dims) override;

 private:
  void set_level(int level);

  int level_ = 0;
  ChangeFn on_change_;
};

// Motion sensor: a transmitter. trigger() puts <addr> ON on the line
// and schedules an automatic OFF after `auto_off`.
class MotionSensor {
 public:
  MotionSensor(net::Network& net, net::NodeId node,
               net::PowerlineSegment& powerline, HouseCode house, int unit,
               sim::Duration auto_off = sim::seconds(30));

  void trigger();
  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }

 private:
  void transmit(FunctionCode function);

  net::Network& net_;
  net::NodeId node_;
  net::PowerlineSegment& powerline_;
  HouseCode house_;
  int unit_;
  sim::Duration auto_off_;
  sim::EventId off_event_ = 0;
  std::uint64_t triggers_ = 0;
};

// Hand-held remote (via an RF transceiver module): presses become
// powerline commands. This is the input device of the paper's
// Universal Remote Controller application (Fig. 5).
class RemoteControl {
 public:
  RemoteControl(net::Network& net, net::NodeId node,
                net::PowerlineSegment& powerline, HouseCode house)
      : net_(net), node_(node), powerline_(powerline), house_(house) {}

  using DoneFn = std::function<void(const Status&)>;
  void press(int unit, FunctionCode function, DoneFn done = nullptr);

  [[nodiscard]] HouseCode house() const { return house_; }

 private:
  net::Network& net_;
  net::NodeId node_;
  net::PowerlineSegment& powerline_;
  HouseCode house_;
};

}  // namespace hcm::x10
