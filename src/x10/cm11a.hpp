// CM11A controller: the PC's gateway onto the X10 powerline. Models the
// documented serial handshake (send header+code, verify the echoed
// checksum, ack with 0x00, wait for 0x55 ready) before each powerline
// transmission, including retry on checksum corruption.
#pragma once

#include <deque>
#include <functional>

#include "net/network.hpp"
#include "net/powerline.hpp"
#include "x10/codec.hpp"

namespace hcm::x10 {

// A command observed on the powerline (surfaced like the CM11A's
// receive buffer polling).
struct ObservedCommand {
  HouseCode house = HouseCode::kA;
  int unit = 0;  // 0 when only a function was seen
  FunctionCode function = FunctionCode::kOn;
  int dims = 0;
};
using ObserverFn = std::function<void(const ObservedCommand&)>;

class Cm11aController {
 public:
  Cm11aController(net::Network& net, net::NodeId node,
                  net::PowerlineSegment& powerline);
  ~Cm11aController();
  Cm11aController(const Cm11aController&) = delete;
  Cm11aController& operator=(const Cm11aController&) = delete;

  using DoneFn = std::function<void(const Status&)>;

  // Sends address + function for a single unit (the common case).
  void send_command(HouseCode house, int unit, FunctionCode function,
                    int dims, DoneFn done);
  // Function-only transmission (e.g. ALL_LIGHTS_ON).
  void send_function(HouseCode house, FunctionCode function, int dims,
                     DoneFn done);

  // Commands other transmitters put on the line (sensors, remotes).
  void set_observer(ObserverFn observer) { observer_ = std::move(observer); }

  // Serial-link corruption probability (checksum mismatch -> retry).
  void set_serial_corruption(double p) { serial_corruption_ = p; }

  [[nodiscard]] std::uint64_t commands_sent() const { return commands_sent_; }
  [[nodiscard]] std::uint64_t serial_retries() const { return serial_retries_; }

  static constexpr int kMaxSerialRetries = 3;
  static constexpr int kMaxPowerlineRetries = 3;
  // 4800 baud serial: ~2 ms per byte exchange leg.
  static constexpr sim::Duration kSerialLeg = sim::milliseconds(2);

 private:
  struct Job {
    std::vector<Bytes> frames;  // powerline frames to send in order
    DoneFn done;
  };

  void enqueue(Job job);
  void work();
  void serial_exchange(const Bytes& frame, int attempt,
                       std::function<void(const Status&)> then);
  void transmit_frame(const Bytes& frame, int attempt,
                      std::function<void(const Status&)> then);
  void on_powerline(net::NodeId from, const Bytes& frame);

  net::Network& net_;
  net::NodeId node_;
  net::PowerlineSegment& powerline_;
  ObserverFn observer_;
  std::deque<Job> queue_;
  bool busy_ = false;
  double serial_corruption_ = 0.0;
  std::uint64_t commands_sent_ = 0;
  std::uint64_t serial_retries_ = 0;
  // Receive-side address decoding state (last address seen per house).
  HouseCode last_house_ = HouseCode::kA;
  int last_unit_ = 0;
};

}  // namespace hcm::x10
