#include "x10/cm11a.hpp"

#include "common/logging.hpp"

namespace hcm::x10 {

Cm11aController::Cm11aController(net::Network& net, net::NodeId node,
                                 net::PowerlineSegment& powerline)
    : net_(net), node_(node), powerline_(powerline) {
  powerline_.subscribe(node_, [this](net::NodeId from, const Bytes& frame) {
    on_powerline(from, frame);
  });
}

Cm11aController::~Cm11aController() { powerline_.unsubscribe(node_); }

void Cm11aController::send_command(HouseCode house, int unit,
                                   FunctionCode function, int dims,
                                   DoneFn done) {
  if (unit < 1 || unit > 16) {
    net_.scheduler().after(0, [done = std::move(done)] {
      done(invalid_argument("X10 unit must be 1..16"));
    });
    return;
  }
  Job job;
  job.frames.push_back(encode(AddressFrame{house, unit}));
  job.frames.push_back(encode(FunctionFrame{house, function, dims}));
  job.done = std::move(done);
  enqueue(std::move(job));
}

void Cm11aController::send_function(HouseCode house, FunctionCode function,
                                    int dims, DoneFn done) {
  Job job;
  job.frames.push_back(encode(FunctionFrame{house, function, dims}));
  job.done = std::move(done);
  enqueue(std::move(job));
}

void Cm11aController::enqueue(Job job) {
  queue_.push_back(std::move(job));
  if (!busy_) {
    busy_ = true;
    net_.scheduler().after(0, [this] { work(); });
  }
}

void Cm11aController::work() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  Job job = std::move(queue_.front());
  queue_.pop_front();

  // Send the job's frames sequentially: serial handshake, then
  // powerline transmission, for each frame.
  auto frames = std::make_shared<std::deque<Bytes>>(job.frames.begin(),
                                                    job.frames.end());
  auto done = std::make_shared<DoneFn>(std::move(job.done));
  auto step = std::make_shared<std::function<void()>>();
  // The stored function must not capture `step` strongly — it would be
  // a self-cycle that never frees. In-flight serial/powerline
  // continuations hold the strong reference instead, so the chain dies
  // with its last pending event.
  std::weak_ptr<std::function<void()>> weak_step = step;
  *step = [this, frames, done, weak_step] {
    auto step = weak_step.lock();
    if (!step) return;
    if (frames->empty()) {
      ++commands_sent_;
      if (*done) (*done)(Status::ok());
      work();
      return;
    }
    Bytes frame = frames->front();
    frames->pop_front();
    serial_exchange(frame, 0, [this, frame, frames, done, step](
                                  const Status& serial) {
      if (!serial.is_ok()) {
        if (*done) (*done)(serial);
        work();
        return;
      }
      transmit_frame(frame, 0, [this, frames, done, step](
                                   const Status& sent) {
        if (!sent.is_ok()) {
          if (*done) (*done)(sent);
          work();
          return;
        }
        (*step)();
      });
    });
  };
  (*step)();
}

void Cm11aController::serial_exchange(
    const Bytes& frame, int attempt,
    std::function<void(const Status&)> then) {
  // PC sends [header, code]; CM11A echoes checksum; PC verifies and
  // sends 0x00; CM11A answers 0x55 (ready). Four serial legs.
  const std::uint8_t expected = serial_checksum(frame[0], frame[1]);
  std::uint8_t echoed = expected;
  if (serial_corruption_ > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(net_.scheduler().rng()) < serial_corruption_) {
      echoed = static_cast<std::uint8_t>(expected ^ 0x40);
    }
  }
  net_.scheduler().after(
      2 * kSerialLeg, [this, frame, attempt, then = std::move(then), expected,
                       echoed]() mutable {
        if (echoed != expected) {
          ++serial_retries_;
          if (attempt + 1 >= kMaxSerialRetries) {
            then(protocol_error("CM11A serial checksum failed repeatedly"));
            return;
          }
          log_debug("x10", "serial checksum mismatch, retry ", attempt + 1);
          serial_exchange(frame, attempt + 1, std::move(then));
          return;
        }
        // ack + ready legs
        net_.scheduler().after(2 * kSerialLeg,
                               [then = std::move(then)]() mutable {
                                 then(Status::ok());
                               });
      });
}

void Cm11aController::transmit_frame(
    const Bytes& frame, int attempt,
    std::function<void(const Status&)> then) {
  powerline_.transmit(node_, frame, [this, frame, attempt,
                                     then = std::move(then)](
                                        const Status& s) mutable {
    if (s.is_ok()) {
      then(Status::ok());
      return;
    }
    if (attempt + 1 >= kMaxPowerlineRetries) {
      then(s);
      return;
    }
    // Collision or line busy: back off a random number of half-cycles.
    std::uniform_int_distribution<int> dist(1, 16);
    auto backoff = dist(net_.scheduler().rng()) *
                   net::PowerlineSegment::kHalfCycleUs;
    net_.scheduler().after(backoff, [this, frame, attempt,
                                     then = std::move(then)]() mutable {
      transmit_frame(frame, attempt + 1, std::move(then));
    });
  });
}

void Cm11aController::on_powerline(net::NodeId from, const Bytes& frame) {
  if (from == node_) return;  // ignore our own transmissions
  auto decoded = decode_frame(frame);
  if (!decoded.is_ok()) return;
  if (decoded.value().is_address) {
    last_house_ = decoded.value().address.house;
    last_unit_ = decoded.value().address.unit;
    return;
  }
  if (observer_) {
    ObservedCommand cmd;
    cmd.house = decoded.value().function.house;
    cmd.unit = decoded.value().function.house == last_house_ ? last_unit_ : 0;
    cmd.function = decoded.value().function.function;
    cmd.dims = decoded.value().function.dims;
    observer_(cmd);
  }
}

}  // namespace hcm::x10
