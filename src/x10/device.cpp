#include "x10/device.hpp"

namespace hcm::x10 {

ReceiverModule::ReceiverModule(net::Network& net, net::NodeId node,
                               net::PowerlineSegment& powerline,
                               HouseCode house, int unit)
    : net_(net), node_(node), powerline_(powerline), house_(house),
      unit_(unit) {
  powerline_.subscribe(node_, [this](net::NodeId, const Bytes& frame) {
    on_powerline(frame);
  });
}

ReceiverModule::~ReceiverModule() { powerline_.unsubscribe(node_); }

void ReceiverModule::on_powerline(const Bytes& frame) {
  auto decoded = decode_frame(frame);
  if (!decoded.is_ok()) return;
  if (decoded.value().is_address) {
    const auto& addr = decoded.value().address;
    if (addr.house != house_) return;
    // A new address sequence for a different unit deselects us; our own
    // address selects us.
    selected_ = addr.unit == unit_;
    return;
  }
  const auto& fn = decoded.value().function;
  if (fn.house != house_) return;
  switch (fn.function) {
    case FunctionCode::kAllUnitsOff:
    case FunctionCode::kAllLightsOn:
    case FunctionCode::kAllLightsOff:
      on_function(fn.function, fn.dims);  // house-wide, selection ignored
      return;
    default:
      break;
  }
  if (selected_) on_function(fn.function, fn.dims);
}

void ApplianceModule::on_function(FunctionCode function, int) {
  bool next = on_;
  switch (function) {
    case FunctionCode::kOn: next = true; break;
    case FunctionCode::kOff: next = false; break;
    case FunctionCode::kAllUnitsOff: next = false; break;
    default: return;  // appliance modules ignore dim etc.
  }
  if (next != on_) {
    on_ = next;
    if (on_change_) on_change_(on_);
  }
}

void LampModule::on_function(FunctionCode function, int dims) {
  switch (function) {
    case FunctionCode::kOn:
    case FunctionCode::kAllLightsOn:
      set_level(100);
      break;
    case FunctionCode::kOff:
    case FunctionCode::kAllUnitsOff:
    case FunctionCode::kAllLightsOff:
      set_level(0);
      break;
    case FunctionCode::kDim:
      set_level(level_ - kDimStepPercent * std::max(dims, 1));
      break;
    case FunctionCode::kBright:
      set_level(level_ + kDimStepPercent * std::max(dims, 1));
      break;
    default:
      break;
  }
}

void LampModule::set_level(int level) {
  level = std::clamp(level, 0, 100);
  if (level != level_) {
    level_ = level;
    if (on_change_) on_change_(level_);
  }
}

MotionSensor::MotionSensor(net::Network& net, net::NodeId node,
                           net::PowerlineSegment& powerline, HouseCode house,
                           int unit, sim::Duration auto_off)
    : net_(net), node_(node), powerline_(powerline), house_(house),
      unit_(unit), auto_off_(auto_off) {}

void MotionSensor::trigger() {
  ++triggers_;
  transmit(FunctionCode::kOn);
  if (off_event_ != 0) net_.scheduler().cancel(off_event_);
  off_event_ = net_.scheduler().after(auto_off_, [this] {
    off_event_ = 0;
    transmit(FunctionCode::kOff);
  });
}

void MotionSensor::transmit(FunctionCode function) {
  // Sensors are simple transmitters: address frame then function frame,
  // no retry (lost frames are simply lost — the X10 reality).
  powerline_.transmit(node_, encode(AddressFrame{house_, unit_}), nullptr);
  powerline_.transmit(node_, encode(FunctionFrame{house_, function, 0}),
                      nullptr);
}

void RemoteControl::press(int unit, FunctionCode function, DoneFn done) {
  powerline_.transmit(node_, encode(AddressFrame{house_, unit}), nullptr);
  powerline_.transmit(
      node_, encode(FunctionFrame{house_, function, 0}),
      [done = std::move(done)](const Status& s) {
        if (done) done(s);
      });
}

}  // namespace hcm::x10
