// Per-shard metric slabs: shard-local Registry views that let
// instrumented sites on different worker shards mutate counters and
// histograms without sharing cache lines, merged deterministically into
// a fleet view at the sharded kernel's window barriers.
//
// Routing contract (obs::shard_registry):
//   - no ShardSlabs installed            -> Registry::global()
//   - installed, calling thread unbound  -> Registry::global()
//   - installed, thread bound to shard s -> slabs.slab(s)
// Instrumented objects resolve their Counter&/Histogram& handles once
// at construction (City builds islands under run_as(shard, ...), so the
// handles land in the island's own slab); the hot path then mutates a
// slab-private atomic — no cross-shard cache-line contention, which is
// what the sharded arm of bench_ext_obs_overhead measures.
//
// Merge semantics (merge_into): the target is reset, then the global
// registry and every slab are folded in slab order — counters and
// gauges sum, histograms merge bucket-wise. At 1 shard every write went
// to either the global registry or slab 0, so the fold reproduces
// today's global-registry snapshot byte for byte (pinned by
// SlabTest.OneShardMergeMatchesGlobal). Merging is coordinator-side
// work at window barriers; it must not race shard workers.
//
// Scope names: each slab delegates unique_scope() to the process root
// so "net", "net#2", ... stay process-unique across slabs and never
// alias after a merge.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"

namespace hcm::obs {

class ShardSlabs {
 public:
  explicit ShardSlabs(std::uint32_t shards);
  ~ShardSlabs();  // uninstalls
  ShardSlabs(const ShardSlabs&) = delete;
  ShardSlabs& operator=(const ShardSlabs&) = delete;

  // The currently installed slab set, or nullptr. At most one ShardSlabs
  // may exist at a time (checked); installation happens in the
  // constructor so a scenario simply keeps one alive for the run.
  [[nodiscard]] static ShardSlabs* installed();

  [[nodiscard]] std::uint32_t shards() const {
    return static_cast<std::uint32_t>(slabs_.size());
  }
  [[nodiscard]] Registry& slab(std::uint32_t s) { return *slabs_[s]; }

  // Fold Registry::global() + every slab into `out` (reset first).
  // Caller must be quiesced (window barrier / end of run).
  void merge_into(Registry& out) const;

 private:
  std::vector<std::unique_ptr<Registry>> slabs_;
};

// The registry an instrumentation site should resolve metric handles
// from: the calling thread's shard slab when slabs are installed and
// the thread is bound (sim::ShardedKernel::current()), else the global
// registry. Legacy single-scheduler scenarios never install slabs and
// see exactly the old Registry::global() behavior.
[[nodiscard]] Registry& shard_registry();

}  // namespace hcm::obs
