#include "obs/slab.hpp"

#include "common/check.hpp"
#include "sim/sharded_kernel.hpp"

namespace hcm::obs {

namespace {
// Process-wide slab installation point. Atomic because shard workers
// read it on every handle resolution while the coordinator installs or
// uninstalls between runs; those phases never overlap (construction
// precedes the first window, destruction follows the last), so relaxed
// ordering suffices.
std::atomic<ShardSlabs*> g_slabs{nullptr};
}  // namespace

ShardSlabs::ShardSlabs(std::uint32_t shards) {
  HCM_CHECK_MSG(shards >= 1, "at least one slab");
  slabs_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto r = std::make_unique<Registry>();
    r->set_scope_delegate(&Registry::global());
    slabs_.push_back(std::move(r));
  }
  ShardSlabs* expected = nullptr;
  HCM_CHECK_MSG(
      g_slabs.compare_exchange_strong(expected, this,
                                      std::memory_order_relaxed),
      "only one ShardSlabs may be installed at a time");
}

ShardSlabs::~ShardSlabs() {
  g_slabs.store(nullptr, std::memory_order_relaxed);
}

ShardSlabs* ShardSlabs::installed() {
  return g_slabs.load(std::memory_order_relaxed);
}

void ShardSlabs::merge_into(Registry& out) const {
  out.reset_values();
  out.merge_from(Registry::global());
  for (const auto& slab : slabs_) out.merge_from(*slab);
}

Registry& shard_registry() {
  ShardSlabs* slabs = ShardSlabs::installed();
  if (slabs == nullptr) return Registry::global();
  const sim::ShardedKernel::Context* ctx = sim::ShardedKernel::current();
  if (ctx == nullptr) return Registry::global();
  return slabs->slab(ctx->shard % slabs->shards());
}

}  // namespace hcm::obs
