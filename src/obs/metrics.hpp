// Process-wide metrics registry: named counters, gauges and fixed-
// bucket latency histograms, the single source of truth for every
// counter the framework exposes. Instrumented objects obtain stable
// Counter&/Histogram& references at construction and keep their public
// accessors as thin reads, so existing call sites and tests are
// unchanged while the whole surface becomes introspectable through one
// snapshot (obs::ObservabilityService serves it across islands).
//
// Under the sharded kernel (docs/SHARDING.md) instrumented sites run on
// worker shards concurrently, so every metric mutation is a relaxed
// atomic and the registry maps are mutex-guarded (PCM imports create
// per-op metrics at runtime while another island may be serving an
// introspection snapshot). Relaxed ordering is deliberate: values are
// monotone telemetry, and cross-metric snapshots were never atomic even
// single-threaded. Metric values can be disabled at runtime
// (set_enabled) for overhead measurement, and the HCM_OBS_COMPILED_OUT
// compile definition turns every mutation into a no-op for a truly
// uninstrumented build (such a build still links — reads just return
// zero).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/value.hpp"

namespace hcm::obs {

// Runtime switch over all metric mutation (reads always work). On by
// default: migrated counters back public accessors existing tests rely
// on. bench_ext_obs_overhead flips it for the uninstrumented arm.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void inc(std::uint64_t d = 1) {
#ifndef HCM_OBS_COMPILED_OUT
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }
  // Fold a quiesced source value in. Not an instrumentation site: it
  // bypasses the enabled()/compiled-out gates because the source value
  // was already gated when it was recorded.
  void merge_add(std::uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) {
#ifndef HCM_OBS_COMPILED_OUT
    if (enabled()) v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t d) {
#ifndef HCM_OBS_COMPILED_OUT
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }
  // Quiesced fold (see Counter::merge_add). Gauges across shards are
  // summed — the framework's gauges are occupancy counts (queue depths,
  // live leases), for which per-shard sums are the fleet value.
  void merge_add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket histogram for virtual-time latencies in microseconds.
// Buckets follow a 1-2.5-5 decade ladder from 1 us to 10 s; percentile
// queries return the upper bound of the bucket holding the requested
// rank (clamped to the exact observed max), which is the usual
// fixed-bucket approximation. Mutation is lock-free (relaxed adds plus
// CAS min/max); a snapshot taken mid-observation may therefore be off
// by the in-flight sample across fields, which telemetry tolerates.
class Histogram {
 public:
  static constexpr std::array<std::int64_t, 22> kBounds = {
      1,      2,      5,       10,      25,      50,        100,     250,
      500,    1000,   2500,    5000,    10000,   25000,     50000,   100000,
      250000, 500000, 1000000, 2500000, 5000000, 10000000};

  void observe(std::int64_t v);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
  }
  // p in [0, 100]; p50/p95/p99 are the snapshot trio.
  [[nodiscard]] std::int64_t percentile(double p) const;
  // {count, sum, min, max, p50, p95, p99} as a ValueMap.
  [[nodiscard]] Value snapshot() const;
  void reset();
  // Quiesced fold of another histogram: bucket-wise add, count/sum add,
  // min/max combine. Because buckets are summed exactly, percentiles of
  // the merged histogram equal percentiles of the union of samples (to
  // bucket resolution) — the property the slab merge relies on.
  void merge_from(const Histogram& src);

 private:
  static constexpr std::int64_t kMinInit = INT64_MAX;
  static constexpr std::int64_t kMaxInit = INT64_MIN;
  std::array<std::atomic<std::uint64_t>, kBounds.size() + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{kMinInit};
  std::atomic<std::int64_t> max_{kMaxInit};
};

// Named-metric registry. Metrics are created on first use and live for
// the process (instances hold plain references); the same name always
// resolves to the same object. Counters, gauges and histograms occupy
// separate namespaces. Map access is mutex-guarded; the returned
// references stay valid and lock-free to use.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every built-in instrumentation site uses.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // nullptr when the metric was never created (lint/tests).
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  // Instance-unique scope prefix: first caller gets `base`, later ones
  // "base#2", "base#3", ... so repeated constructions (tests build many
  // homes per process) never alias each other's counters.
  std::string unique_scope(const std::string& base);

  [[nodiscard]] std::size_t size() const;

  // Snapshot of every metric whose name starts with `prefix` as a
  // ValueMap: counters/gauges map to ints, histograms to their
  // {count, sum, min, max, p50, p95, p99} maps.
  [[nodiscard]] Value to_value(const std::string& prefix = "") const;
  // Human-readable dump, one metric per line, sorted by name.
  [[nodiscard]] std::string to_text(const std::string& prefix = "") const;

  // Zeroes every value but keeps registrations (bench arms).
  void reset_values();

  // Folds every metric of `src` into this registry: counters and gauges
  // add, histograms merge bucket-wise; metrics missing here are created.
  // Both sides must be quiesced (the sharded kernel calls this at window
  // barriers, where no shard worker is mutating). Iteration order is
  // std::map order on both sides, so repeated merges of the same sources
  // produce the same registration order — part of the determinism
  // contract of the telemetry pipeline.
  void merge_from(const Registry& src);

  // Slab registries delegate unique_scope to the process root so scope
  // names stay process-unique: without this, the first "net" scope on
  // shard 0 and the first on shard 1 would alias after a merge.
  void set_scope_delegate(Registry* root) { scope_delegate_ = root; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::size_t> scopes_;
  Registry* scope_delegate_ = nullptr;
};

}  // namespace hcm::obs
