// Process-wide metrics registry: named counters, gauges and fixed-
// bucket latency histograms, the single source of truth for every
// counter the framework exposes. Instrumented objects obtain stable
// Counter&/Histogram& references at construction and keep their public
// accessors as thin reads, so existing call sites and tests are
// unchanged while the whole surface becomes introspectable through one
// snapshot (obs::ObservabilityService serves it across islands).
//
// The simulator is single-threaded by design, so no synchronization is
// needed. Metric values can be disabled at runtime (set_enabled) for
// overhead measurement, and the HCM_OBS_COMPILED_OUT compile definition
// turns every mutation into a no-op for a truly uninstrumented build
// (such a build still links — reads just return zero).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/value.hpp"

namespace hcm::obs {

// Runtime switch over all metric mutation (reads always work). On by
// default: migrated counters back public accessors existing tests rely
// on. bench_ext_obs_overhead flips it for the uninstrumented arm.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void inc(std::uint64_t d = 1) {
#ifndef HCM_OBS_COMPILED_OUT
    if (enabled()) v_ += d;
#endif
  }
  [[nodiscard]] std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) {
#ifndef HCM_OBS_COMPILED_OUT
    if (enabled()) v_ = v;
#endif
  }
  void add(std::int64_t d) {
#ifndef HCM_OBS_COMPILED_OUT
    if (enabled()) v_ += d;
#endif
  }
  [[nodiscard]] std::int64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::int64_t v_ = 0;
};

// Fixed-bucket histogram for virtual-time latencies in microseconds.
// Buckets follow a 1-2.5-5 decade ladder from 1 us to 10 s; percentile
// queries return the upper bound of the bucket holding the requested
// rank (clamped to the exact observed max), which is the usual
// fixed-bucket approximation.
class Histogram {
 public:
  static constexpr std::array<std::int64_t, 22> kBounds = {
      1,      2,      5,       10,      25,      50,        100,     250,
      500,    1000,   2500,    5000,    10000,   25000,     50000,   100000,
      250000, 500000, 1000000, 2500000, 5000000, 10000000};

  void observe(std::int64_t v);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  // p in [0, 100]; p50/p95/p99 are the snapshot trio.
  [[nodiscard]] std::int64_t percentile(double p) const;
  // {count, sum, min, max, p50, p95, p99} as a ValueMap.
  [[nodiscard]] Value snapshot() const;
  void reset();

 private:
  std::array<std::uint64_t, kBounds.size() + 1> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

// Named-metric registry. Metrics are created on first use and live for
// the process (instances hold plain references); the same name always
// resolves to the same object. Counters, gauges and histograms occupy
// separate namespaces.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every built-in instrumentation site uses.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // nullptr when the metric was never created (lint/tests).
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  // Instance-unique scope prefix: first caller gets `base`, later ones
  // "base#2", "base#3", ... so repeated constructions (tests build many
  // homes per process) never alias each other's counters.
  std::string unique_scope(const std::string& base);

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Snapshot of every metric whose name starts with `prefix` as a
  // ValueMap: counters/gauges map to ints, histograms to their
  // {count, sum, min, max, p50, p95, p99} maps.
  [[nodiscard]] Value to_value(const std::string& prefix = "") const;
  // Human-readable dump, one metric per line, sorted by name.
  [[nodiscard]] std::string to_text(const std::string& prefix = "") const;

  // Zeroes every value but keeps registrations (bench arms).
  void reset_values();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::size_t> scopes_;
};

}  // namespace hcm::obs
