#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.hpp"

namespace hcm::obs {

namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer()
    : dropped_counter_(
          Registry::global().counter("obs.trace.spans_dropped")) {}

Tracer& Tracer::global() {
  // Process-wide trace sink; recorders attach per scenario, so
  // sharding wraps this rather than copying it.
  // hcm:allow(shard-static-local): process-wide trace sink
  static Tracer g;
  return g;
}

TraceContext& Tracer::tls_current() {
  // Per-thread dispatch context: each shard worker's Scope chain is
  // private to it, matching the synchronous-segment semantics.
  // hcm:allow(shard-static-local): thread_local — per-shard by definition
  static thread_local TraceContext ctx;
  return ctx;
}

void Tracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  if (on) {
    Log::set_context_provider([]() -> std::string {
      const TraceContext& cur = tls_current();
      if (!cur.valid()) return "";
      return "trace=" + hex(cur.trace_id) + " span=" + hex(cur.span_id);
    });
  } else {
    Log::set_context_provider(nullptr);
  }
}

std::uint64_t Tracer::begin_span(const std::string& name,
                                 const std::string& component,
                                 sim::SimTime now) {
  if (!enabled()) return 0;
  const TraceContext& cur = tls_current();
  Span s;
  std::lock_guard<std::mutex> lk(mu_);
  if (max_spans_ != 0 && spans_.size() >= max_spans_) {
    // At the cap: count the drop and report "not traced". No id is
    // consumed, so capped runs stay id-stable with uncapped prefixes.
    ++dropped_;
    dropped_counter_.inc();
    return 0;
  }
  s.span_id = next_id_++;
  if (cur.valid()) {
    s.trace_id = cur.trace_id;
    s.parent_span_id = cur.span_id;
  } else {
    s.trace_id = next_id_++;
  }
  s.name = name;
  s.component = component;
  s.start = now;
  s.end = now;
  spans_.push_back(std::move(s));
  return spans_.back().span_id;
}

void Tracer::end_span(std::uint64_t span_id, sim::SimTime now, bool ok) {
  if (span_id == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  // Spans close in roughly LIFO order, so scan from the back.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->span_id == span_id) {
      if (!it->open) return;
      it->open = false;
      it->end = now;
      it->ok = ok;
      return;
    }
  }
}

TraceContext Tracer::context_of(std::uint64_t span_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->span_id == span_id) {
      return TraceContext{it->trace_id, it->span_id, it->parent_span_id};
    }
  }
  return {};
}

void Tracer::set_max_spans(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  max_spans_ = n;
}

std::size_t Tracer::max_spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_spans_;
}

std::uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.clear();
  next_id_ = 1;
  dropped_ = 0;
  tls_current() = {};
}

std::string Tracer::export_chrome(std::uint64_t trace_id) const {
  // One Chrome "thread" row per component, in first-seen order.
  std::map<std::string, int> tids;
  for (const auto& s : spans_) {
    if (trace_id != 0 && s.trace_id != trace_id) continue;
    tids.emplace(s.component, static_cast<int>(tids.size()) + 1);
  }
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [component, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape(os, component);
    os << "\"}}";
  }
  for (const auto& s : spans_) {
    if (trace_id != 0 && s.trace_id != trace_id) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tids[s.component]
       << ",\"ts\":" << s.start << ",\"dur\":" << (s.end - s.start)
       << ",\"name\":\"";
    json_escape(os, s.name);
    os << "\",\"args\":{\"trace\":\"" << hex(s.trace_id) << "\",\"span\":\""
       << hex(s.span_id) << "\",\"parent\":\"" << hex(s.parent_span_id)
       << "\",\"ok\":" << (s.ok ? "true" : "false") << "}}";
  }
  os << "]}";
  return os.str();
}

bool Tracer::write_chrome(const std::string& path,
                          std::uint64_t trace_id) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << export_chrome(trace_id) << "\n";
  return static_cast<bool>(out);
}

}  // namespace hcm::obs
