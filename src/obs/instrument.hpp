// Glue for instrumenting the framework's async callback style: wrap an
// InvokeResultFn so that completion (whenever it fires, on whatever
// virtual-time tick) records the operation's latency, counts errors,
// and closes the hop's span.
#pragma once

#include <cstdint>
#include <utility>

#include "common/service.hpp"
#include "obs/metrics.hpp"
#include "obs/slab.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"

namespace hcm::obs {

// Returns a completion that: observes (now - start) into `latency`,
// increments `errors` on a failed result (if non-null), ends `span_id`
// on the global tracer (no-op when 0), then forwards to `done`.
inline InvokeResultFn observe_completion(sim::Scheduler& sched,
                                         Histogram& latency, Counter* errors,
                                         std::uint64_t span_id,
                                         InvokeResultFn done) {
  const sim::SimTime start = sched.now();
  return [&sched, &latency, errors, span_id, start,
          done = std::move(done)](Result<Value> r) {
    latency.observe(sched.now() - start);
    if (!r.is_ok() && errors != nullptr) errors->inc();
    Tracer::global().end_span(span_id, sched.now(), r.is_ok());
    done(std::move(r));
  };
}

// One native adapter invoke. Construction counts
// "adapter.<mw>.invokes" and opens an "<mw>.invoke:service.method"
// span that stays current for the constructor's enclosing scope (so
// synchronous downstream dispatch — server proxies, VSG calls — nests
// under it); wrap() returns a completion that observes
// "adapter.<mw>.invoke_us", counts ".errors", and closes the span.
class ScopedInvoke {
 public:
  ScopedInvoke(sim::Scheduler& sched, const std::string& mw,
               const std::string& service, const std::string& method)
      : sched_(sched),
        latency_(
            shard_registry().histogram("adapter." + mw + ".invoke_us")),
        errors_(shard_registry().counter("adapter." + mw + ".errors")),
        span_id_(Tracer::global().begin_span(
            mw + ".invoke:" + service + "." + method, "adapter." + mw,
            sched.now())),
        scope_(Tracer::global(), Tracer::global().context_of(span_id_)) {
    shard_registry().counter("adapter." + mw + ".invokes").inc();
  }

  [[nodiscard]] InvokeResultFn wrap(InvokeResultFn done) {
    return observe_completion(sched_, latency_, &errors_, span_id_,
                              std::move(done));
  }

 private:
  sim::Scheduler& sched_;
  Histogram& latency_;
  Counter& errors_;
  std::uint64_t span_id_;
  Tracer::Scope scope_;
};

}  // namespace hcm::obs
