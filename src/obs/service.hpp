// The introspection service: the meta-middleware observing itself
// through its own gateways. ObservabilityService is an ordinary
// framework service — an InterfaceDesc plus a ServiceHandler — so
// MetaMiddleware can expose it on any island's VSG and publish its WSDL
// to the VSR, letting a client on *any* middleware island call
// getMetrics/getTrace like any other remote service.
#pragma once

#include "common/interface_desc.hpp"
#include "common/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hcm::obs {

class ObservabilityService {
 public:
  static constexpr const char* kServiceName = "observability";

  ObservabilityService(Registry& registry, Tracer& tracer)
      : registry_(registry), tracer_(tracer) {}

  // getMetrics(prefix: string) -> map of name -> value/snapshot
  // getTrace(traceId: int)     -> Chrome trace_event JSON (0 = all)
  // getSpanCount()             -> number of recorded spans
  [[nodiscard]] static InterfaceDesc describe_interface();
  [[nodiscard]] ServiceHandler handler();

 private:
  Registry& registry_;
  Tracer& tracer_;
};

}  // namespace hcm::obs
