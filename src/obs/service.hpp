// The introspection service: the meta-middleware observing itself
// through its own gateways. ObservabilityService is an ordinary
// framework service — an InterfaceDesc plus a ServiceHandler — so
// MetaMiddleware can expose it on any island's VSG and publish its WSDL
// to the VSR, letting a client on *any* middleware island call
// getMetrics/getTrace like any other remote service.
#pragma once

#include "common/interface_desc.hpp"
#include "common/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hcm::obs {

class HealthMonitor;
class TimeSeriesRecorder;

class ObservabilityService {
 public:
  static constexpr const char* kServiceName = "observability";

  ObservabilityService(Registry& registry, Tracer& tracer)
      : registry_(registry), tracer_(tracer) {}

  // The telemetry backends behind getSeries/getHealth (may be null:
  // both ops then fail with kFailedPrecondition, and getMetrics keeps
  // serving point-in-time snapshots as before).
  void set_recorder(TimeSeriesRecorder* recorder) { recorder_ = recorder; }
  void set_health(HealthMonitor* health) { health_ = health; }

  // getMetrics(prefix: string)  -> map of name -> value/snapshot
  // getTrace(traceId: int)      -> Chrome trace_event JSON (0 = all)
  // getSpanCount()              -> number of recorded spans
  // getSeries(prefix, windowUs) -> recorded time series in the window
  // getHealth()                 -> health monitor state
  // event healthChanged(rule, from, to, series, value, when_us)
  [[nodiscard]] static InterfaceDesc describe_interface();
  [[nodiscard]] ServiceHandler handler();

 private:
  Registry& registry_;
  Tracer& tracer_;
  TimeSeriesRecorder* recorder_ = nullptr;
  HealthMonitor* health_ = nullptr;
};

}  // namespace hcm::obs
