#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace hcm::obs {

namespace {
// Atomic so shard workers can consult the kill switch without a data
// race; relaxed order is enough for a monotone on/off flag.
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Histogram::observe(std::int64_t v) {
#ifdef HCM_OBS_COMPILED_OUT
  (void)v;
#else
  if (!enabled()) return;
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::size_t i = 0;
  while (i < kBounds.size() && v > kBounds[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
#endif
}

std::int64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  const double rank = p / 100.0 * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t b = buckets_[i].load(std::memory_order_relaxed);
    seen += b;
    if (static_cast<double>(seen) >= rank && b > 0) {
      // Bucket upper bound, clamped to the observed extremes so small
      // samples don't report a bound no value ever reached.
      std::int64_t bound = i < kBounds.size() ? kBounds[i] : max();
      return std::clamp(bound, min(), max());
    }
  }
  return max();
}

Value Histogram::snapshot() const {
  return Value(ValueMap{
      {"count", Value(static_cast<std::int64_t>(count()))},
      {"sum", Value(sum())},
      {"min", Value(min())},
      {"max", Value(max())},
      {"p50", Value(percentile(50))},
      {"p95", Value(percentile(95))},
      {"p99", Value(percentile(99))},
  });
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kMinInit, std::memory_order_relaxed);
  max_.store(kMaxInit, std::memory_order_relaxed);
}

void Histogram::merge_from(const Histogram& src) {
  const std::uint64_t n = src.count();
  if (n == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t b = src.buckets_[i].load(std::memory_order_relaxed);
    if (b != 0) buckets_[i].fetch_add(b, std::memory_order_relaxed);
  }
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(src.sum(), std::memory_order_relaxed);
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  const std::int64_t smin = src.min();
  while (smin < cur &&
         !min_.compare_exchange_weak(cur, smin, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  const std::int64_t smax = src.max();
  while (smax > cur &&
         !max_.compare_exchange_weak(cur, smax, std::memory_order_relaxed)) {
  }
}

Registry& Registry::global() {
  // Process-wide metrics root; shard workers get private scopes via
  // unique_scope() rather than per-shard copies. Magic-static init is
  // thread-safe and the instance guards itself internally.
  // hcm:allow(shard-static-local): process-wide metrics root
  static Registry g;
  return g;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string Registry::unique_scope(const std::string& base) {
  if (scope_delegate_ != nullptr) return scope_delegate_->unique_scope(base);
  std::lock_guard<std::mutex> lk(mu_);
  auto n = ++scopes_[base];
  if (n == 1) return base;
  return base + "#" + std::to_string(n);
}

void Registry::merge_from(const Registry& src) {
  // Lock order: src first, self second. Merge targets are private
  // fold registries (never merged *from*), so the order can't invert.
  std::lock_guard<std::mutex> src_lk(src.mu_);
  // Zero-valued metrics are still *created* in the target so the merged
  // view's registration set (and thus to_value/to_text output) matches
  // the union of the sources byte for byte.
  for (const auto& [name, c] : src.counters_) {
    Counter& dst = counter(name);
    const std::uint64_t v = c->value();
    if (v != 0) dst.merge_add(v);
  }
  for (const auto& [name, g] : src.gauges_) {
    Gauge& dst = gauge(name);
    const std::int64_t v = g->value();
    if (v != 0) dst.merge_add(v);
  }
  for (const auto& [name, h] : src.histograms_) {
    Histogram& dst = histogram(name);
    if (h->count() != 0) dst.merge_from(*h);
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {
bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

Value Registry::to_value(const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  ValueMap out;
  for (const auto& [name, c] : counters_) {
    if (!has_prefix(name, prefix)) continue;
    out[name] = Value(static_cast<std::int64_t>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    if (!has_prefix(name, prefix)) continue;
    out[name] = Value(g->value());
  }
  for (const auto& [name, h] : histograms_) {
    if (!has_prefix(name, prefix)) continue;
    out[name] = h->snapshot();
  }
  return Value(std::move(out));
}

std::string Registry::to_text(const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    if (!has_prefix(name, prefix)) continue;
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (!has_prefix(name, prefix)) continue;
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (!has_prefix(name, prefix)) continue;
    os << name << " count=" << h->count() << " sum=" << h->sum()
       << " min=" << h->min() << " max=" << h->max()
       << " p50=" << h->percentile(50) << " p95=" << h->percentile(95)
       << " p99=" << h->percentile(99) << "\n";
  }
  return os.str();
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace hcm::obs
