// Virtual-clock time-series recorder: samples the merged metric view
// (per-shard slabs + global registry, or just the global registry when
// no slabs are installed) into fixed-size ring buffers with tiered
// downsampling, so soak runs keep a bounded history of every counter,
// gauge and histogram percentile instead of a single point-in-time
// snapshot.
//
// Sampling grid. Each retention tier t has a period P_t and capacity
// C_t; samples for tier t land at virtual times P_t, 2*P_t, 3*P_t, ...
// and the ring keeps the newest C_t of them. A tier's sample is the
// *instantaneous* merged value at its grid time (point downsampling,
// not averaging), so every tier of the same series agrees wherever
// their grids coincide.
//
// Attachment modes:
//   - attach(ShardedKernel&): samples from the kernel's window hook —
//     grid points in (last, floor] are emitted at each barrier with the
//     quiesced barrier state. At N shards a grid value can therefore
//     lag its nominal time by up to the lookahead (documented in
//     docs/OBSERVABILITY.md §5); window placement is deterministic at a
//     fixed shard count, so double runs produce bit-identical series
//     (the series_hash test pins this). Also records per-shard
//     `sim.shard.<s>.events` gauges from the kernel.
//   - attach(Scheduler&): self-schedules a sampling event exactly on
//     the finest grid — exact-time sampling for legacy single-scheduler
//     scenarios. Caveat: the periodic event keeps the queue non-empty,
//     so drive the scenario with run_until/run_for (not Scheduler::run,
//     which would never drain) and detach() before a final drain.
//   - neither: call sample_until(now) by hand.
//
// Determinism: everything recorded derives from virtual time and
// merged metric values; wall-clock telemetry (ShardedKernel::busy_ns)
// is deliberately excluded. series_hash() folds every series name,
// grid index and value, and double runs at a fixed shard count must
// produce equal hashes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slab.hpp"
#include "sim/scheduler.hpp"
#include "sim/sharded_kernel.hpp"

namespace hcm::obs {

class HealthMonitor;

struct TierSpec {
  sim::Duration period = sim::seconds(1);
  std::size_t capacity = 120;
};

struct TimeSeriesOptions {
  // Finest tier first; periods must be positive and strictly
  // increasing. Defaults: 1s x 120 (2 min), 10s x 180 (30 min),
  // 5min x 96 (8 h).
  std::vector<TierSpec> tiers{{sim::seconds(1), 120},
                              {sim::seconds(10), 180},
                              {sim::seconds(300), 96}};
  // Only metrics whose name starts with one of these prefixes are
  // recorded; empty = record everything. City-scale runs should bound
  // the set (a 1,000-island fleet has tens of thousands of metrics).
  std::vector<std::string> prefixes;
  // Hard cap on distinct series (0 = unbounded). Admission is by
  // snapshot (sorted-name) order and sticky; series refused past the
  // cap are counted in dropped_series().
  std::size_t max_series = 0;
};

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(TimeSeriesOptions options = {});
  ~TimeSeriesRecorder();
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  void attach(sim::ShardedKernel& kernel);
  void attach(sim::Scheduler& sched);
  void detach();

  // Health rules evaluated after every sample batch (may be null).
  void set_health(HealthMonitor* health) { health_ = health; }

  // Refresher invoked before each sample batch, for pull-based sources
  // whose state lives outside the registry (the wire block pool keeps
  // its occupancy in relaxed atomics; net::publish_wire_pool_gauges
  // copies it into gauges here so every grid point is fresh). Runs on
  // the sampling thread outside the recorder lock; empty clears.
  void set_pre_sample(std::function<void()> fn) {
    pre_sample_ = std::move(fn);
  }

  // Emit every grid point due at or before `now` using the current
  // merged metric state. Idempotent per grid point; safe to call more
  // often than the grid (extra calls are cheap no-ops).
  void sample_until(sim::SimTime now);

  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] std::uint64_t samples_taken() const;
  [[nodiscard]] std::uint64_t dropped_series() const;
  [[nodiscard]] sim::SimTime last_sample_time() const;

  // Newest recorded value of a series (finest tier), or nullopt.
  [[nodiscard]] std::optional<std::int64_t> latest(
      const std::string& name) const;
  // Value at the finest grid point <= `at` still retained (falling back
  // to coarser tiers as fine rings age out), or nullopt.
  [[nodiscard]] std::optional<std::int64_t> value_at(const std::string& name,
                                                     sim::SimTime at) const;
  // Calls fn for every recorded series name, in sorted order.
  void each_series(const std::function<void(const std::string&)>& fn) const;

  // FNV-1a fold of every series name, tier, grid position and value —
  // the double-run repeatability fingerprint.
  [[nodiscard]] std::uint64_t series_hash() const;

  // getSeries payload: series matching `prefix`, from the finest tier
  // still covering `window` back from now, values oldest-first:
  //   {now_us, period_us, series: {name: {t0_us, values: [...]}}}
  [[nodiscard]] Value to_value(const std::string& prefix,
                               sim::Duration window) const;

  // Full dump of every tier of every series (the hcm_top input), plus
  // the hash and, when health is wired, its current state.
  [[nodiscard]] Value dump() const;
  // json_write(dump()) to a file; false on I/O failure.
  [[nodiscard]] bool write_json(const std::string& path) const;

 private:
  // Circular per-tier buffer over a contiguous run of grid indices
  // [end_idx - v.size(), end_idx). `next` is the overwrite cursor once
  // v has grown to the tier capacity.
  struct Ring {
    std::vector<std::int64_t> v;
    std::size_t next = 0;
    std::uint64_t end_idx = 0;
    [[nodiscard]] std::uint64_t first_idx() const { return end_idx - v.size(); }
    [[nodiscard]] std::optional<std::int64_t> at(std::uint64_t idx,
                                                 std::size_t cap) const;
    void push(std::uint64_t idx, std::int64_t x, std::size_t cap);
  };
  struct Series {
    std::vector<Ring> rings;  // one per tier
  };

  void snapshot_into(std::map<std::string, std::int64_t>& out);
  [[nodiscard]] std::uint64_t hash_locked() const;
  void arm_timer();

  TimeSeriesOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Series> series_;
  std::set<std::string> refused_;        // names past the max_series cap
  std::vector<std::uint64_t> next_idx_;  // per-tier next grid index
  sim::SimTime last_time_ = 0;
  std::uint64_t samples_ = 0;

  sim::ShardedKernel* kernel_ = nullptr;
  sim::Scheduler* sched_ = nullptr;
  sim::EventId timer_ = 0;
  Registry merged_;  // scratch fold target, reused across samples
  HealthMonitor* health_ = nullptr;
  std::function<void()> pre_sample_;
};

}  // namespace hcm::obs
