// Declarative health/SLO monitor over recorded time series. Rules are
// threshold, rate or absence checks evaluated after every sample batch
// of the TimeSeriesRecorder; state transitions (ok <-> breach) are
// reported through a callback — MetaMiddleware forwards them into the
// cross-middleware event bridge as `healthChanged` events on the
// observability service — and the aggregate state is served by the
// `getHealth` wire op.
//
// Rule syntax (parse_rule; also accepted by bench/CI flags and quoted
// verbatim in docs/OBSERVABILITY.md §5):
//
//   <name>: value(<glob>) <op> <number>
//   <name>: rate(<glob>[, window=<dur>]) <op> <number>   # per second
//   <name>: absent(<glob>[, window=<dur>])
//
// where <glob> matches series names with '*' wildcards (any run of
// characters), <op> is one of > >= < <=, and <dur> takes a us/ms/s
// suffix (default window 10s). Examples:
//
//   drops:   rate(events.*.dropped, window=10s) > 0.5
//   p99:     value(vsg.*.op.*_us.p99) > 50000
//   stale:   absent(vsr.sync.*.rounds, window=120s)
//
// Semantics per kind, each evaluation at virtual time `now`:
//   value  — breach if ANY matching series' newest sample compares
//            true against the number; unknown while nothing matches.
//   rate   — per-second delta (newest - value at now-window) / window;
//            breach if ANY matching series' rate compares true;
//            unknown until a window of history exists.
//   absent — breach if NO series matches, or if ANY matching series
//            made no progress (delta == 0) over the window; a grace
//            period of one window applies from t=0 (liveness checks
//            should not fire before the system had a chance to act).
//
// Evaluation order is rule insertion order and series iteration is
// sorted, so health state — and the obs.health.* metrics it feeds back
// into the registry — is as deterministic as the series it watches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace hcm::obs {

class TimeSeriesRecorder;

// '*'-wildcard match (any run of characters, including empty; no
// escapes — metric names never contain '*').
[[nodiscard]] bool glob_match(const std::string& pattern,
                              const std::string& text);

enum class HealthState { kUnknown, kOk, kBreach };
[[nodiscard]] const char* to_string(HealthState s);

struct HealthRule {
  enum class Kind { kValue, kRate, kAbsent };
  enum class Op { kGt, kGe, kLt, kLe };
  std::string name;
  std::string metric;  // series-name glob
  Kind kind = Kind::kValue;
  Op op = Op::kGt;
  double threshold = 0;
  sim::Duration window = sim::seconds(10);
};

struct HealthTransition {
  std::string rule;
  HealthState from = HealthState::kUnknown;
  HealthState to = HealthState::kUnknown;
  std::string series;  // offending series ("" for absent-no-match)
  double value = 0;    // offending value/rate at transition time
  sim::SimTime when = 0;
  // ValueMap payload as delivered on the healthChanged event.
  [[nodiscard]] Value to_value() const;
};

class HealthMonitor {
 public:
  HealthMonitor();

  void add_rule(HealthRule rule);
  // Parses the declarative syntax above.
  static Result<HealthRule> parse_rule(const std::string& spec);
  // add_rule(parse_rule(spec)); returns the parse error if any.
  Status add_rule_spec(const std::string& spec);

  void set_transition_fn(std::function<void(const HealthTransition&)> fn) {
    transition_fn_ = std::move(fn);
  }

  void evaluate(sim::SimTime now, const TimeSeriesRecorder& rec);

  [[nodiscard]] HealthState overall() const;
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_n_; }
  [[nodiscard]] HealthState rule_state(const std::string& name) const;

  // getHealth payload: {state, transitions, rules: {name: {state, kind,
  // metric, series, value, since_us}}, recent: [last transitions]}.
  [[nodiscard]] Value to_value() const;

 private:
  struct RuleState {
    HealthRule rule;
    HealthState state = HealthState::kUnknown;
    std::string series;        // current offender
    double value = 0;          // current offending value/rate
    sim::SimTime since = 0;    // when the current state was entered
  };

  void transition(RuleState& rs, HealthState to, const std::string& series,
                  double value, sim::SimTime now);

  std::vector<RuleState> rules_;
  std::function<void(const HealthTransition&)> transition_fn_;
  std::vector<HealthTransition> recent_;  // bounded transition log
  std::uint64_t transitions_n_ = 0;
  // Fed back into the global registry so health is itself observable
  // (and recordable — flapping shows up as a series).
  Counter& transitions_counter_;
  Gauge& breached_gauge_;
};

}  // namespace hcm::obs
