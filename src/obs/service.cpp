#include "obs/service.hpp"

#include "obs/health.hpp"
#include "obs/timeseries.hpp"

namespace hcm::obs {

InterfaceDesc ObservabilityService::describe_interface() {
  InterfaceDesc iface;
  iface.name = "Observability";
  iface.methods = {
      MethodDesc{"getMetrics",
                 {ParamDesc{"prefix", ValueType::kString}},
                 ValueType::kMap,
                 false},
      MethodDesc{"getTrace",
                 {ParamDesc{"traceId", ValueType::kInt}},
                 ValueType::kString,
                 false},
      MethodDesc{"getSpanCount", {}, ValueType::kInt, false},
      MethodDesc{"getSeries",
                 {ParamDesc{"prefix", ValueType::kString},
                  ParamDesc{"windowUs", ValueType::kInt}},
                 ValueType::kMap,
                 false},
      MethodDesc{"getHealth", {}, ValueType::kMap, false},
  };
  // Health-state transitions flow through the event bridge: subscribe
  // to observability/healthChanged to get pushed rule flips instead of
  // polling getHealth.
  iface.events = {
      MethodDesc{"healthChanged",
                 {ParamDesc{"rule", ValueType::kString},
                  ParamDesc{"from", ValueType::kString},
                  ParamDesc{"to", ValueType::kString},
                  ParamDesc{"series", ValueType::kString},
                  ParamDesc{"value", ValueType::kDouble},
                  ParamDesc{"when_us", ValueType::kInt}},
                 ValueType::kNull,
                 true},
  };
  return iface;
}

ServiceHandler ObservabilityService::handler() {
  return [this](const std::string& method, const ValueList& args,
                InvokeResultFn done) {
    if (method == "getMetrics") {
      const std::string prefix =
          !args.empty() && args[0].is_string() ? args[0].as_string() : "";
      done(registry_.to_value(prefix));
      return;
    }
    if (method == "getTrace") {
      const std::uint64_t trace_id = static_cast<std::uint64_t>(
          args.empty() ? 0 : args[0].to_int().value_or(0));
      done(Value(tracer_.export_chrome(trace_id)));
      return;
    }
    if (method == "getSpanCount") {
      done(Value(static_cast<std::int64_t>(tracer_.span_count())));
      return;
    }
    if (method == "getSeries") {
      if (recorder_ == nullptr) {
        done(unavailable("observability: no time-series recorder attached"));
        return;
      }
      const std::string prefix =
          !args.empty() && args[0].is_string() ? args[0].as_string() : "";
      const sim::Duration window =
          args.size() > 1 ? args[1].to_int().value_or(0) : 0;
      done(recorder_->to_value(prefix,
                               window > 0 ? window : sim::seconds(60)));
      return;
    }
    if (method == "getHealth") {
      if (health_ == nullptr) {
        done(unavailable("observability: no health monitor attached"));
        return;
      }
      done(health_->to_value());
      return;
    }
    done(not_found("observability: no such method: " + method));
  };
}

}  // namespace hcm::obs
