#include "obs/service.hpp"

namespace hcm::obs {

InterfaceDesc ObservabilityService::describe_interface() {
  InterfaceDesc iface;
  iface.name = "Observability";
  iface.methods = {
      MethodDesc{"getMetrics",
                 {ParamDesc{"prefix", ValueType::kString}},
                 ValueType::kMap,
                 false},
      MethodDesc{"getTrace",
                 {ParamDesc{"traceId", ValueType::kInt}},
                 ValueType::kString,
                 false},
      MethodDesc{"getSpanCount", {}, ValueType::kInt, false},
  };
  return iface;
}

ServiceHandler ObservabilityService::handler() {
  return [this](const std::string& method, const ValueList& args,
                InvokeResultFn done) {
    if (method == "getMetrics") {
      const std::string prefix =
          !args.empty() && args[0].is_string() ? args[0].as_string() : "";
      done(registry_.to_value(prefix));
      return;
    }
    if (method == "getTrace") {
      const std::uint64_t trace_id = static_cast<std::uint64_t>(
          args.empty() ? 0 : args[0].to_int().value_or(0));
      done(Value(tracer_.export_chrome(trace_id)));
      return;
    }
    if (method == "getSpanCount") {
      done(Value(static_cast<std::int64_t>(tracer_.span_count())));
      return;
    }
    done(not_found("observability: no such method: " + method));
  };
}

}  // namespace hcm::obs
