#include "obs/timeseries.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"
#include "common/json.hpp"
#include "obs/health.hpp"

namespace hcm::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fold_byte(std::uint64_t& h, unsigned char b) {
  h = (h ^ b) * kFnvPrime;
}

void fold_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) fold_byte(h, (v >> (8 * i)) & 0xff);
}

void fold_str(std::uint64_t& h, const std::string& s) {
  for (char c : s) fold_byte(h, static_cast<unsigned char>(c));
  fold_byte(h, 0xff);  // terminator so "ab"+"c" != "a"+"bc"
}

// The histogram-snapshot fields that become sub-series of a histogram
// metric ("x" -> "x.count", "x.p99", ...).
constexpr const char* kHistFields[] = {"count", "sum",
                                       "p50",   "p95",
                                       "p99",   "max"};

}  // namespace

std::optional<std::int64_t> TimeSeriesRecorder::Ring::at(
    std::uint64_t idx, std::size_t cap) const {
  if (idx < first_idx() || idx >= end_idx) return std::nullopt;
  const std::uint64_t off = idx - first_idx();
  const std::size_t pos =
      v.size() < cap ? static_cast<std::size_t>(off)
                     : (next + static_cast<std::size_t>(off)) % cap;
  return v[pos];
}

void TimeSeriesRecorder::Ring::push(std::uint64_t idx, std::int64_t x,
                                    std::size_t cap) {
  if (v.empty()) end_idx = idx;  // a series may be admitted mid-run
  HCM_CHECK_MSG(idx == end_idx, "ring grid indices must be contiguous");
  if (v.size() < cap) {
    v.push_back(x);
  } else {
    v[next] = x;
    next = (next + 1) % cap;
  }
  ++end_idx;
}

TimeSeriesRecorder::TimeSeriesRecorder(TimeSeriesOptions options)
    : options_(std::move(options)) {
  HCM_CHECK_MSG(!options_.tiers.empty(), "at least one retention tier");
  sim::Duration prev = 0;
  for (const TierSpec& t : options_.tiers) {
    HCM_CHECK_MSG(t.period > prev, "tier periods must strictly increase");
    HCM_CHECK_MSG(t.capacity > 0, "tier capacity must be positive");
    prev = t.period;
  }
  next_idx_.assign(options_.tiers.size(), 0);
}

TimeSeriesRecorder::~TimeSeriesRecorder() { detach(); }

void TimeSeriesRecorder::attach(sim::ShardedKernel& kernel) {
  detach();
  kernel_ = &kernel;
  kernel.set_window_hook([this](sim::SimTime floor) { sample_until(floor); });
}

void TimeSeriesRecorder::attach(sim::Scheduler& sched) {
  detach();
  sched_ = &sched;
  arm_timer();
}

void TimeSeriesRecorder::arm_timer() {
  const sim::Duration p = options_.tiers.front().period;
  const sim::SimTime next = (sched_->now() / p + 1) * p;
  timer_ = sched_->at(next, [this] {
    timer_ = 0;
    sample_until(sched_->now());
    arm_timer();
  });
}

void TimeSeriesRecorder::detach() {
  if (kernel_ != nullptr) {
    kernel_->set_window_hook({});
    kernel_ = nullptr;
  }
  if (sched_ != nullptr) {
    if (timer_ != 0) sched_->cancel(timer_);
    timer_ = 0;
    sched_ = nullptr;
  }
}

void TimeSeriesRecorder::snapshot_into(
    std::map<std::string, std::int64_t>& out) {
  const Registry* src = nullptr;
  if (ShardSlabs* slabs = ShardSlabs::installed()) {
    slabs->merge_into(merged_);
    src = &merged_;
  } else {
    src = &Registry::global();
  }
  std::vector<std::string> prefixes = options_.prefixes;
  if (prefixes.empty()) prefixes.push_back("");
  for (const std::string& prefix : prefixes) {
    const Value snap = src->to_value(prefix);
    for (const auto& [name, v] : snap.as_map()) {
      if (v.type() == ValueType::kInt) {
        out[name] = v.as_int();
      } else if (v.type() == ValueType::kMap) {
        const ValueMap& h = v.as_map();
        for (const char* field : kHistFields) {
          auto it = h.find(field);
          if (it != h.end()) out[name + "." + field] = it->second.as_int();
        }
      }
    }
  }
  // Kernel progress series are injected regardless of prefix filters:
  // they are the per-shard throughput rows of the hcm_top dashboard and
  // derive from deterministic event counts (never busy_ns wall time).
  if (kernel_ != nullptr) {
    out["sim.windows"] =
        static_cast<std::int64_t>(kernel_->windows_run());
    for (sim::ShardId s = 0; s < kernel_->shards(); ++s) {
      out["sim.shard." + std::to_string(s) + ".events"] =
          static_cast<std::int64_t>(kernel_->shard(s).events_processed());
    }
  } else if (sched_ != nullptr) {
    out["sim.events"] =
        static_cast<std::int64_t>(sched_->events_processed());
  }
}

void TimeSeriesRecorder::sample_until(sim::SimTime now) {
  // Outside the lock: the refresher may touch the registry (gauge
  // sets), and the snapshot below reads whatever it wrote.
  if (pre_sample_) pre_sample_();
  bool emitted = false;
  sim::SimTime latest = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t n_tiers = options_.tiers.size();
    // Due grid-index range [begin, end) per tier; a grid index k of a
    // tier with period P samples virtual time (k + 1) * P.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> due(n_tiers);
    bool any = false;
    for (std::size_t t = 0; t < n_tiers; ++t) {
      const auto end = static_cast<std::uint64_t>(
          now / options_.tiers[t].period);
      due[t] = {next_idx_[t], std::max<std::uint64_t>(end, next_idx_[t])};
      if (due[t].second > due[t].first) any = true;
    }
    if (!any) return;

    std::map<std::string, std::int64_t> snap;
    snapshot_into(snap);

    for (const auto& [name, value] : snap) {
      auto it = series_.find(name);
      if (it == series_.end()) {
        if (options_.max_series != 0 &&
            series_.size() >= options_.max_series) {
          refused_.insert(name);
          continue;
        }
        it = series_.emplace(name, Series{}).first;
        it->second.rings.resize(n_tiers);
      }
      for (std::size_t t = 0; t < n_tiers; ++t) {
        for (std::uint64_t k = due[t].first; k < due[t].second; ++k) {
          it->second.rings[t].push(k, value, options_.tiers[t].capacity);
        }
      }
    }
    for (std::size_t t = 0; t < n_tiers; ++t) {
      samples_ += due[t].second - due[t].first;
      next_idx_[t] = due[t].second;
      if (due[t].second > due[t].first) {
        last_time_ = std::max(
            last_time_, static_cast<sim::SimTime>(due[t].second) *
                            options_.tiers[t].period);
      }
    }
    emitted = true;
    latest = last_time_;
  }
  // Outside the lock: rule evaluation reads back through the public
  // accessors (and its obs.health.* metrics land in the next sample).
  if (emitted && health_ != nullptr) health_->evaluate(latest, *this);
}

std::size_t TimeSeriesRecorder::series_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return series_.size();
}

std::uint64_t TimeSeriesRecorder::samples_taken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return samples_;
}

std::uint64_t TimeSeriesRecorder::dropped_series() const {
  std::lock_guard<std::mutex> lk(mu_);
  return refused_.size();
}

sim::SimTime TimeSeriesRecorder::last_sample_time() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_time_;
}

std::optional<std::int64_t> TimeSeriesRecorder::latest(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return std::nullopt;
  for (std::size_t t = 0; t < it->second.rings.size(); ++t) {
    const Ring& r = it->second.rings[t];
    if (!r.v.empty()) return r.at(r.end_idx - 1, options_.tiers[t].capacity);
  }
  return std::nullopt;
}

std::optional<std::int64_t> TimeSeriesRecorder::value_at(
    const std::string& name, sim::SimTime at) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return std::nullopt;
  for (std::size_t t = 0; t < it->second.rings.size(); ++t) {
    const Ring& r = it->second.rings[t];
    if (r.v.empty()) continue;
    const sim::Duration p = options_.tiers[t].period;
    if (at < p) continue;  // before this tier's first grid point
    // Newest grid index with sample time (k + 1) * p <= at, clamped to
    // the newest actually recorded (sampling may lag the grid).
    std::uint64_t k = static_cast<std::uint64_t>(at / p) - 1;
    k = std::min(k, r.end_idx - 1);
    if (auto v = r.at(k, options_.tiers[t].capacity)) return v;
    // Aged out of this tier's ring; a coarser tier may still cover it.
  }
  return std::nullopt;
}

void TimeSeriesRecorder::each_series(
    const std::function<void(const std::string&)>& fn) const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lk(mu_);
    names.reserve(series_.size());
    for (const auto& [name, s] : series_) names.push_back(name);
  }
  for (const std::string& name : names) fn(name);
}

std::uint64_t TimeSeriesRecorder::hash_locked() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& [name, s] : series_) {
    fold_str(h, name);
    for (std::size_t t = 0; t < s.rings.size(); ++t) {
      const Ring& r = s.rings[t];
      if (r.v.empty()) continue;
      fold_u64(h, t);
      fold_u64(h, r.end_idx);
      fold_u64(h, r.v.size());
      for (std::uint64_t k = r.first_idx(); k < r.end_idx; ++k) {
        fold_u64(h, static_cast<std::uint64_t>(
                        *r.at(k, options_.tiers[t].capacity)));
      }
    }
  }
  fold_u64(h, static_cast<std::uint64_t>(last_time_));
  return h;
}

std::uint64_t TimeSeriesRecorder::series_hash() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hash_locked();
}

Value TimeSeriesRecorder::to_value(const std::string& prefix,
                                   sim::Duration window) const {
  std::lock_guard<std::mutex> lk(mu_);
  // Finest tier whose full retention covers the window (the coarsest
  // tier serves any window beyond every ring's reach).
  std::size_t tier = options_.tiers.size() - 1;
  for (std::size_t t = 0; t < options_.tiers.size(); ++t) {
    const TierSpec& ts = options_.tiers[t];
    if (static_cast<sim::Duration>(ts.capacity) * ts.period >= window) {
      tier = t;
      break;
    }
  }
  const sim::Duration p = options_.tiers[tier].period;
  const sim::SimTime from = window >= last_time_ ? 0 : last_time_ - window;
  ValueMap series;
  for (const auto& [name, s] : series_) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const Ring& r = s.rings[tier];
    if (r.v.empty()) continue;
    // First grid index with sample time (k + 1) * p > from.
    std::uint64_t k0 = static_cast<std::uint64_t>(from / p);
    k0 = std::max(k0, r.first_idx());
    if (k0 >= r.end_idx) continue;
    ValueList values;
    values.reserve(static_cast<std::size_t>(r.end_idx - k0));
    for (std::uint64_t k = k0; k < r.end_idx; ++k) {
      values.emplace_back(*r.at(k, options_.tiers[tier].capacity));
    }
    series[name] = Value(ValueMap{
        {"t0_us", Value(static_cast<std::int64_t>(k0 + 1) * p)},
        {"values", Value(std::move(values))},
    });
  }
  return Value(ValueMap{
      {"now_us", Value(last_time_)},
      {"period_us", Value(p)},
      {"series", Value(std::move(series))},
  });
}

Value TimeSeriesRecorder::dump() const {
  ValueMap out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ValueList tiers;
    for (const TierSpec& t : options_.tiers) {
      tiers.emplace_back(ValueMap{
          {"period_us", Value(t.period)},
          {"capacity", Value(static_cast<std::int64_t>(t.capacity))},
      });
    }
    ValueMap series;
    for (const auto& [name, s] : series_) {
      ValueList per_tier;
      for (std::size_t t = 0; t < s.rings.size(); ++t) {
        const Ring& r = s.rings[t];
        if (r.v.empty()) continue;
        const sim::Duration p = options_.tiers[t].period;
        ValueList values;
        values.reserve(r.v.size());
        for (std::uint64_t k = r.first_idx(); k < r.end_idx; ++k) {
          values.emplace_back(*r.at(k, options_.tiers[t].capacity));
        }
        per_tier.emplace_back(ValueMap{
            {"period_us", Value(p)},
            {"t0_us",
             Value(static_cast<std::int64_t>(r.first_idx() + 1) * p)},
            {"values", Value(std::move(values))},
        });
      }
      if (!per_tier.empty()) series[name] = Value(std::move(per_tier));
    }
    char hash[32];
    std::snprintf(hash, sizeof hash, "0x%016llx",
                  static_cast<unsigned long long>(hash_locked()));
    out["format"] = Value(std::string("hcm-series-v1"));
    out["now_us"] = Value(last_time_);
    out["samples"] = Value(static_cast<std::int64_t>(samples_));
    out["series_count"] = Value(static_cast<std::int64_t>(series_.size()));
    out["dropped_series"] = Value(static_cast<std::int64_t>(refused_.size()));
    out["hash"] = Value(std::string(hash));
    out["tiers"] = Value(std::move(tiers));
    out["series"] = Value(std::move(series));
  }
  if (health_ != nullptr) out["health"] = health_->to_value();
  return Value(std::move(out));
}

bool TimeSeriesRecorder::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << json_write(dump()) << "\n";
  return f.good();
}

}  // namespace hcm::obs
