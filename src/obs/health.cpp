#include "obs/health.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "obs/timeseries.hpp"

namespace hcm::obs {

namespace {

constexpr std::size_t kRecentCap = 32;

bool compare(double v, HealthRule::Op op, double threshold) {
  switch (op) {
    case HealthRule::Op::kGt: return v > threshold;
    case HealthRule::Op::kGe: return v >= threshold;
    case HealthRule::Op::kLt: return v < threshold;
    case HealthRule::Op::kLe: return v <= threshold;
  }
  return false;
}

const char* op_text(HealthRule::Op op) {
  switch (op) {
    case HealthRule::Op::kGt: return ">";
    case HealthRule::Op::kGe: return ">=";
    case HealthRule::Op::kLt: return "<";
    case HealthRule::Op::kLe: return "<=";
  }
  return "?";
}

const char* kind_text(HealthRule::Kind k) {
  switch (k) {
    case HealthRule::Kind::kValue: return "value";
    case HealthRule::Kind::kRate: return "rate";
    case HealthRule::Kind::kAbsent: return "absent";
  }
  return "?";
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

// "120s" / "250ms" / "1500us" -> microseconds.
bool parse_duration(const std::string& s, sim::Duration* out) {
  std::size_t i = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  if (i == 0) return false;
  const std::int64_t n = std::strtoll(s.substr(0, i).c_str(), nullptr, 10);
  const std::string unit = s.substr(i);
  if (unit == "s") {
    *out = sim::seconds(n);
  } else if (unit == "ms") {
    *out = sim::milliseconds(n);
  } else if (unit == "us") {
    *out = sim::microseconds(n);
  } else {
    return false;
  }
  return *out > 0;
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative '*' matcher with single-star backtracking.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string::npos;
  std::size_t mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kUnknown: return "unknown";
    case HealthState::kOk: return "ok";
    case HealthState::kBreach: return "breach";
  }
  return "?";
}

Value HealthTransition::to_value() const {
  return Value(ValueMap{
      {"rule", Value(rule)},
      {"from", Value(std::string(to_string(from)))},
      {"to", Value(std::string(to_string(to)))},
      {"series", Value(series)},
      {"value", Value(value)},
      {"when_us", Value(when)},
  });
}

HealthMonitor::HealthMonitor()
    : transitions_counter_(
          Registry::global().counter("obs.health.transitions")),
      breached_gauge_(Registry::global().gauge("obs.health.breached")) {}

void HealthMonitor::add_rule(HealthRule rule) {
  rules_.push_back(RuleState{std::move(rule), HealthState::kUnknown, "", 0, 0});
}

Result<HealthRule> HealthMonitor::parse_rule(const std::string& spec) {
  HealthRule rule;
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    return invalid_argument("health rule: expected '<name>: <check>'");
  }
  rule.name = trimmed(spec.substr(0, colon));
  std::string rest = trimmed(spec.substr(colon + 1));

  const std::size_t open = rest.find('(');
  const std::size_t close = rest.find(')', open == std::string::npos ? 0 : open);
  if (open == std::string::npos || close == std::string::npos) {
    return invalid_argument("health rule: expected '<kind>(<metric>...)'");
  }
  const std::string kind = trimmed(rest.substr(0, open));
  if (kind == "value") {
    rule.kind = HealthRule::Kind::kValue;
  } else if (kind == "rate") {
    rule.kind = HealthRule::Kind::kRate;
  } else if (kind == "absent") {
    rule.kind = HealthRule::Kind::kAbsent;
  } else {
    return invalid_argument("health rule: unknown kind '" + kind + "'");
  }

  // "<metric>[, window=<dur>]" between the parentheses.
  std::string inner = rest.substr(open + 1, close - open - 1);
  const std::size_t comma = inner.find(',');
  rule.metric = trimmed(comma == std::string::npos ? inner
                                                   : inner.substr(0, comma));
  if (rule.metric.empty()) {
    return invalid_argument("health rule: empty metric pattern");
  }
  if (comma != std::string::npos) {
    std::string arg = trimmed(inner.substr(comma + 1));
    const std::string prefix = "window=";
    if (arg.compare(0, prefix.size(), prefix) != 0 ||
        !parse_duration(arg.substr(prefix.size()), &rule.window)) {
      return invalid_argument("health rule: bad argument '" + arg +
                              "' (expected window=<n>{us,ms,s})");
    }
  }

  std::string tail = trimmed(rest.substr(close + 1));
  if (rule.kind == HealthRule::Kind::kAbsent) {
    if (!tail.empty()) {
      return invalid_argument("health rule: absent() takes no comparison");
    }
    return rule;
  }
  if (tail.compare(0, 2, ">=") == 0) {
    rule.op = HealthRule::Op::kGe;
    tail = trimmed(tail.substr(2));
  } else if (tail.compare(0, 2, "<=") == 0) {
    rule.op = HealthRule::Op::kLe;
    tail = trimmed(tail.substr(2));
  } else if (!tail.empty() && tail[0] == '>') {
    rule.op = HealthRule::Op::kGt;
    tail = trimmed(tail.substr(1));
  } else if (!tail.empty() && tail[0] == '<') {
    rule.op = HealthRule::Op::kLt;
    tail = trimmed(tail.substr(1));
  } else {
    return invalid_argument("health rule: expected comparison operator");
  }
  char* end = nullptr;
  rule.threshold = std::strtod(tail.c_str(), &end);
  if (tail.empty() || end == nullptr || *end != '\0') {
    return invalid_argument("health rule: bad threshold '" + tail + "'");
  }
  return rule;
}

Status HealthMonitor::add_rule_spec(const std::string& spec) {
  Result<HealthRule> rule = parse_rule(spec);
  if (!rule.is_ok()) return rule.status();
  add_rule(std::move(rule).take());
  return Status::ok();
}

void HealthMonitor::transition(RuleState& rs, HealthState to,
                               const std::string& series, double value,
                               sim::SimTime now) {
  rs.series = series;
  rs.value = value;
  if (rs.state == to) return;
  HealthTransition tr{rs.rule.name, rs.state, to, series, value, now};
  rs.state = to;
  rs.since = now;
  ++transitions_n_;
  transitions_counter_.inc();
  if (recent_.size() >= kRecentCap) {
    recent_.erase(recent_.begin());
  }
  recent_.push_back(tr);
  if (transition_fn_) transition_fn_(tr);
}

void HealthMonitor::evaluate(sim::SimTime now, const TimeSeriesRecorder& rec) {
  for (RuleState& rs : rules_) {
    const HealthRule& rule = rs.rule;
    std::vector<std::string> matches;
    rec.each_series([&](const std::string& name) {
      if (glob_match(rule.metric, name)) matches.push_back(name);
    });

    switch (rule.kind) {
      case HealthRule::Kind::kValue: {
        if (matches.empty()) break;  // unknown until the series exists
        bool breached = false;
        std::string offender;
        double worst = 0;
        for (const std::string& name : matches) {
          const auto v = rec.latest(name);
          if (!v) continue;
          const auto dv = static_cast<double>(*v);
          if (compare(dv, rule.op, rule.threshold) &&
              (!breached || std::abs(dv) > std::abs(worst))) {
            breached = true;
            offender = name;
            worst = dv;
          }
        }
        transition(rs, breached ? HealthState::kBreach : HealthState::kOk,
                   offender, worst, now);
        break;
      }
      case HealthRule::Kind::kRate: {
        if (matches.empty() || now < rule.window) break;  // no history yet
        bool evaluated = false;
        bool breached = false;
        std::string offender;
        double worst = 0;
        for (const std::string& name : matches) {
          const auto v1 = rec.latest(name);
          const auto v0 = rec.value_at(name, now - rule.window);
          if (!v1 || !v0) continue;
          evaluated = true;
          const double rate = static_cast<double>(*v1 - *v0) /
                              (static_cast<double>(rule.window) / 1e6);
          if (compare(rate, rule.op, rule.threshold) &&
              (!breached || std::abs(rate) > std::abs(worst))) {
            breached = true;
            offender = name;
            worst = rate;
          }
        }
        if (!evaluated) break;
        transition(rs, breached ? HealthState::kBreach : HealthState::kOk,
                   offender, worst, now);
        break;
      }
      case HealthRule::Kind::kAbsent: {
        if (now < rule.window) break;  // startup grace
        if (matches.empty()) {
          transition(rs, HealthState::kBreach, "", 0, now);
          break;
        }
        bool stalled = false;
        std::string offender;
        for (const std::string& name : matches) {
          const auto v1 = rec.latest(name);
          const auto v0 = rec.value_at(name, now - rule.window);
          if (v1 && v0 && *v1 - *v0 == 0) {
            stalled = true;
            offender = name;
            break;
          }
        }
        transition(rs, stalled ? HealthState::kBreach : HealthState::kOk,
                   offender, 0, now);
        break;
      }
    }
  }
  std::int64_t breached = 0;
  for (const RuleState& rs : rules_) {
    if (rs.state == HealthState::kBreach) ++breached;
  }
  breached_gauge_.set(breached);
}

HealthState HealthMonitor::overall() const {
  bool any_ok = false;
  for (const RuleState& rs : rules_) {
    if (rs.state == HealthState::kBreach) return HealthState::kBreach;
    if (rs.state == HealthState::kOk) any_ok = true;
  }
  return any_ok ? HealthState::kOk : HealthState::kUnknown;
}

HealthState HealthMonitor::rule_state(const std::string& name) const {
  for (const RuleState& rs : rules_) {
    if (rs.rule.name == name) return rs.state;
  }
  return HealthState::kUnknown;
}

Value HealthMonitor::to_value() const {
  ValueMap rules;
  for (const RuleState& rs : rules_) {
    rules[rs.rule.name] = Value(ValueMap{
        {"state", Value(std::string(to_string(rs.state)))},
        {"kind", Value(std::string(kind_text(rs.rule.kind)))},
        {"metric", Value(rs.rule.metric)},
        {"op", Value(std::string(op_text(rs.rule.op)))},
        {"threshold", Value(rs.rule.threshold)},
        {"window_us", Value(rs.rule.window)},
        {"series", Value(rs.series)},
        {"value", Value(rs.value)},
        {"since_us", Value(rs.since)},
    });
  }
  ValueList recent;
  for (const HealthTransition& tr : recent_) {
    recent.push_back(tr.to_value());
  }
  return Value(ValueMap{
      {"state", Value(std::string(to_string(overall())))},
      {"transitions", Value(static_cast<std::int64_t>(transitions_n_))},
      {"rules", Value(std::move(rules))},
      {"recent", Value(std::move(recent))},
  });
}

}  // namespace hcm::obs
