// Cross-island causal tracing. A TraceContext (trace id, span id,
// parent span id) travels with every invocation: in-process via the
// Tracer's current-context slot (Scope RAII), across the wire inside a
// SOAP <hcm:Trace> header or the binary channel's "tr" frame field.
// Each hop records a Span keyed to sim-scheduler virtual time, and the
// whole trace exports as Chrome trace_event JSON (load via
// chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off by default: span ids are allocated from a process
// counter, so leaving it on would let unrelated tests perturb each
// other's exports. It is deterministic whenever the run is — ids come
// from the counter and timestamps from virtual time, never from the
// wall clock.
//
// Shard safety (docs/SHARDING.md): the current-context slot is
// thread-local — each shard worker carries its own dispatch context,
// which is exactly the "synchronous dispatch segment" the Scope RAII
// models — while the span table and id counter are mutex-guarded so
// instrumented wire paths on different shards can record concurrently.
// Span-id allocation order across shards is scheduling-dependent, so
// leave tracing off during runs that are audited for bit-identical
// traces at >1 shard (the hot-path check is one relaxed atomic load).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace hcm::obs {

// 0 means "unset" for every id field.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0 && span_id != 0; }
};

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;
  std::string component;  // maps to the Chrome trace "thread" row
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  bool open = true;
  bool ok = true;
};

class Tracer {
 public:
  // Default span-buffer cap: ~26 MB of spans at ~100 B each. Soak runs
  // keep tracing on and rely on the cap + spans_dropped counter instead
  // of unbounded growth.
  static constexpr std::size_t kDefaultMaxSpans = 262'144;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Enabling also installs the logging context provider so log lines
  // carry "trace=<hex> span=<hex>" while a context is in scope.
  void set_enabled(bool on);

  // Starts a span as a child of the current context (or a new trace if
  // none is current). Returns the span id; 0 when tracing is disabled
  // or the span buffer is at its cap (the drop is counted in
  // obs.trace.spans_dropped and dropped_spans()).
  std::uint64_t begin_span(const std::string& name,
                           const std::string& component, sim::SimTime now);
  void end_span(std::uint64_t span_id, sim::SimTime now, bool ok = true);

  // Span-buffer bound; 0 = unbounded. Spans beyond the cap are dropped
  // at begin_span (callers see span id 0, which every consumer already
  // treats as "not traced").
  void set_max_spans(std::size_t n);
  [[nodiscard]] std::size_t max_spans() const;
  [[nodiscard]] std::uint64_t dropped_spans() const;

  [[nodiscard]] const TraceContext& current() const { return tls_current(); }
  // Context a wire hop should carry for the given span (its child
  // frame): {trace, span} of that span. Zero context if unknown.
  [[nodiscard]] TraceContext context_of(std::uint64_t span_id) const;

  // RAII current-context swap for the duration of a synchronous
  // dispatch segment. The slot is thread-local, so nested Scopes on
  // different shard workers never interleave.
  class Scope {
   public:
    Scope(Tracer& tracer, const TraceContext& ctx) : saved_(tls_current()) {
      (void)tracer;
      tls_current() = ctx;
    }
    ~Scope() { tls_current() = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceContext saved_;
  };

  // Snapshot/readout APIs: call from a quiesced state (between kernel
  // windows or after a run) — the reference stays owned by the tracer.
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t span_count() const;
  // Drops recorded spans and resets id allocation + current context.
  void clear();

  // Chrome trace_event JSON ("X" complete events, ts in virtual µs,
  // one tid per component with thread_name metadata). trace_id == 0
  // exports every recorded span.
  [[nodiscard]] std::string export_chrome(std::uint64_t trace_id = 0) const;
  [[nodiscard]] bool write_chrome(const std::string& path,
                                  std::uint64_t trace_id = 0) const;

 private:
  // The calling thread's (shard's) in-flight dispatch context.
  [[nodiscard]] static TraceContext& tls_current();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards next_id_ + spans_ + max_spans_
  std::uint64_t next_id_ = 1;
  std::vector<Span> spans_;
  std::size_t max_spans_ = kDefaultMaxSpans;
  std::uint64_t dropped_ = 0;
  Counter& dropped_counter_;  // obs.trace.spans_dropped (global registry)
};

}  // namespace hcm::obs
