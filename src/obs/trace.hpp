// Cross-island causal tracing. A TraceContext (trace id, span id,
// parent span id) travels with every invocation: in-process via the
// Tracer's current-context slot (Scope RAII), across the wire inside a
// SOAP <hcm:Trace> header or the binary channel's "tr" frame field.
// Each hop records a Span keyed to sim-scheduler virtual time, and the
// whole trace exports as Chrome trace_event JSON (load via
// chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off by default: span ids are allocated from a process
// counter, so leaving it on would let unrelated tests perturb each
// other's exports. It is deterministic whenever the run is — ids come
// from the counter and timestamps from virtual time, never from the
// wall clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace hcm::obs {

// 0 means "unset" for every id field.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0 && span_id != 0; }
};

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;
  std::string component;  // maps to the Chrome trace "thread" row
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  bool open = true;
  bool ok = true;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  [[nodiscard]] bool enabled() const { return enabled_; }
  // Enabling also installs the logging context provider so log lines
  // carry "trace=<hex> span=<hex>" while a context is in scope.
  void set_enabled(bool on);

  // Starts a span as a child of the current context (or a new trace if
  // none is current). Returns the span id; 0 when tracing is disabled.
  std::uint64_t begin_span(const std::string& name,
                           const std::string& component, sim::SimTime now);
  void end_span(std::uint64_t span_id, sim::SimTime now, bool ok = true);

  [[nodiscard]] const TraceContext& current() const { return current_; }
  // Context a wire hop should carry for the given span (its child
  // frame): {trace, span} of that span. Zero context if unknown.
  [[nodiscard]] TraceContext context_of(std::uint64_t span_id) const;

  // RAII current-context swap for the duration of a synchronous
  // dispatch segment.
  class Scope {
   public:
    Scope(Tracer& tracer, const TraceContext& ctx)
        : tracer_(tracer), saved_(tracer.current_) {
      tracer_.current_ = ctx;
    }
    ~Scope() { tracer_.current_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer& tracer_;
    TraceContext saved_;
  };

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }
  // Drops recorded spans and resets id allocation + current context.
  void clear();

  // Chrome trace_event JSON ("X" complete events, ts in virtual µs,
  // one tid per component with thread_name metadata). trace_id == 0
  // exports every recorded span.
  [[nodiscard]] std::string export_chrome(std::uint64_t trace_id = 0) const;
  [[nodiscard]] bool write_chrome(const std::string& path,
                                  std::uint64_t trace_id = 0) const;

 private:
  bool enabled_ = false;
  std::uint64_t next_id_ = 1;
  TraceContext current_;
  std::vector<Span> spans_;
};

}  // namespace hcm::obs
