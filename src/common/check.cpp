#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

#ifndef __has_feature
#define __has_feature(x) 0  // GCC spells it __SANITIZE_ADDRESS__ instead
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
// The simulator deliberately keeps cyclic object graphs (streams and
// proxies capture shared_ptr peers in callbacks) alive until process
// exit; LeakSanitizer reports them as indirect leaks. Bake the opt-out
// into every sanitized binary so bare runs match the ctest preset.
// docs/CORRECTNESS.md explains; untangling the cycles is roadmap work.
extern "C" const char* __asan_default_options() {
  return "detect_leaks=0:strict_string_checks=1";
}
#endif

namespace hcm::detail {

void check_fail(const char* expr, const char* file, int line,
                const std::string& detail) {
  if (detail.empty()) {
    std::fprintf(stderr, "HCM_CHECK failed: %s at %s:%d\n", expr, file, line);
  } else {
    std::fprintf(stderr, "HCM_CHECK failed: %s (%s) at %s:%d\n", expr,
                 detail.c_str(), file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace hcm::detail
