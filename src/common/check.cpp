#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

#ifndef __has_feature
#define __has_feature(x) 0  // GCC spells it __SANITIZE_ADDRESS__ instead
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
// LeakSanitizer runs on every sanitized binary (the former shared_ptr
// ownership cycles between streams/proxies and their callbacks have
// been untangled). Baking the options in keeps bare runs identical to
// the ctest preset. docs/CORRECTNESS.md explains.
extern "C" const char* __asan_default_options() {
  return "detect_leaks=1:strict_string_checks=1";
}
#endif

namespace hcm::detail {

void check_fail(const char* expr, const char* file, int line,
                const std::string& detail) {
  if (detail.empty()) {
    std::fprintf(stderr, "HCM_CHECK failed: %s at %s:%d\n", expr, file, line);
  } else {
    std::fprintf(stderr, "HCM_CHECK failed: %s (%s) at %s:%d\n", expr,
                 detail.c_str(), file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace hcm::detail
