#include "common/base64.hpp"

#include <array>

namespace hcm {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> make_reverse() {
  std::array<std::int8_t, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return rev;
}
}  // namespace

std::string base64_encode(const Bytes& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    std::uint32_t n = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += kAlphabet[n & 63];
  }
  if (i + 1 == data.size()) {
    std::uint32_t n = data[i] << 16;
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += "==";
  } else if (i + 2 == data.size()) {
    std::uint32_t n = (data[i] << 16) | (data[i + 1] << 8);
    out += kAlphabet[(n >> 18) & 63];
    out += kAlphabet[(n >> 12) & 63];
    out += kAlphabet[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

Result<Bytes> base64_decode(std::string_view text) {
  static const auto kReverse = make_reverse();
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t acc = 0;
  int bits = 0;
  int pad = 0;
  for (char c : text) {
    if (c == '\n' || c == '\r' || c == ' ') continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad > 0) return protocol_error("base64: data after padding");
    auto v = kReverse[static_cast<unsigned char>(c)];
    if (v < 0) return protocol_error("base64: invalid character");
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  if (pad > 2) return protocol_error("base64: too much padding");
  return out;
}

}  // namespace hcm
