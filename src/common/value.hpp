// Value: the middleware-neutral dynamic value model. Every middleware in
// the repo (Jini-like, HAVi-like, X10, SOAP, mail) marshals call
// arguments and results to/from this type; the PCMs convert between the
// native encodings without losing information.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace hcm {

enum class ValueType {
  kNull = 0,
  kBool,
  kInt,     // int64
  kDouble,
  kString,
  kBytes,
  kList,
  kMap,
};

const char* to_string(ValueType t);

class Value;
using ValueList = std::vector<Value>;
using ValueMap = std::map<std::string, Value>;

// A JSON-like dynamic value. Small enough to copy; lists/maps share
// nothing (value semantics throughout, per the Core Guidelines default).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(std::nullptr_t) : v_(std::monostate{}) {}           // NOLINT
  Value(bool b) : v_(b) {}                                  // NOLINT
  Value(std::int64_t i) : v_(i) {}                          // NOLINT
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}        // NOLINT
  Value(double d) : v_(d) {}                                // NOLINT
  Value(std::string s) : v_(std::move(s)) {}                // NOLINT
  Value(const char* s) : v_(std::string(s)) {}              // NOLINT
  Value(Bytes b) : v_(std::move(b)) {}                      // NOLINT
  Value(ValueList l) : v_(std::move(l)) {}                  // NOLINT
  Value(ValueMap m) : v_(std::move(m)) {}                   // NOLINT

  [[nodiscard]] ValueType type() const;

  [[nodiscard]] bool is_null() const { return type() == ValueType::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == ValueType::kBool; }
  [[nodiscard]] bool is_int() const { return type() == ValueType::kInt; }
  [[nodiscard]] bool is_double() const { return type() == ValueType::kDouble; }
  [[nodiscard]] bool is_string() const { return type() == ValueType::kString; }
  [[nodiscard]] bool is_bytes() const { return type() == ValueType::kBytes; }
  [[nodiscard]] bool is_list() const { return type() == ValueType::kList; }
  [[nodiscard]] bool is_map() const { return type() == ValueType::kMap; }

  // Accessors assert on type mismatch; use type() / is_*() to check first.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_double() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Bytes& as_bytes() const { return std::get<Bytes>(v_); }
  [[nodiscard]] const ValueList& as_list() const {
    return std::get<ValueList>(v_);
  }
  [[nodiscard]] const ValueMap& as_map() const { return std::get<ValueMap>(v_); }
  [[nodiscard]] ValueList& as_list() { return std::get<ValueList>(v_); }
  [[nodiscard]] ValueMap& as_map() { return std::get<ValueMap>(v_); }

  // Lenient numeric view: int or double -> double.
  [[nodiscard]] Result<double> to_number() const;
  // Lenient int view: int, or double with integral value.
  [[nodiscard]] Result<std::int64_t> to_int() const;

  // Map convenience: value at key, or null Value if missing.
  [[nodiscard]] const Value& at(const std::string& key) const;

  // Human-readable single-line rendering (diagnostics / tests).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Bytes,
               ValueList, ValueMap>
      v_;
};

}  // namespace hcm
