#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/base64.hpp"

namespace hcm {

namespace {

void write_value(std::string& out, const Value& v);

void write_string(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

void write_value(std::string& out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      out += "null";
      break;
    case ValueType::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case ValueType::kInt:
      out += std::to_string(v.as_int());
      break;
    case ValueType::kDouble: {
      const double d = v.as_double();
      if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
        // %.17g of an integral double has no '.', 'e' — keep it a
        // double on parse-back.
        if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
            std::string::npos) {
          out += ".0";
        }
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case ValueType::kString:
      write_string(out, v.as_string());
      break;
    case ValueType::kBytes:
      write_string(out, base64_encode(v.as_bytes()));
      break;
    case ValueType::kList: {
      out += '[';
      bool first = true;
      for (const Value& e : v.as_list()) {
        if (!first) out += ',';
        first = false;
        write_value(out, e);
      }
      out += ']';
      break;
    }
    case ValueType::kMap: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_map()) {
        if (!first) out += ',';
        first = false;
        write_string(out, k);
        out += ':';
        write_value(out, e);
      }
      out += '}';
      break;
    }
  }
}

// --- parser -------------------------------------------------------------

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string err;

  [[nodiscard]] bool failed() const { return !err.empty(); }

  void fail(const std::string& what) {
    if (err.empty()) {
      err = what + " at offset " + std::to_string(pos);
    }
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] char peek() const {
    return pos < text.size() ? text[pos] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos;
    return true;
  }

  bool consume_word(const char* w) {
    std::size_t n = std::strlen(w);
    if (text.compare(pos, n, w) != 0) return false;
    pos += n;
    return true;
  }

  Value parse_value(int depth) {
    if (depth > 256) {
      fail("nesting too deep");
      return {};
    }
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_map(depth);
    if (c == '[') return parse_list(depth);
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (!consume_word("true")) fail("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consume_word("false")) fail("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consume_word("null")) fail("bad literal");
      return {};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
    return {};
  }

  Value parse_number() {
    const std::size_t begin = pos;
    if (peek() == '-') ++pos;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    bool integral = true;
    if (peek() == '.') {
      integral = false;
      ++pos;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos;
      if (peek() == '+' || peek() == '-') ++pos;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    const std::string tok = text.substr(begin, pos - begin);
    if (tok.empty() || tok == "-") {
      fail("bad number");
      return {};
    }
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value(static_cast<std::int64_t>(v));
      }
    }
    return Value(std::strtod(tok.c_str(), nullptr));
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      fail("expected string");
      return out;
    }
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("unescaped control character");
          return out;
        }
        out += c;
        continue;
      }
      if (pos >= text.size()) break;
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) {
            fail("truncated \\u escape");
            return out;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape");
              return out;
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; telemetry names are ASCII).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  Value parse_list(int depth) {
    ValueList out;
    consume('[');
    skip_ws();
    if (consume(']')) return Value(std::move(out));
    for (;;) {
      out.push_back(parse_value(depth + 1));
      if (failed()) return {};
      skip_ws();
      if (consume(']')) return Value(std::move(out));
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return {};
      }
    }
  }

  Value parse_map(int depth) {
    ValueMap out;
    consume('{');
    skip_ws();
    if (consume('}')) return Value(std::move(out));
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (failed()) return {};
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return {};
      }
      out[std::move(key)] = parse_value(depth + 1);
      if (failed()) return {};
      skip_ws();
      if (consume('}')) return Value(std::move(out));
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return {};
      }
    }
  }
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_write(const Value& v) {
  std::string out;
  write_value(out, v);
  return out;
}

Result<Value> json_parse(const std::string& text) {
  Parser p{text, 0, {}};
  Value v = p.parse_value(0);
  if (!p.failed()) {
    p.skip_ws();
    if (p.pos != text.size()) p.fail("trailing content");
  }
  if (p.failed()) return invalid_argument("json: " + p.err);
  return v;
}

}  // namespace hcm
