// HCM_CHECK / HCM_DCHECK: the framework's invariant macros. Unlike
// assert(), HCM_CHECK is active in every build type — a violated
// framework invariant (virtual time going backwards, a tombstone count
// underflow) must abort the simulation rather than silently corrupt a
// benchmark result. HCM_DCHECK compiles away under NDEBUG and is for
// hot-path checks whose cost matters.
//
// docs/CORRECTNESS.md describes when to use which.
#pragma once

#include <string>

namespace hcm::detail {

// Prints "CHECK failed: <expr> (<detail>) at file:line" to stderr and
// aborts. Out-of-line so the macro expands to a single cheap branch.
[[noreturn]] void check_fail(const char* expr, const char* file, int line,
                             const std::string& detail);

}  // namespace hcm::detail

#define HCM_CHECK(cond)                                            \
  ((cond) ? static_cast<void>(0)                                   \
          : ::hcm::detail::check_fail(#cond, __FILE__, __LINE__, {}))

// Variant carrying a detail message (any std::string-convertible).
#define HCM_CHECK_MSG(cond, msg)                                   \
  ((cond) ? static_cast<void>(0)                                   \
          : ::hcm::detail::check_fail(#cond, __FILE__, __LINE__, (msg)))

#ifdef NDEBUG
#define HCM_DCHECK(cond) static_cast<void>(0)
#define HCM_DCHECK_MSG(cond, msg) static_cast<void>(0)
#else
#define HCM_DCHECK(cond) HCM_CHECK(cond)
#define HCM_DCHECK_MSG(cond, msg) HCM_CHECK_MSG(cond, msg)
#endif
