#include "common/value_codec.hpp"

namespace hcm {

namespace {
// Nesting bound: a hostile/corrupt buffer must not blow the stack.
constexpr int kMaxDepth = 64;

Result<Value> decode_rec(BufReader& r, int depth) {
  if (depth > kMaxDepth) return protocol_error("value nesting too deep");
  auto tag = r.u8();
  if (!tag.is_ok()) return tag.status();
  switch (static_cast<ValueType>(tag.value())) {
    case ValueType::kNull:
      return Value();
    case ValueType::kBool: {
      auto b = r.u8();
      if (!b.is_ok()) return b.status();
      return Value(b.value() != 0);
    }
    case ValueType::kInt: {
      auto i = r.i64();
      if (!i.is_ok()) return i.status();
      return Value(i.value());
    }
    case ValueType::kDouble: {
      auto d = r.f64();
      if (!d.is_ok()) return d.status();
      return Value(d.value());
    }
    case ValueType::kString: {
      auto s = r.string();
      if (!s.is_ok()) return s.status();
      return Value(std::move(s).take());
    }
    case ValueType::kBytes: {
      auto b = r.bytes();
      if (!b.is_ok()) return b.status();
      return Value(std::move(b).take());
    }
    case ValueType::kList: {
      auto n = r.u32();
      if (!n.is_ok()) return n.status();
      if (n.value() > r.remaining()) {
        return protocol_error("list length exceeds buffer");
      }
      ValueList list;
      list.reserve(n.value());
      for (std::uint32_t i = 0; i < n.value(); ++i) {
        auto e = decode_rec(r, depth + 1);
        if (!e.is_ok()) return e.status();
        list.push_back(std::move(e).take());
      }
      return Value(std::move(list));
    }
    case ValueType::kMap: {
      auto n = r.u32();
      if (!n.is_ok()) return n.status();
      if (n.value() > r.remaining()) {
        return protocol_error("map length exceeds buffer");
      }
      ValueMap map;
      for (std::uint32_t i = 0; i < n.value(); ++i) {
        auto k = r.string();
        if (!k.is_ok()) return k.status();
        auto e = decode_rec(r, depth + 1);
        if (!e.is_ok()) return e.status();
        map.emplace(std::move(k).take(), std::move(e).take());
      }
      return Value(std::move(map));
    }
  }
  return protocol_error("unknown value tag " + std::to_string(tag.value()));
}

}  // namespace

void encode_value(const Value& v, BufWriter& w) {
  w.put_u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w.put_u8(v.as_bool() ? 1 : 0);
      break;
    case ValueType::kInt:
      w.put_i64(v.as_int());
      break;
    case ValueType::kDouble:
      w.put_f64(v.as_double());
      break;
    case ValueType::kString:
      w.put_string(v.as_string());
      break;
    case ValueType::kBytes:
      w.put_bytes(v.as_bytes());
      break;
    case ValueType::kList:
      w.put_u32(static_cast<std::uint32_t>(v.as_list().size()));
      for (const auto& e : v.as_list()) encode_value(e, w);
      break;
    case ValueType::kMap:
      w.put_u32(static_cast<std::uint32_t>(v.as_map().size()));
      for (const auto& [k, e] : v.as_map()) {
        w.put_string(k);
        encode_value(e, w);
      }
      break;
  }
}

Bytes encode_value(const Value& v) {
  BufWriter w;
  encode_value(v, w);
  return w.take();
}

Result<Value> decode_value(BufReader& r) { return decode_rec(r, 0); }

Result<Value> decode_value(const Bytes& b) {
  BufReader r(b);
  auto v = decode_rec(r, 0);
  if (!v.is_ok()) return v;
  if (!r.at_end()) return protocol_error("trailing bytes after value");
  return v;
}

}  // namespace hcm
