// Base64 (RFC 4648) — used for xsd:base64Binary payloads in SOAP.
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace hcm {

[[nodiscard]] std::string base64_encode(const Bytes& data);
[[nodiscard]] Result<Bytes> base64_decode(std::string_view text);

}  // namespace hcm
