#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace hcm {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace {
// Process-wide logging config: the sink and context provider are set
// once at startup before any worker runs, never mutated mid-scenario;
// the level is atomic because shard workers consult it on every log
// call and tests flip it around runs.
std::atomic<LogLevel> g_level{LogLevel::kOff};
// hcm:allow(shard-mutable-global): see g_level — startup-only config.
LogSink g_sink;
// hcm:allow(shard-mutable-global): see g_level — startup-only config.
LogContextProvider g_context;

void stderr_sink(LogLevel level, const std::string& component,
                 const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", to_string(level), component.c_str(),
               message.c_str());
}
}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
void Log::set_sink(LogSink sink) { g_sink = std::move(sink); }
void Log::set_context_provider(LogContextProvider provider) {
  g_context = std::move(provider);
}

void Log::write(LogLevel level, const std::string& component,
                const std::string& message) {
  std::string line = message;
  if (g_context) {
    if (std::string ctx = g_context(); !ctx.empty()) {
      line += " [";
      line += ctx;
      line += "]";
    }
  }
  if (g_sink) {
    g_sink(level, component, line);
  } else {
    stderr_sink(level, component, line);
  }
}

}  // namespace hcm
