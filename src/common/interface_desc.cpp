#include "common/interface_desc.hpp"

namespace hcm {

const MethodDesc* InterfaceDesc::find_method(const std::string& m) const {
  for (const auto& method : methods) {
    if (method.name == m) return &method;
  }
  return nullptr;
}

const MethodDesc* InterfaceDesc::find_event(const std::string& e) const {
  for (const auto& event : events) {
    if (event.name == e) return &event;
  }
  return nullptr;
}

Status check_args(const MethodDesc& method, const std::vector<Value>& args) {
  if (args.size() != method.params.size()) {
    return invalid_argument("method " + method.name + " expects " +
                            std::to_string(method.params.size()) +
                            " args, got " + std::to_string(args.size()));
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    const ValueType want = method.params[i].type;
    const ValueType got = args[i].type();
    if (want == ValueType::kNull) continue;  // untyped parameter
    if (want == got) continue;
    if (want == ValueType::kDouble && got == ValueType::kInt) continue;
    return invalid_argument("method " + method.name + " param '" +
                            method.params[i].name + "' expects " +
                            std::string(to_string(want)) + ", got " +
                            std::string(to_string(got)));
  }
  return Status::ok();
}

}  // namespace hcm
