// Byte-buffer primitives: every wire protocol in the repo (Jini call
// protocol, CM11A frames, HAVi messages, the binary VSG codec) is built
// on these big-endian reader/writer helpers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hcm {

using Bytes = std::vector<std::uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

// Appends big-endian encoded primitives to a growable buffer.
class BufWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  // Length-prefixed (u32) byte string.
  void put_bytes(const Bytes& b);
  void put_string(std::string_view s);
  // Raw append, no length prefix.
  void put_raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void put_raw(std::string_view s) { buf_.insert(buf_.end(), s.begin(), s.end()); }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Bounds-checked big-endian reader over a borrowed buffer.
class BufReader {
 public:
  explicit BufReader(const Bytes& buf) : buf_(buf) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<std::int64_t> i64();
  [[nodiscard]] Result<double> f64();
  [[nodiscard]] Result<Bytes> bytes();
  [[nodiscard]] Result<std::string> string();

  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  [[nodiscard]] bool has(std::size_t n) const { return remaining() >= n; }

  const Bytes& buf_;
  std::size_t pos_ = 0;
};

// Hex dump (diagnostics / tests).
std::string to_hex(const Bytes& b);

}  // namespace hcm
