// Small string utilities shared by the text protocols (HTTP, XML, mail).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hcm {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);
// Parse a non-negative decimal integer; returns -1 on malformed input.
[[nodiscard]] long long parse_uint(std::string_view s);

}  // namespace hcm
