#include "common/value.hpp"

#include <cmath>

namespace hcm {

const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kBytes: return "bytes";
    case ValueType::kList: return "list";
    case ValueType::kMap: return "map";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(v_.index());
}

Result<double> Value::to_number() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_double()) return as_double();
  return invalid_argument("value is not numeric");
}

Result<std::int64_t> Value::to_int() const {
  if (is_int()) return as_int();
  if (is_double()) {
    double d = as_double();
    if (d == std::floor(d)) return static_cast<std::int64_t>(d);
  }
  return invalid_argument("value is not an integer");
}

const Value& Value::at(const std::string& key) const {
  static const Value kNull;
  if (!is_map()) return kNull;
  auto it = as_map().find(key);
  return it == as_map().end() ? kNull : it->second;
}

namespace {

void render(const Value& v, std::string& out) {
  switch (v.type()) {
    case ValueType::kNull:
      out += "null";
      break;
    case ValueType::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case ValueType::kInt:
      out += std::to_string(v.as_int());
      break;
    case ValueType::kDouble:
      out += std::to_string(v.as_double());
      break;
    case ValueType::kString:
      out += '"';
      out += v.as_string();
      out += '"';
      break;
    case ValueType::kBytes:
      out += "bytes[";
      out += std::to_string(v.as_bytes().size());
      out += ']';
      break;
    case ValueType::kList: {
      out += '[';
      bool first = true;
      for (const auto& e : v.as_list()) {
        if (!first) out += ", ";
        first = false;
        render(e, out);
      }
      out += ']';
      break;
    }
    case ValueType::kMap: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_map()) {
        if (!first) out += ", ";
        first = false;
        out += k;
        out += ": ";
        render(e, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Value::to_string() const {
  std::string out;
  render(*this, out);
  return out;
}

}  // namespace hcm
