// The middleware-neutral callable service object. Every middleware stack
// (Jini, HAVi, X10, SOAP, mail, UPnP) exposes and consumes services in
// this form at its adapter boundary, which is what lets the PCM generate
// proxies mechanically.
#pragma once

#include <functional>
#include <string>

#include "common/inline_fn.hpp"
#include "common/interface_desc.hpp"
#include "common/status.hpp"
#include "common/value.hpp"

namespace hcm {

// Completion callbacks ride the wire hot path: every RPC hop captures
// the previous hop's callback, so the inline budget is sized to hold a
// whole dispatch chain without touching the heap (measured by
// bench_ext_wire_throughput's allocs/call).
using InvokeResultFn = SmallFn<void(Result<Value>), 192>;

// Invoke `method` with positional args; completion is asynchronous.
using ServiceHandler = std::function<void(
    const std::string& method, const ValueList& args, InvokeResultFn done)>;

// InterfaceDesc <-> Value (for carrying interfaces inside registration
// messages, e.g. Jini service items and HAVi SDD data).
[[nodiscard]] Value interface_to_value(const InterfaceDesc& iface);
[[nodiscard]] Result<InterfaceDesc> interface_from_value(const Value& v);

}  // namespace hcm
