// Fixed-size block arena for the wire path, in the style of gromox's
// LIB_BUFFER/STREAM pair: every HTTP/SOAP message and every in-flight
// stream payload lives in chained 16 KB blocks drawn from a freelist
// instead of per-message grow/shrink heap buffers. Blocks are recycled
// on release, so a steady-state gateway performs no allocator traffic
// for wire bytes at all (docs/PERFORMANCE.md §"Block pool").
//
// Concurrency: the freelist is lock-sharded into cache-line-padded
// lanes; a thread sticks to one lane (round-robin cookie), so shard
// workers on different lanes never contend. Aggregate stats are plain
// relaxed atomics — they feed gauges, not control flow.
//
// Exhaustion: acquire() never fails. Past the configured block cap it
// degrades to a plain heap block (owner == nullptr) that is freed on
// release rather than recycled, and counts the fallback so the
// telemetry panel makes pool under-sizing visible.
//
// Layering: common sits at the bottom of the DAG, so shard affinity is
// injected from above — the sharded harness installs a PoolResolver
// (net::ShardBlockPools) mapping the calling thread to its shard's
// pool; unbound threads fall back to the process-wide default pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace hcm {

class BlockPool;

// Header embedded at the front of every 16 KB block allocation; the
// payload bytes follow it. `next` chains blocks inside a BlockStream
// and inside the freelist (never both at once).
struct BlockHeader {
  BlockHeader* next = nullptr;
  BlockPool* owner = nullptr;  // nullptr: heap fallback, freed on release
  std::uint32_t used = 0;      // payload bytes written
  std::uint32_t lane = 0;      // owning freelist lane when pooled

  [[nodiscard]] std::uint8_t* data() {
    return reinterpret_cast<std::uint8_t*>(this + 1);
  }
  [[nodiscard]] const std::uint8_t* data() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
};

class BlockPool {
 public:
  // Whole-block allocation size; the usable payload is what remains
  // after the header. 16 KB holds a full SOAP call envelope plus HTTP
  // framing in one block for every workload in the benches.
  static constexpr std::size_t kBlockBytes = 16 * 1024;
  static constexpr std::size_t kBlockCapacity =
      kBlockBytes - sizeof(BlockHeader);

  struct Config {
    // Cap on pooled (recycled) blocks; beyond it acquire() serves heap
    // fallback blocks. 4096 blocks = 64 MB, sized for the 100k-stream
    // churn bench where live messages, not streams, bound the need.
    std::size_t max_blocks = 4096;
    std::uint32_t lanes = 8;
  };

  struct Stats {
    std::uint64_t blocks_in_use = 0;   // acquired and not yet released
    std::uint64_t high_water = 0;      // max blocks_in_use ever seen
    std::uint64_t pooled_blocks = 0;   // pooled blocks in existence
    std::uint64_t pool_hits = 0;       // acquires served off a freelist
    std::uint64_t fresh_blocks = 0;    // acquires that grew the pool
    std::uint64_t heap_fallbacks = 0;  // acquires past the cap
  };

  BlockPool();  // default Config
  explicit BlockPool(Config cfg);
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;
  // Frees the freelists. Blocks still in use must have been released
  // first (checked): a block outliving its pool would dangle.
  ~BlockPool();

  // Never returns nullptr: falls back to a heap block past the cap.
  [[nodiscard]] BlockHeader* acquire();

  // Returns a block to its owning pool's freelist, or frees it when it
  // was a heap fallback. Safe for blocks of any pool (the header knows
  // its owner), which keeps cross-pool BlockStream splices sound.
  static void release(BlockHeader* b);

  [[nodiscard]] Stats stats() const;

 private:
  struct alignas(64) Lane {
    std::mutex mu;
    BlockHeader* free = nullptr;
    std::uint64_t pooled = 0;  // pooled blocks created by this lane
    std::uint64_t hits = 0;
    std::uint64_t fresh = 0;
    std::uint64_t fallbacks = 0;
  };

  void release_pooled(BlockHeader* b);

  Config cfg_;
  std::size_t lane_cap_;  // max pooled blocks per lane
  std::unique_ptr<Lane[]> lanes_;
  std::atomic<std::uint64_t> in_use_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

// --- thread / shard binding ---------------------------------------------

// The pool wire-path code should draw from, resolved per acquire:
//   1. an explicit thread binding (bind_thread_block_pool) — tests and
//      single-scheduler scenarios;
//   2. the installed PoolResolver's answer — the sharded harness maps
//      the calling worker thread to its shard's pool;
//   3. the process-wide default pool.
[[nodiscard]] BlockPool& wire_pool();

// Explicitly binds the calling thread (nullptr unbinds). Returns the
// previous binding so scopes can nest/restore.
BlockPool* bind_thread_block_pool(BlockPool* pool);

// Injected shard resolution (see file comment). A plain function
// pointer so resolution needs no state here; nullptr uninstalls.
using PoolResolver = BlockPool* (*)();
void set_pool_resolver(PoolResolver resolver);

// The process-wide fallback pool (created on first use).
[[nodiscard]] BlockPool& default_block_pool();

}  // namespace hcm
