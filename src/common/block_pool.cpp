#include "common/block_pool.hpp"

#include <cstdlib>
#include <new>

#include "common/check.hpp"

namespace hcm {

namespace {

// Lane stickiness: each thread draws a round-robin cookie on first
// acquire so concurrent threads spread across lanes but a single
// thread (the common case: one shard worker per pool) always reuses
// the same lane and its freelist stays cache-warm.
std::atomic<std::uint32_t> g_lane_cookie{0};
thread_local std::uint32_t t_lane = UINT32_MAX;

// Thread-local pool binding + injected shard resolver (see header).
thread_local BlockPool* t_bound_pool = nullptr;
std::atomic<PoolResolver> g_resolver{nullptr};

BlockHeader* new_block() {
  void* raw = ::operator new(BlockPool::kBlockBytes);
  return new (raw) BlockHeader{};
}

}  // namespace

BlockPool::BlockPool() : BlockPool(Config{}) {}

BlockPool::BlockPool(Config cfg) : cfg_(cfg) {
  if (cfg_.lanes == 0) cfg_.lanes = 1;
  if (cfg_.max_blocks < cfg_.lanes) cfg_.max_blocks = cfg_.lanes;
  lane_cap_ = cfg_.max_blocks / cfg_.lanes;
  lanes_ = std::make_unique<Lane[]>(cfg_.lanes);
}

BlockPool::~BlockPool() {
  HCM_CHECK_MSG(in_use_.load(std::memory_order_relaxed) == 0,
                "BlockPool destroyed with blocks still in use");
  for (std::uint32_t i = 0; i < cfg_.lanes; ++i) {
    BlockHeader* b = lanes_[i].free;
    while (b != nullptr) {
      BlockHeader* next = b->next;
      b->~BlockHeader();
      ::operator delete(b);
      b = next;
    }
  }
}

BlockHeader* BlockPool::acquire() {
  if (t_lane == UINT32_MAX) {
    t_lane = g_lane_cookie.fetch_add(1, std::memory_order_relaxed);
  }
  Lane& lane = lanes_[t_lane % cfg_.lanes];
  BlockHeader* b = nullptr;
  bool fallback = false;
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    if (lane.free != nullptr) {
      b = lane.free;
      lane.free = b->next;
      ++lane.hits;
    } else if (lane.pooled < lane_cap_) {
      ++lane.pooled;
      ++lane.fresh;
    } else {
      ++lane.fallbacks;
      fallback = true;
    }
  }
  if (b == nullptr) {
    b = new_block();
    if (!fallback) {
      b->owner = this;
      b->lane = t_lane % cfg_.lanes;
    }
  }
  b->next = nullptr;
  b->used = 0;
  if (!fallback) {
    const std::uint64_t now =
        in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t high = high_water_.load(std::memory_order_relaxed);
    while (now > high && !high_water_.compare_exchange_weak(
                             high, now, std::memory_order_relaxed)) {
    }
  }
  return b;
}

void BlockPool::release(BlockHeader* b) {
  if (b == nullptr) return;
  if (b->owner != nullptr) {
    b->owner->release_pooled(b);
    return;
  }
  b->~BlockHeader();
  ::operator delete(b);
}

void BlockPool::release_pooled(BlockHeader* b) {
  in_use_.fetch_sub(1, std::memory_order_relaxed);
  Lane& lane = lanes_[b->lane];
  std::lock_guard<std::mutex> lock(lane.mu);
  b->next = lane.free;
  lane.free = b;
}

BlockPool::Stats BlockPool::stats() const {
  Stats s;
  s.blocks_in_use = in_use_.load(std::memory_order_relaxed);
  s.high_water = high_water_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < cfg_.lanes; ++i) {
    Lane& lane = lanes_[i];
    std::lock_guard<std::mutex> lock(lane.mu);
    s.pooled_blocks += lane.pooled;
    s.pool_hits += lane.hits;
    s.fresh_blocks += lane.fresh;
    s.heap_fallbacks += lane.fallbacks;
  }
  return s;
}

BlockPool& wire_pool() {
  if (t_bound_pool != nullptr) return *t_bound_pool;
  if (PoolResolver r = g_resolver.load(std::memory_order_acquire)) {
    if (BlockPool* p = r()) return *p;
  }
  return default_block_pool();
}

BlockPool* bind_thread_block_pool(BlockPool* pool) {
  BlockPool* prev = t_bound_pool;
  t_bound_pool = pool;
  return prev;
}

void set_pool_resolver(PoolResolver resolver) {
  g_resolver.store(resolver, std::memory_order_release);
}

BlockPool& default_block_pool() {
  // The process-wide fallback arena; its freelist lanes are mutex-
  // sharded, so cross-shard use is safe — shard workers get their own
  // pools via the resolver instead.
  // hcm:allow(shard-static-local): mutex-sharded fallback arena
  static BlockPool pool;
  return pool;
}

}  // namespace hcm
