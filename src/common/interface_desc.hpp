// Service interface descriptors: the middleware-neutral description of a
// service's callable surface. These play the role Java interfaces play
// in the paper's prototype — the proxy generator (core/proxygen) builds
// client/server proxies from them, and the SOAP module maps them to and
// from WSDL documents.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"

namespace hcm {

struct ParamDesc {
  std::string name;
  ValueType type = ValueType::kNull;

  friend bool operator==(const ParamDesc&, const ParamDesc&) = default;
};

struct MethodDesc {
  std::string name;
  std::vector<ParamDesc> params;
  ValueType return_type = ValueType::kNull;
  // One-way methods complete without a reply (events, X10 commands).
  bool one_way = false;

  friend bool operator==(const MethodDesc&, const MethodDesc&) = default;
};

// A named interface: the unit of service typing across the framework.
struct InterfaceDesc {
  std::string name;  // e.g. "VcrControl", "Switchable"
  std::vector<MethodDesc> methods;
  // Events the service emits (event-bridge subsystem). Events are
  // notifications, not calls: every entry must be one_way and return
  // kNull (hcm_lint enforces this); params describe the payload.
  std::vector<MethodDesc> events = {};

  [[nodiscard]] const MethodDesc* find_method(const std::string& m) const;
  [[nodiscard]] const MethodDesc* find_event(const std::string& e) const;

  friend bool operator==(const InterfaceDesc&, const InterfaceDesc&) = default;
};

// Checks an argument list against a method signature (arity and types;
// kNull-typed params accept anything, int widens to double).
[[nodiscard]] Status check_args(const MethodDesc& method,
                                const std::vector<Value>& args);

}  // namespace hcm
