#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

namespace hcm {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

// ASCII-only classification: all users of these helpers (HTTP headers,
// XML whitespace, protocol tokens) are ASCII by spec, and the per-char
// <cctype> locale calls are measurable on the wire hot path.
namespace {
inline bool ascii_space(char c) {
  return c == ' ' || (c >= '\t' && c <= '\r');
}
inline char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && ascii_space(s.front())) {
    s.remove_prefix(1);
  }
  while (!s.empty() && ascii_space(s.back())) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return ascii_lower(c); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

long long parse_uint(std::string_view s) {
  if (s.empty()) return -1;
  long long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return -1;
    int digit = c - '0';
    // Reject before multiplying: v * 10 + digit must stay in range.
    if (v > (std::numeric_limits<long long>::max() - digit) / 10) return -1;
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace hcm
