#include "common/uri.hpp"

#include "common/strings.hpp"

namespace hcm {

std::string Uri::to_string() const {
  std::string out = scheme + "://" + host;
  if (port != 0) {
    out += ':';
    out += std::to_string(port);
  }
  out += path.empty() ? "/" : path;
  return out;
}

Result<Uri> parse_uri(const std::string& s) {
  Uri uri;
  auto scheme_end = s.find("://");
  if (scheme_end == std::string::npos || scheme_end == 0) {
    return invalid_argument("URI missing scheme: " + s);
  }
  uri.scheme = s.substr(0, scheme_end);
  auto rest = std::string_view(s).substr(scheme_end + 3);
  auto path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  uri.path = path_start == std::string_view::npos
                 ? "/"
                 : std::string(rest.substr(path_start));
  if (authority.empty()) return invalid_argument("URI missing host: " + s);
  auto colon = authority.rfind(':');
  if (colon == std::string_view::npos) {
    uri.host = std::string(authority);
  } else {
    uri.host = std::string(authority.substr(0, colon));
    auto port = parse_uint(authority.substr(colon + 1));
    if (port < 0 || port > 65535) {
      return invalid_argument("URI bad port: " + s);
    }
    uri.port = static_cast<std::uint16_t>(port);
  }
  if (uri.host.empty()) return invalid_argument("URI missing host: " + s);
  return uri;
}

}  // namespace hcm
