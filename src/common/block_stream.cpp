#include "common/block_stream.hpp"

#include <algorithm>
#include <cstring>

namespace hcm {

BlockStream& BlockStream::operator=(BlockStream&& o) noexcept {
  if (this != &o) {
    clear();
    head_ = o.head_;
    tail_ = o.tail_;
    size_ = o.size_;
    front_off_ = o.front_off_;
    pool_ = o.pool_;
    o.head_ = o.tail_ = nullptr;
    o.size_ = 0;
    o.front_off_ = 0;
  }
  return *this;
}

void BlockStream::clear() {
  BlockHeader* b = head_;
  while (b != nullptr) {
    BlockHeader* next = b->next;
    BlockPool::release(b);
    b = next;
  }
  head_ = tail_ = nullptr;
  size_ = 0;
  front_off_ = 0;
}

BlockPool& BlockStream::pool() {
  if (pool_ == nullptr) pool_ = &wire_pool();
  return *pool_;
}

void BlockStream::append(const void* data, std::size_t n) {
  const auto* src = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    if (tail_ == nullptr || tail_->used == BlockPool::kBlockCapacity) {
      BlockHeader* b = pool().acquire();
      if (tail_ == nullptr) {
        head_ = tail_ = b;
      } else {
        tail_->next = b;
        tail_ = b;
      }
    }
    const std::size_t room = BlockPool::kBlockCapacity - tail_->used;
    const std::size_t take = std::min(room, n);
    std::memcpy(tail_->data() + tail_->used, src, take);
    tail_->used += static_cast<std::uint32_t>(take);
    src += take;
    n -= take;
    size_ += take;
  }
}

void BlockStream::splice(BlockStream&& other) {
  if (other.empty()) {
    other.clear();  // may still hold a fully consumed chain
    return;
  }
  if (other.front_off_ != 0) {
    // Partially consumed head: relinking would resurrect the consumed
    // prefix, so fall back to a chunk copy of what remains.
    other.for_each_chunk(
        [this](Chunk c) { append(c.data, c.size); });
    other.clear();
    return;
  }
  if (head_ == nullptr) {
    head_ = other.head_;
  } else {
    tail_->next = other.head_;
  }
  tail_ = other.tail_;
  size_ += other.size_;
  if (pool_ == nullptr) pool_ = other.pool_;
  other.head_ = other.tail_ = nullptr;
  other.size_ = 0;
}

std::size_t BlockStream::copy_to(void* dst, std::size_t pos,
                                 std::size_t n) const {
  if (pos >= size_) return 0;
  n = std::min(n, size_ - pos);
  auto* out = static_cast<std::uint8_t*>(dst);
  std::size_t skip = pos;
  std::size_t left = n;
  for (const BlockHeader* b = head_; b != nullptr && left > 0; b = b->next) {
    const std::size_t off = b == head_ ? front_off_ : 0;
    const std::size_t len = b->used - off;
    if (skip >= len) {
      skip -= len;
      continue;
    }
    const std::size_t take = std::min(len - skip, left);
    std::memcpy(out, b->data() + off + skip, take);
    out += take;
    left -= take;
    skip = 0;
  }
  return n;
}

std::string_view BlockStream::view(std::size_t pos, std::size_t len,
                                   std::string& scratch) const {
  if (pos >= size_) return {};
  len = std::min(len, size_ - pos);
  std::size_t skip = pos;
  for (const BlockHeader* b = head_; b != nullptr; b = b->next) {
    const std::size_t off = b == head_ ? front_off_ : 0;
    const std::size_t blen = b->used - off;
    if (skip >= blen) {
      skip -= blen;
      continue;
    }
    if (blen - skip >= len) {
      return std::string_view(
          reinterpret_cast<const char*>(b->data() + off + skip), len);
    }
    break;  // spans a block seam
  }
  scratch.resize(len);
  copy_to(scratch.data(), pos, len);
  return std::string_view(scratch);
}

bool BlockStream::match_at(const BlockHeader* b, std::size_t off,
                           std::string_view pat) const {
  // `off` is relative to b's logical data start (past any consumed
  // prefix when b is the head block).
  const std::uint8_t* data = b->data() + (b == head_ ? front_off_ : 0);
  std::size_t len = b->used - (b == head_ ? front_off_ : 0);
  std::size_t pi = 0;
  while (pi < pat.size()) {
    const std::size_t take = std::min(pat.size() - pi, len - off);
    if (std::memcmp(data + off, pat.data() + pi, take) != 0) return false;
    pi += take;
    off += take;
    if (pi < pat.size()) {
      b = b->next;
      if (b == nullptr) return false;
      data = b->data();
      len = b->used;
      off = 0;
    }
  }
  return true;
}

std::size_t BlockStream::find(std::string_view pat, std::size_t from) const {
  if (pat.empty()) return from <= size_ ? from : npos;
  if (size_ < pat.size()) return npos;
  const char first = pat.front();
  std::size_t base = 0;  // logical index of this block's first byte
  for (const BlockHeader* b = head_; b != nullptr; b = b->next) {
    const std::size_t off = b == head_ ? front_off_ : 0;
    const std::uint8_t* data = b->data() + off;
    const std::size_t len = b->used - off;
    std::size_t start = from > base ? from - base : 0;
    while (start < len) {
      const void* hit = std::memchr(data + start, first, len - start);
      if (hit == nullptr) break;
      const std::size_t idx =
          static_cast<std::size_t>(static_cast<const std::uint8_t*>(hit) -
                                   data);
      const std::size_t gpos = base + idx;
      if (gpos + pat.size() > size_) return npos;
      if (match_at(b, idx, pat)) return gpos;
      start = idx + 1;
    }
    base += len;
  }
  return npos;
}

void BlockStream::consume(std::size_t n) {
  n = std::min(n, size_);
  size_ -= n;
  if (size_ == 0) {
    // Fully drained: return everything, including a partially written
    // tail, so long-lived parsers do not pin blocks between messages.
    clear();
    return;
  }
  while (n > 0) {
    const std::size_t avail = head_->used - front_off_;
    if (n < avail) {
      front_off_ += static_cast<std::uint32_t>(n);
      return;
    }
    n -= avail;
    BlockHeader* next = head_->next;
    BlockPool::release(head_);
    head_ = next;
    front_off_ = 0;
  }
}

Bytes BlockStream::to_bytes() const {
  Bytes out;
  // hcm:allow(hotpath-bytes-growth): documented whole-stream copy-out
  out.reserve(size_);
  append_to(out);
  return out;
}

std::string BlockStream::to_string() const {
  std::string out;
  out.reserve(size_);
  append_to(out);
  return out;
}

void BlockStream::append_to(std::string& out) const {
  for_each_chunk([&out](Chunk c) {
    out.append(reinterpret_cast<const char*>(c.data), c.size);
  });
}

void BlockStream::append_to(Bytes& out) const {
  for_each_chunk(
      [&out](Chunk c) { out.insert(out.end(), c.data, c.data + c.size); });
}

}  // namespace hcm
