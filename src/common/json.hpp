// JSON codec for the dynamic Value model: json_write renders a Value
// tree as compact JSON, json_parse round-trips it back. Used by the
// telemetry pipeline (obs::TimeSeriesRecorder dumps, hcm_top's reader)
// and available to any tool that needs a machine-readable artifact
// without an external JSON dependency (the image bakes none in).
//
// Mapping notes:
//   - Value ints render as plain integers, doubles with %.17g (shortest
//     round-trippable via parse-back).
//   - Bytes render as a base64 string; parsing cannot distinguish it
//     from a plain string, so Bytes round-trip as kString (callers that
//     need bytes decode explicitly).
//   - Parsing numbers: integral values (no '.', 'e', overflow) become
//     kInt, everything else kDouble.
//   - Maps render with keys in Value's map order (sorted), so equal
//     Values always produce byte-identical JSON — the property the
//     series-dump hash tests rely on.
#pragma once

#include <string>

#include "common/status.hpp"
#include "common/value.hpp"

namespace hcm {

[[nodiscard]] std::string json_write(const Value& v);

// Strict parser (RFC 8259 subset: no comments, no trailing commas).
// Trailing whitespace after the top-level value is allowed; any other
// trailing content is an error.
[[nodiscard]] Result<Value> json_parse(const std::string& text);

// Escapes `s` into a JSON string body (no surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace hcm
