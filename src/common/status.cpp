#include "common/status.hpp"

namespace hcm {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kProtocolError: return "PROTOCOL_ERROR";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out = hcm::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hcm
