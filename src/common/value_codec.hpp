// Compact tag-length-value binary codec for Value. This is the "Java
// object serialization" stand-in used by the Jini-like call protocol and
// the binary VSG protocol ablation (bench_ablation_vsg_protocol).
#pragma once

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/value.hpp"

namespace hcm {

void encode_value(const Value& v, BufWriter& w);
[[nodiscard]] Bytes encode_value(const Value& v);

[[nodiscard]] Result<Value> decode_value(BufReader& r);
[[nodiscard]] Result<Value> decode_value(const Bytes& b);

}  // namespace hcm
