// Status / Result: lightweight error propagation used across the whole
// framework. Middleware code is callback-driven, so we use value-style
// error reporting rather than exceptions crossing async boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hcm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnavailable,      // endpoint not reachable / link down
  kTimeout,
  kProtocolError,    // malformed frame / envelope / message
  kUnimplemented,
  kPermissionDenied,
  kInternal,
  kCancelled,
  kResourceExhausted,
};

const char* to_string(StatusCode code);

// A status: either OK or an error code plus human-readable message.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const;

  // True when both statuses carry the same code. Equality below is
  // defined as exactly this: message_ is diagnostic payload only and
  // deliberately ignored, so retries/races that produce differently
  // worded errors of the same kind still compare equal (pinned by
  // StatusTest.EqualityIgnoresMessage).
  [[nodiscard]] bool same_code(const Status& other) const {
    return code_ == other.code_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.same_code(b);
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

[[nodiscard]] inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
[[nodiscard]] inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
[[nodiscard]] inline Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
[[nodiscard]] inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
[[nodiscard]] inline Status timeout(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}
[[nodiscard]] inline Status protocol_error(std::string msg) {
  return {StatusCode::kProtocolError, std::move(msg)};
}
[[nodiscard]] inline Status unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
[[nodiscard]] inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
[[nodiscard]] inline Status cancelled(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
[[nodiscard]] inline Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}

// Result<T>: a value or an error Status. Minimal expected<> workalike.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                // NOLINT
  Result(Status status) : status_(std::move(status)) {         // NOLINT
    assert(!status_.is_ok() && "Result error must carry a non-OK status");
  }
  Result(StatusCode code, std::string message)
      : status_(code, std::move(message)) {}

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hcm
