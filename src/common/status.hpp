// Status / Result: lightweight error propagation used across the whole
// framework. Middleware code is callback-driven, so we use value-style
// error reporting rather than exceptions crossing async boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hcm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnavailable,      // endpoint not reachable / link down
  kTimeout,
  kProtocolError,    // malformed frame / envelope / message
  kUnimplemented,
  kPermissionDenied,
  kInternal,
  kCancelled,
  kResourceExhausted,
};

const char* to_string(StatusCode code);

// A status: either OK or an error code plus human-readable message.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status timeout(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}
inline Status protocol_error(std::string msg) {
  return {StatusCode::kProtocolError, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status cancelled(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}

// Result<T>: a value or an error Status. Minimal expected<> workalike.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                // NOLINT
  Result(Status status) : status_(std::move(status)) {         // NOLINT
    assert(!status_.is_ok() && "Result error must carry a non-OK status");
  }
  Result(StatusCode code, std::string message)
      : status_(code, std::move(message)) {}

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hcm
