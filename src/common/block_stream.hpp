// Chained-block byte stream over BlockPool blocks — the buffer currency
// of the wire path (gromox STREAM-style). A stream owns a singly linked
// chain of 16 KB blocks: appends fill the tail, consumes drain the head
// (releasing exhausted blocks back to the pool), and two streams splice
// in O(1) by relinking chains, so a serialized message travels from
// codec to stream to parser without a single byte copy or heap
// allocation. Move-only: moving a stream moves four pointers.
//
// Reading is chunk-oriented: for_each_chunk walks the contiguous runs,
// view() returns a zero-copy string_view when the requested range lies
// inside one block (the overwhelmingly common case for HTTP heads) and
// falls back to a caller-provided scratch buffer when the range spans a
// boundary, and find() scans for a pattern across block seams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/block_pool.hpp"
#include "common/bytes.hpp"

namespace hcm {

class BlockStream {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Draws blocks from `pool`, or from wire_pool() (the calling
  // thread's bound/shard/default pool) when none is given; the pool is
  // resolved lazily at the first append so a default-constructed
  // member picks up the binding of the thread that actually uses it.
  BlockStream() = default;
  explicit BlockStream(BlockPool* pool) : pool_(pool) {}
  ~BlockStream() { clear(); }

  BlockStream(const BlockStream&) = delete;
  BlockStream& operator=(const BlockStream&) = delete;
  BlockStream(BlockStream&& o) noexcept
      : head_(o.head_),
        tail_(o.tail_),
        size_(o.size_),
        front_off_(o.front_off_),
        pool_(o.pool_) {
    o.head_ = o.tail_ = nullptr;
    o.size_ = 0;
    o.front_off_ = 0;
  }
  BlockStream& operator=(BlockStream&& o) noexcept;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Releases every block back to its pool.
  void clear();

  // --- writing ----------------------------------------------------------
  void append(const void* data, std::size_t n);
  void append(std::string_view s) { append(s.data(), s.size()); }
  void append(const Bytes& b) { append(b.data(), b.size()); }
  void put(char c) { append(&c, 1); }

  // Splices `other`'s chain onto this stream's tail: O(1) relink when
  // possible, chunk-copy otherwise (partially consumed head). Either
  // way `other` is left empty.
  void splice(BlockStream&& other);

  // --- reading ----------------------------------------------------------
  struct Chunk {
    const std::uint8_t* data;
    std::size_t size;
  };

  // Calls fn(Chunk) for each contiguous run, front to back.
  template <typename Fn>
  void for_each_chunk(Fn&& fn) const {
    for (const BlockHeader* b = head_; b != nullptr; b = b->next) {
      const std::size_t skip = b == head_ ? front_off_ : 0;
      if (b->used > skip) fn(Chunk{b->data() + skip, b->used - skip});
    }
  }

  // Copies [pos, pos+n) into dst; returns bytes copied (clamped).
  std::size_t copy_to(void* dst, std::size_t pos, std::size_t n) const;

  // View of [pos, pos+len): zero-copy within one block, else backed by
  // `scratch`. len is clamped to the stream size.
  [[nodiscard]] std::string_view view(std::size_t pos, std::size_t len,
                                      std::string& scratch) const;

  // First occurrence of `pat` at or after `from`, or npos.
  [[nodiscard]] std::size_t find(std::string_view pat,
                                 std::size_t from = 0) const;

  // Discards n bytes from the front, releasing drained blocks.
  void consume(std::size_t n);

  // Whole-stream copy-outs (diagnostics, legacy consumers).
  [[nodiscard]] Bytes to_bytes() const;
  [[nodiscard]] std::string to_string() const;
  void append_to(std::string& out) const;
  void append_to(Bytes& out) const;

  // The pool backing this stream (resolving it now if still unbound).
  [[nodiscard]] BlockPool& pool();

 private:
  [[nodiscard]] bool match_at(const BlockHeader* b, std::size_t off,
                              std::string_view pat) const;

  BlockHeader* head_ = nullptr;
  BlockHeader* tail_ = nullptr;
  std::size_t size_ = 0;
  std::uint32_t front_off_ = 0;  // consumed bytes of head_
  BlockPool* pool_ = nullptr;    // resolved lazily
};

}  // namespace hcm
