#include "common/service.hpp"

namespace hcm {

namespace {
Value method_to_value(const MethodDesc& m) {
  ValueList params;
  for (const auto& p : m.params) {
    params.push_back(Value(ValueMap{
        {"name", Value(p.name)},
        {"type", Value(static_cast<std::int64_t>(p.type))},
    }));
  }
  return Value(ValueMap{
      {"name", Value(m.name)},
      {"params", Value(std::move(params))},
      {"return", Value(static_cast<std::int64_t>(m.return_type))},
      {"oneWay", Value(m.one_way)},
  });
}
}  // namespace

Value interface_to_value(const InterfaceDesc& iface) {
  ValueList methods;
  for (const auto& m : iface.methods) methods.push_back(method_to_value(m));
  ValueList events;
  for (const auto& e : iface.events) events.push_back(method_to_value(e));
  return Value(ValueMap{
      {"name", Value(iface.name)},
      {"methods", Value(std::move(methods))},
      {"events", Value(std::move(events))},
  });
}

namespace {
Result<ValueType> type_from(const Value& v) {
  auto i = v.to_int();
  if (!i.is_ok()) return i.status();
  if (i.value() < 0 || i.value() > static_cast<int>(ValueType::kMap)) {
    return protocol_error("bad ValueType ordinal");
  }
  return static_cast<ValueType>(i.value());
}
}  // namespace

namespace {
Result<MethodDesc> method_from_value(const Value& mv) {
  if (!mv.is_map()) return protocol_error("method is not a map");
  MethodDesc m;
  if (!mv.at("name").is_string()) return protocol_error("method name");
  m.name = mv.at("name").as_string();
  auto ret = type_from(mv.at("return"));
  if (!ret.is_ok()) return ret.status();
  m.return_type = ret.value();
  m.one_way = mv.at("oneWay").is_bool() && mv.at("oneWay").as_bool();
  if (mv.at("params").is_list()) {
    for (const auto& pv : mv.at("params").as_list()) {
      ParamDesc p;
      p.name = pv.at("name").is_string() ? pv.at("name").as_string() : "";
      auto pt = type_from(pv.at("type"));
      if (!pt.is_ok()) return pt.status();
      p.type = pt.value();
      m.params.push_back(std::move(p));
    }
  }
  return m;
}
}  // namespace

Result<InterfaceDesc> interface_from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("interface value is not a map");
  InterfaceDesc iface;
  if (!v.at("name").is_string()) {
    return protocol_error("interface missing name");
  }
  iface.name = v.at("name").as_string();
  if (!v.at("methods").is_list()) {
    return protocol_error("interface missing methods");
  }
  for (const auto& mv : v.at("methods").as_list()) {
    auto m = method_from_value(mv);
    if (!m.is_ok()) return m.status();
    iface.methods.push_back(std::move(m).take());
  }
  // "events" is absent in descriptors published before the event
  // bridge existed; treat missing as empty.
  if (v.at("events").is_list()) {
    for (const auto& ev : v.at("events").as_list()) {
      auto e = method_from_value(ev);
      if (!e.is_ok()) return e.status();
      iface.events.push_back(std::move(e).take());
    }
  }
  return iface;
}

}  // namespace hcm
