#include "common/service.hpp"

namespace hcm {

Value interface_to_value(const InterfaceDesc& iface) {
  ValueList methods;
  for (const auto& m : iface.methods) {
    ValueList params;
    for (const auto& p : m.params) {
      params.push_back(Value(ValueMap{
          {"name", Value(p.name)},
          {"type", Value(static_cast<std::int64_t>(p.type))},
      }));
    }
    methods.push_back(Value(ValueMap{
        {"name", Value(m.name)},
        {"params", Value(std::move(params))},
        {"return", Value(static_cast<std::int64_t>(m.return_type))},
        {"oneWay", Value(m.one_way)},
    }));
  }
  return Value(ValueMap{
      {"name", Value(iface.name)},
      {"methods", Value(std::move(methods))},
  });
}

namespace {
Result<ValueType> type_from(const Value& v) {
  auto i = v.to_int();
  if (!i.is_ok()) return i.status();
  if (i.value() < 0 || i.value() > static_cast<int>(ValueType::kMap)) {
    return protocol_error("bad ValueType ordinal");
  }
  return static_cast<ValueType>(i.value());
}
}  // namespace

Result<InterfaceDesc> interface_from_value(const Value& v) {
  if (!v.is_map()) return protocol_error("interface value is not a map");
  InterfaceDesc iface;
  if (!v.at("name").is_string()) {
    return protocol_error("interface missing name");
  }
  iface.name = v.at("name").as_string();
  if (!v.at("methods").is_list()) {
    return protocol_error("interface missing methods");
  }
  for (const auto& mv : v.at("methods").as_list()) {
    if (!mv.is_map()) return protocol_error("method is not a map");
    MethodDesc m;
    if (!mv.at("name").is_string()) return protocol_error("method name");
    m.name = mv.at("name").as_string();
    auto ret = type_from(mv.at("return"));
    if (!ret.is_ok()) return ret.status();
    m.return_type = ret.value();
    m.one_way = mv.at("oneWay").is_bool() && mv.at("oneWay").as_bool();
    if (mv.at("params").is_list()) {
      for (const auto& pv : mv.at("params").as_list()) {
        ParamDesc p;
        p.name = pv.at("name").is_string() ? pv.at("name").as_string() : "";
        auto pt = type_from(pv.at("type"));
        if (!pt.is_ok()) return pt.status();
        p.type = pt.value();
        m.params.push_back(std::move(p));
      }
    }
    iface.methods.push_back(std::move(m));
  }
  return iface;
}

}  // namespace hcm
