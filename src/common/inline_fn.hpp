// Move-only callable wrapper with guaranteed small-buffer storage —
// the event-closure currency of the hot path. std::function's inline
// buffer (16 bytes on libstdc++, trivially-copyable captures only)
// heap-allocates every scheduler event that captures a shared_ptr plus
// a payload, which at wire rates dominated the allocation profile. An
// InlineFn constructs the callable directly inside a 64-byte slot, so
// scheduling an event performs zero allocations for every closure the
// sim actually builds; oversized captures degrade to one heap cell.
// Move-only on purpose: event closures own payloads (BlockStream), and
// the scheduler/slab machinery only ever moves them.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hcm {

template <typename Sig, std::size_t Inline = 64>
class InlineFn;

template <typename R, typename... Args, std::size_t Inline>
class InlineFn<R(Args...), Inline> {
 public:
  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& o) noexcept { move_from(o); }
  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  friend bool operator==(const InlineFn& f, std::nullptr_t) { return !f; }
  friend bool operator!=(const InlineFn& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

  R operator()(Args... args) {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-constructs dst from src's storage and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<F*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      ::new (dst) F(std::move(*static_cast<F*>(src)));
      static_cast<F*>(src)->~F();
    }
    static void destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr VTable vt{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static R invoke(void* p, Args&&... args) {
      return (**static_cast<F**>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      std::memcpy(dst, src, sizeof(F*));
    }
    static void destroy(void* p) { delete *static_cast<F**>(p); }
    static constexpr VTable vt{&invoke, &relocate, &destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= Inline && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &InlineOps<D>::vt;
    } else {
      D* cell = new D(std::forward<F>(f));
      std::memcpy(buf_, &cell, sizeof(cell));
      vt_ = &HeapOps<D>::vt;
    }
  }

  void move_from(InlineFn& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, o.buf_);
      o.vt_ = nullptr;
    }
  }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Inline];
};

// Copyable sibling of InlineFn — the async-callback currency of the
// RPC path (respond fns, call completions). These flow through APIs
// that occasionally copy (a handler parking its respond callback for
// later), so they cannot be move-only, but at wire rates the
// std::function they replace heap-allocated on every hop of the
// respond/completion chain. A SmallFn holds the callable inline up to
// `Inline` bytes — sized per alias so each chain layer (which captures
// the previous layer's callback) still fits — and copies clone the
// callable in place. Oversized captures degrade to one heap cell each,
// cloned on copy, exactly like std::function.
template <typename Sig, std::size_t Inline = 64>
class SmallFn;

template <typename R, typename... Args, std::size_t Inline>
class SmallFn<R(Args...), Inline> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn(const SmallFn& o) { copy_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn& operator=(const SmallFn& o) {
    if (this != &o) {
      reset();
      copy_from(o);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  ~SmallFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) { return !f; }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

  // Invocable through const refs like std::function: the stored
  // callable itself is invoked non-const (mutable lambdas work).
  R operator()(Args... args) const {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);
    void (*clone)(void* dst, const void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<F*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      ::new (dst) F(std::move(*static_cast<F*>(src)));
      static_cast<F*>(src)->~F();
    }
    static void clone(void* dst, const void* src) {
      ::new (dst) F(*static_cast<const F*>(src));
    }
    static void destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr VTable vt{&invoke, &relocate, &clone, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static R invoke(void* p, Args&&... args) {
      return (**static_cast<F**>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      std::memcpy(dst, src, sizeof(F*));
    }
    static void clone(void* dst, const void* src) {
      F* cell = new F(**static_cast<F* const*>(src));
      std::memcpy(dst, &cell, sizeof(cell));
    }
    static void destroy(void* p) { delete *static_cast<F**>(p); }
    static constexpr VTable vt{&invoke, &relocate, &clone, &destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= Inline &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &InlineOps<D>::vt;
    } else {
      D* cell = new D(std::forward<F>(f));
      std::memcpy(buf_, &cell, sizeof(cell));
      vt_ = &HeapOps<D>::vt;
    }
  }

  void move_from(SmallFn& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, o.buf_);
      o.vt_ = nullptr;
    }
  }

  void copy_from(const SmallFn& o) {
    if (o.vt_ != nullptr) {
      o.vt_->clone(buf_, o.buf_);
      vt_ = o.vt_;
    }
  }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) mutable unsigned char buf_[Inline];
};

}  // namespace hcm
