#include "common/bytes.hpp"

#include <bit>
#include <cstring>

namespace hcm {

void BufWriter::put_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v >> 16));
  put_u16(static_cast<std::uint16_t>(v));
}

void BufWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void BufWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void BufWriter::put_bytes(const Bytes& b) {
  put_u32(static_cast<std::uint32_t>(b.size()));
  put_raw(b);
}

void BufWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_raw(s);
}

Result<std::uint8_t> BufReader::u8() {
  if (!has(1)) return protocol_error("buffer underrun reading u8");
  return buf_[pos_++];
}

Result<std::uint16_t> BufReader::u16() {
  if (!has(2)) return protocol_error("buffer underrun reading u16");
  auto hi = buf_[pos_];
  auto lo = buf_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> BufReader::u32() {
  auto hi = u16();
  if (!hi.is_ok()) return hi.status();
  auto lo = u16();
  if (!lo.is_ok()) return lo.status();
  return (static_cast<std::uint32_t>(hi.value()) << 16) | lo.value();
}

Result<std::uint64_t> BufReader::u64() {
  auto hi = u32();
  if (!hi.is_ok()) return hi.status();
  auto lo = u32();
  if (!lo.is_ok()) return lo.status();
  return (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
}

Result<std::int64_t> BufReader::i64() {
  auto v = u64();
  if (!v.is_ok()) return v.status();
  return static_cast<std::int64_t>(v.value());
}

Result<double> BufReader::f64() {
  auto v = u64();
  if (!v.is_ok()) return v.status();
  double d = 0;
  auto bits = v.value();
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<Bytes> BufReader::bytes() {
  auto len = u32();
  if (!len.is_ok()) return len.status();
  if (!has(len.value())) return protocol_error("buffer underrun reading bytes");
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return out;
}

Result<std::string> BufReader::string() {
  auto b = bytes();
  if (!b.is_ok()) return b.status();
  return to_string(b.value());
}

std::string to_hex(const Bytes& b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 3);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xF]);
  }
  return out;
}

}  // namespace hcm
