// Leveled logging with a swappable sink. Quiet by default so tests and
// benches are clean; examples turn it on to narrate protocol activity.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace hcm {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level);

using LogSink = std::function<void(LogLevel, const std::string& component,
                                   const std::string& message)>;

// Returns extra context to append to each log line (e.g. the active
// trace/span ids), or "" when none is in scope. Installed by the obs
// tracer; common/ stays free of an obs dependency.
using LogContextProvider = std::function<std::string()>;

// Process-wide log configuration. The level is an atomic (shard
// workers check it per call); sink and context provider are
// startup-only installs.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void set_sink(LogSink sink);  // nullptr restores stderr sink
  static void set_context_provider(LogContextProvider provider);
  static void write(LogLevel level, const std::string& component,
                    const std::string& message);
};

namespace log_detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append(os, rest...);
}
}  // namespace log_detail

template <typename... Args>
void log_at(LogLevel level, const std::string& component, const Args&... args) {
  if (level < Log::level()) return;
  std::ostringstream os;
  log_detail::append(os, args...);
  Log::write(level, component, os.str());
}

template <typename... Args>
void log_debug(const std::string& c, const Args&... a) {
  log_at(LogLevel::kDebug, c, a...);
}
template <typename... Args>
void log_info(const std::string& c, const Args&... a) {
  log_at(LogLevel::kInfo, c, a...);
}
template <typename... Args>
void log_warn(const std::string& c, const Args&... a) {
  log_at(LogLevel::kWarn, c, a...);
}
template <typename... Args>
void log_error(const std::string& c, const Args&... a) {
  log_at(LogLevel::kError, c, a...);
}

}  // namespace hcm
