// Minimal URI model for the endpoints the framework passes around
// (e.g. "soap://node-3:8080/vsg", "jini://lookup-1:4160/svc/laserdisc").
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace hcm {

struct Uri {
  std::string scheme;   // "http", "soap", "jini", ...
  std::string host;     // simulated node name
  std::uint16_t port = 0;
  std::string path;     // always begins with '/' (defaults to "/")

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Uri&, const Uri&) = default;
};

[[nodiscard]] Result<Uri> parse_uri(const std::string& s);

}  // namespace hcm
